# Convenience targets for the FarGo reproduction.

PYTHON ?= python3

.PHONY: install test bench examples experiments clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Benchmark run with the experiment tables printed (EXPERIMENTS.md data).
experiments:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) "$$script" || exit 1; \
		echo; \
	done

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
