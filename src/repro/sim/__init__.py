"""Virtual-time substrate: clocks and the timer scheduler.

The FarGo paper evaluates its runtime on a wide-area testbed where
bandwidth, latency, and invocation rates change over wall-clock time.
This reproduction runs the identical mechanisms over *virtual* time: a
:class:`VirtualClock` that advances only when told to, and a
:class:`Scheduler` that fires timers (continuous-profiling samplers,
script timers, cache expiry) as the clock sweeps past their deadlines.
Virtual time makes every experiment deterministic and lets benchmarks
simulate hours of wide-area behaviour in milliseconds.  A
:class:`RealClock` is provided for interactive use (the live viewer and
the shell).
"""

from repro.sim.clock import Clock, RealClock, VirtualClock
from repro.sim.scheduler import Scheduler, Timer

__all__ = ["Clock", "RealClock", "VirtualClock", "Scheduler", "Timer"]
