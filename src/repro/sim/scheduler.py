"""Timer scheduler driving periodic work over a virtual clock.

Continuous profiling samplers, monitor-event evaluation, cache expiry,
and script timers all register timers here.  The cluster harness calls
:meth:`Scheduler.advance` to sweep virtual time forward; due timers fire
in deadline order, each observing the exact virtual time it was scheduled
for.  The scheduler is reentrancy-safe: when the network layer charges
transfer time *during* a timer callback (or during a synchronous remote
invocation), the nested advance merely extends the outer sweep instead of
recursing.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.sim.clock import Clock, VirtualClock


@dataclass(order=True)
class _Entry:
    deadline: float
    sequence: int
    timer: "Timer" = field(compare=False)


class Timer:
    """Handle to a scheduled callback; ``cancel()`` to stop it."""

    __slots__ = ("callback", "args", "period", "cancelled", "fired_count")

    def __init__(
        self,
        callback: Callable[..., None],
        args: tuple,
        period: float | None,
    ) -> None:
        self.callback = callback
        self.args = args
        self.period = period
        self.cancelled = False
        self.fired_count = 0

    @property
    def is_periodic(self) -> bool:
        return self.period is not None

    def cancel(self) -> None:
        self.cancelled = True


class Scheduler:
    """Deadline-ordered timer queue over a :class:`Clock`.

    With a :class:`VirtualClock` (the default), time moves only through
    :meth:`advance`.  With a real clock, callers poll :meth:`fire_due`.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._heap: list[_Entry] = []
        self._sequence = itertools.count()
        self._advancing = False
        self._pending_target: float | None = None
        #: Furthest instant the caller(s) explicitly asked to advance to.
        #: Quiet network charges may push the clock (and the sweep) past
        #: it, but *periodic* timers never fire beyond it — otherwise a
        #: heartbeat round that charges more transfer time than its own
        #: period would extend the sweep forever (ROADMAP item 6).
        self._caller_target: float | None = None

    # -- registration -----------------------------------------------------

    def call_at(self, deadline: float, callback: Callable[..., None], *args) -> Timer:
        """Run ``callback(*args)`` once when the clock reaches ``deadline``."""
        if deadline < self.clock.now():
            if self.clock.is_virtual:
                raise ConfigurationError(
                    f"deadline {deadline} is in the past (now={self.clock.now()})"
                )
            # A real clock moves between computing and registering the
            # deadline; clamp instead of failing on the skew.
            deadline = self.clock.now()
        timer = Timer(callback, args, period=None)
        self._push(deadline, timer)
        return timer

    def call_after(self, delay: float, callback: Callable[..., None], *args) -> Timer:
        """Run ``callback(*args)`` once, ``delay`` seconds from now."""
        if delay < 0.0:
            raise ConfigurationError(f"delay must be non-negative, got {delay}")
        return self.call_at(self.clock.now() + delay, callback, *args)

    def call_every(
        self,
        period: float,
        callback: Callable[..., None],
        *args,
        first_delay: float | None = None,
    ) -> Timer:
        """Run ``callback(*args)`` every ``period`` seconds.

        The first firing happens after ``first_delay`` (default: one full
        period).  The returned handle cancels all future firings.
        """
        if period <= 0.0:
            raise ConfigurationError(f"period must be positive, got {period}")
        timer = Timer(callback, args, period=period)
        delay = period if first_delay is None else first_delay
        self._push(self.clock.now() + delay, timer)
        return timer

    def _push(self, deadline: float, timer: Timer) -> None:
        heapq.heappush(self._heap, _Entry(deadline, next(self._sequence), timer))

    # -- introspection -----------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled firings."""
        return sum(1 for entry in self._heap if not entry.timer.cancelled)

    def next_deadline(self) -> float | None:
        """Earliest live deadline, or None when the queue is empty."""
        for entry in sorted(self._heap):
            if not entry.timer.cancelled:
                return entry.deadline
        return None

    # -- time driving -------------------------------------------------------

    def advance(self, delta: float) -> None:
        """Sweep virtual time forward by ``delta``, firing due timers.

        Nested calls (e.g. the network charging transfer time from inside
        a timer callback, or a profiling sampler running during a remote
        invocation) extend the current sweep instead of recursing, which
        keeps callback execution strictly deadline-ordered.
        """
        if not isinstance(self.clock, VirtualClock):
            raise ConfigurationError("advance() requires a VirtualClock")
        if delta < 0.0:
            raise ConfigurationError(f"cannot advance by negative delta {delta}")
        target = self.clock.now() + delta
        if self._advancing:
            # Reentrant: record the furthest requested target; the
            # outermost sweep will cover it.  The clock itself still moves
            # immediately so the nested caller observes the elapsed time.
            self.clock.set(target)
            if self._pending_target is None or target > self._pending_target:
                self._pending_target = target
            # An explicit nested advance (retry backoff, scripted sleep)
            # genuinely requests that time — periodic timers may fire up
            # to it, unlike quiet transfer charges.
            if self._caller_target is None or target > self._caller_target:
                self._caller_target = target
            return
        self._advancing = True
        self._caller_target = target
        try:
            self._sweep_to(target)
            # Nested advances during callbacks may have pushed time further.
            while self._pending_target is not None:
                pending = self._pending_target
                self._pending_target = None
                self._sweep_to(pending)
        finally:
            self._advancing = False
            self._pending_target = None
            self._caller_target = None

    def advance_quiet(self, delta: float) -> None:
        """Move the clock without firing timers (network transfer charges).

        Work that becomes due stays queued until the next explicit
        :meth:`advance` (or, inside one, until the current sweep reaches
        the extended target).  This keeps timer callbacks — continuous
        profiling samplers, deferred movement continuations — from
        running re-entrantly in the middle of a protocol exchange.
        """
        if not isinstance(self.clock, VirtualClock):
            return  # real time passes by itself
        if delta < 0.0:
            raise ConfigurationError(f"cannot advance by negative delta {delta}")
        target = self.clock.now() + delta
        self.clock.set(target)
        if self._advancing and (
            self._pending_target is None or target > self._pending_target
        ):
            self._pending_target = target

    def _sweep_to(self, target: float) -> None:
        # Periodic timers due only because quiet charges extended the
        # sweep past what the caller asked for are *deferred*, not fired:
        # firing them would re-arm them inside the extension and — when a
        # round of work charges more transfer time than the period — the
        # sweep would never drain.  One-shot timers still fire through
        # extensions so movement continuations and drains cascade.
        deferred: list[_Entry] = []
        while self._heap and self._heap[0].deadline <= target:
            entry = heapq.heappop(self._heap)
            timer = entry.timer
            if timer.cancelled:
                continue
            if (
                timer.is_periodic
                and self._caller_target is not None
                and entry.deadline > self._caller_target
            ):
                deferred.append(entry)
                continue
            # Observe the scheduled instant (clock may already be past it
            # if a nested advance overshot while we were mid-sweep).
            if entry.deadline > self.clock.now():
                self.clock.set(entry.deadline)
            if timer.is_periodic:
                assert timer.period is not None
                self._push(entry.deadline + timer.period, timer)
            timer.fired_count += 1
            timer.callback(*timer.args)
        for entry in deferred:
            heapq.heappush(self._heap, entry)
        if target > self.clock.now():
            self.clock.set(target)

    def fire_due(self) -> int:
        """Fire every timer whose deadline has passed; return the count.

        This is the driving mode for a :class:`RealClock`: the clock moves
        on its own and callers poll.
        """
        fired = 0
        now = self.clock.now()
        while self._heap and self._heap[0].deadline <= now:
            entry = heapq.heappop(self._heap)
            timer = entry.timer
            if timer.cancelled:
                continue
            if timer.is_periodic:
                assert timer.period is not None
                self._push(entry.deadline + timer.period, timer)
            timer.fired_count += 1
            timer.callback(*timer.args)
            fired += 1
        return fired
