"""Clock abstractions: virtual (simulated) and real (wall) time."""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from contextlib import contextmanager

from repro.errors import ConfigurationError

_real_clock_ban_depth = 0


@contextmanager
def forbid_real_clocks():
    """Fail fast on wall-clock leakage inside a deterministic run.

    While active, constructing a :class:`RealClock` raises
    :class:`ConfigurationError`.  The bench runner wraps every scenario
    in this guard so a stray ``RealClock`` (and hence
    ``time.monotonic()``) cannot make ``--check`` results vary across
    machines.  Reentrant; thread-compatibility is not required under the
    single-threaded simulation.
    """
    global _real_clock_ban_depth
    _real_clock_ban_depth += 1
    try:
        yield
    finally:
        _real_clock_ban_depth -= 1


def real_clocks_forbidden() -> bool:
    """True while a :func:`forbid_real_clocks` guard is active."""
    return _real_clock_ban_depth > 0


class Clock(ABC):
    """Source of the current time, in seconds."""

    @abstractmethod
    def now(self) -> float:
        """Return the current time in seconds."""

    @property
    def is_virtual(self) -> bool:
        return False


class VirtualClock(Clock):
    """A clock that advances only when explicitly told to.

    All runtime components read time through this interface; the cluster
    harness (or the scheduler, while draining timers) moves it forward.
    Time never goes backward.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ConfigurationError(f"clock cannot start before zero, got {start}")
        self._now = float(start)

    def now(self) -> float:
        return self._now

    @property
    def is_virtual(self) -> bool:
        return True

    def set(self, timestamp: float) -> None:
        """Move the clock to ``timestamp`` (monotonicity enforced)."""
        if timestamp < self._now:
            raise ConfigurationError(
                f"virtual time cannot move backward: {timestamp} < {self._now}"
            )
        self._now = float(timestamp)

    def tick(self, delta: float) -> float:
        """Advance the clock by ``delta`` seconds and return the new time."""
        if delta < 0.0:
            raise ConfigurationError(f"cannot tick by negative delta {delta}")
        self._now += delta
        return self._now


class RealClock(Clock):
    """Wall-clock time, for interactive sessions (shell, live viewer)."""

    def __init__(self) -> None:
        if real_clocks_forbidden():
            raise ConfigurationError(
                "RealClock constructed inside a forbid_real_clocks() guard; "
                "deterministic runs must drive time through a VirtualClock"
            )
        self._origin = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._origin
