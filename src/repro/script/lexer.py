"""Tokenizer for the layout scripting language.

The language is line-oriented only in spirit: newlines are whitespace,
keywords (``on``, ``do``, ``end``) delimit structure.  Comments run from
``#`` to end of line.  Token kinds:

- ``IDENT`` — bare words: keywords, event names, reference types.
- ``VARIABLE`` — ``$name``.
- ``ARG`` — positional script arguments, ``%1``, ``%2``, ...
- ``NUMBER`` — integer or decimal literals.
- ``STRING`` — double- or single-quoted.
- ``SYMBOL`` — one of ``= ( ) [ ] ,``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ScriptSyntaxError


class TokenKind(str, Enum):
    IDENT = "ident"
    VARIABLE = "variable"
    ARG = "arg"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    EOF = "eof"


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    value: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind.value}({self.value!r})@{self.line}:{self.column}"


_SYMBOLS = set("=()[],")
_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
# Dots and colons appear in dotted action names ("pkg.module:function").
_IDENT_BODY = _IDENT_START | set("0123456789.:")


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raises :class:`ScriptSyntaxError` on bad input."""
    tokens: list[Token] = []
    line = 1
    column = 1
    i = 0
    length = len(source)

    def error(message: str) -> ScriptSyntaxError:
        return ScriptSyntaxError(message, line, column)

    while i < length:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "#":
            while i < length and source[i] != "\n":
                i += 1
            continue
        start_line, start_col = line, column
        if ch in _SYMBOLS:
            tokens.append(Token(TokenKind.SYMBOL, ch, start_line, start_col))
            i += 1
            column += 1
            continue
        if ch == "$":
            j = i + 1
            while j < length and source[j] in _IDENT_BODY:
                j += 1
            name = source[i + 1:j]
            if not name:
                raise error("'$' must be followed by a variable name")
            tokens.append(Token(TokenKind.VARIABLE, name, start_line, start_col))
            column += j - i
            i = j
            continue
        if ch == "%":
            j = i + 1
            while j < length and source[j].isdigit():
                j += 1
            digits = source[i + 1:j]
            if not digits:
                raise error("'%' must be followed by an argument number")
            tokens.append(Token(TokenKind.ARG, digits, start_line, start_col))
            column += j - i
            i = j
            continue
        if ch in "\"'":
            quote = ch
            j = i + 1
            buf: list[str] = []
            while j < length and source[j] != quote:
                if source[j] == "\n":
                    raise error("unterminated string literal")
                if source[j] == "\\" and j + 1 < length:
                    buf.append(source[j + 1])
                    j += 2
                    continue
                buf.append(source[j])
                j += 1
            if j >= length:
                raise error("unterminated string literal")
            tokens.append(Token(TokenKind.STRING, "".join(buf), start_line, start_col))
            column += j - i + 1
            i = j + 1
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < length and source[i + 1].isdigit()):
            j = i + 1
            seen_dot = False
            while j < length and (source[j].isdigit() or (source[j] == "." and not seen_dot)):
                if source[j] == ".":
                    seen_dot = True
                j += 1
            tokens.append(Token(TokenKind.NUMBER, source[i:j], start_line, start_col))
            column += j - i
            i = j
            continue
        if ch in _IDENT_START:
            j = i + 1
            while j < length and source[j] in _IDENT_BODY:
                j += 1
            tokens.append(Token(TokenKind.IDENT, source[i:j], start_line, start_col))
            column += j - i
            i = j
            continue
        raise error(f"unexpected character {ch!r}")

    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
