"""Recursive-descent parser for the layout scripting language.

Grammar (terminals in caps, ``[]`` optional, ``*`` repetition)::

    script      := statement*
    statement   := assignment | rule
    assignment  := VARIABLE '=' expr
    rule        := 'on' IDENT [ '(' expr_list ')' ] clause* 'do' action* 'end'
    clause      := 'firedby' VARIABLE
                 | 'from' expr
                 | 'to' expr
                 | 'listenAt' expr
                 | 'every' expr
    action      := 'move' target 'to' dest
                 | 'retype' expr 'to' IDENT
                 | 'log' expr
                 | 'call' IDENT '(' expr_list ')'
                 | assignment
    target      := 'completsIn' expr | expr
    dest        := 'coreOf' expr | expr
    expr        := STRING | NUMBER | ARG
                 | VARIABLE [ '[' NUMBER ']' ]
                 | '[' expr_list ']'
                 | 'completsIn' expr | 'coreOf' expr
                 | IDENT                      (bareword = string literal)
    expr_list   := [ expr (',' expr)* ]

Every AST node produced here carries a :class:`~repro.script.ast.Span`
pointing at its first token, so runtime errors and the static analyzer
(:mod:`repro.analysis`) can report exact source locations.
"""

from __future__ import annotations

from repro.errors import ScriptSyntaxError
from repro.script.ast import (
    Action,
    ArgRef,
    AssignAction,
    Assignment,
    CallAction,
    CompletsIn,
    CoreOf,
    Expr,
    Index,
    ListExpr,
    Literal,
    LogAction,
    MoveAction,
    RetypeAction,
    Rule,
    Script,
    Span,
    VarRef,
)
from repro.script.lexer import Token, TokenKind, tokenize

_CLAUSE_KEYWORDS = {"firedby", "from", "to", "listenAt", "every"}
_ACTION_KEYWORDS = {"move", "retype", "log", "call"}


def _span(token: Token) -> Span:
    return Span(token.line, token.column)


def _describe(token: Token) -> str:
    if token.kind is TokenKind.EOF:
        return "end of script"
    return repr(token.value)


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ------------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> ScriptSyntaxError:
        token = token if token is not None else self._peek()
        return ScriptSyntaxError(message, token.line, token.column)

    def _expect_symbol(self, symbol: str) -> Token:
        token = self._next()
        if token.kind is not TokenKind.SYMBOL or token.value != symbol:
            raise self._error(f"expected {symbol!r}, got {_describe(token)}", token)
        return token

    def _expect_ident(self, word: str | None = None) -> Token:
        token = self._next()
        if word is not None:
            if token.kind is not TokenKind.IDENT or token.value != word:
                raise self._error(f"expected {word!r}, got {_describe(token)}", token)
            return token
        if token.kind is not TokenKind.IDENT:
            raise self._error(f"expected a word, got {_describe(token)}", token)
        return token

    def _at_ident(self, word: str) -> bool:
        token = self._peek()
        return token.kind is TokenKind.IDENT and token.value == word

    def _at_symbol(self, symbol: str) -> bool:
        token = self._peek()
        return token.kind is TokenKind.SYMBOL and token.value == symbol

    # -- grammar -----------------------------------------------------------------------

    def parse_script(self) -> Script:
        statements: list[Assignment | Rule] = []
        while self._peek().kind is not TokenKind.EOF:
            token = self._peek()
            if token.kind is TokenKind.VARIABLE:
                statements.append(self._parse_assignment())
            elif self._at_ident("on"):
                statements.append(self._parse_rule())
            else:
                raise self._error(
                    f"expected a rule ('on ...') or an assignment ('$var = ...'), "
                    f"got {_describe(token)}"
                )
        return Script(tuple(statements))

    def _parse_assignment(self) -> Assignment:
        name_token = self._next()
        self._expect_symbol("=")
        return Assignment(name_token.value, self._parse_expr(), span=_span(name_token))

    def _parse_rule(self) -> Rule:
        on_token = self._expect_ident("on")
        event = self._expect_ident().value
        event_args: tuple[Expr, ...] = ()
        if self._at_symbol("("):
            self._next()
            event_args = tuple(self._parse_expr_list(")"))
            self._expect_symbol(")")

        fired_by: str | None = None
        source: Expr | None = None
        target: Expr | None = None
        listen_at: Expr | None = None
        every: Expr | None = None
        while True:
            token = self._peek()
            if token.kind is not TokenKind.IDENT or token.value not in _CLAUSE_KEYWORDS:
                break
            keyword = self._next().value
            if keyword == "firedby":
                var = self._next()
                if var.kind is not TokenKind.VARIABLE:
                    raise self._error(
                        f"'firedby' binds a $variable, got {_describe(var)}", var
                    )
                fired_by = var.value
            elif keyword == "from":
                source = self._parse_expr()
            elif keyword == "to":
                target = self._parse_expr()
            elif keyword == "listenAt":
                listen_at = self._parse_expr()
            elif keyword == "every":
                every = self._parse_expr()

        self._expect_ident("do")
        actions: list[Action] = []
        while not self._at_ident("end"):
            if self._peek().kind is TokenKind.EOF:
                raise self._error(
                    f"rule 'on {event}' (line {on_token.line}) is missing its 'end'"
                )
            actions.append(self._parse_action())
        self._expect_ident("end")
        return Rule(
            event=event,
            event_args=event_args,
            fired_by=fired_by,
            source=source,
            target=target,
            listen_at=listen_at,
            every=every,
            actions=tuple(actions),
            span=_span(on_token),
        )

    def _parse_action(self) -> Action:
        token = self._peek()
        if token.kind is TokenKind.VARIABLE:
            assignment = self._parse_assignment()
            return AssignAction(assignment.name, assignment.value, span=assignment.span)
        if token.kind is not TokenKind.IDENT or token.value not in _ACTION_KEYWORDS:
            raise self._error(
                f"expected an action (move/retype/log/call) or 'end', "
                f"got {_describe(token)}"
            )
        keyword_token = self._next()
        keyword = keyword_token.value
        span = _span(keyword_token)
        if keyword == "move":
            target = self._parse_expr()
            self._expect_ident("to")
            return MoveAction(target, self._parse_expr(), span=span)
        if keyword == "retype":
            reference = self._parse_expr()
            self._expect_ident("to")
            type_name = self._expect_ident().value
            return RetypeAction(reference, type_name, span=span)
        if keyword == "log":
            return LogAction(self._parse_expr(), span=span)
        name = self._expect_ident().value
        self._expect_symbol("(")
        args = tuple(self._parse_expr_list(")"))
        self._expect_symbol(")")
        return CallAction(name, args, span=span)

    def _parse_expr_list(self, closing: str) -> list[Expr]:
        items: list[Expr] = []
        if self._at_symbol(closing):
            return items
        items.append(self._parse_expr())
        while self._at_symbol(","):
            self._next()
            items.append(self._parse_expr())
        return items

    def _parse_expr(self) -> Expr:
        token = self._next()
        span = _span(token)
        if token.kind is TokenKind.STRING:
            return Literal(token.value, span=span)
        if token.kind is TokenKind.NUMBER:
            text = token.value
            return Literal(float(text) if "." in text else int(text), span=span)
        if token.kind is TokenKind.ARG:
            return ArgRef(int(token.value), span=span)
        if token.kind is TokenKind.VARIABLE:
            expr: Expr = VarRef(token.value, span=span)
            if self._at_symbol("["):
                self._next()
                index = self._next()
                if index.kind is not TokenKind.NUMBER:
                    raise self._error(
                        f"index must be a number, got {_describe(index)}", index
                    )
                self._expect_symbol("]")
                expr = Index(expr, int(index.value), span=span)
            return expr
        if token.kind is TokenKind.SYMBOL and token.value == "[":
            items = tuple(self._parse_expr_list("]"))
            self._expect_symbol("]")
            return ListExpr(items, span=span)
        if token.kind is TokenKind.IDENT:
            if token.value == "completsIn":
                return CompletsIn(self._parse_expr(), span=span)
            if token.value == "coreOf":
                return CoreOf(self._parse_expr(), span=span)
            # A bareword is a string literal (core names, etc.).
            return Literal(token.value, span=span)
        raise self._error(f"expected an expression, got {_describe(token)}", token)


def parse(source: str) -> Script:
    """Parse script ``source`` into its AST."""
    return _Parser(tokenize(source)).parse_script()
