"""Abstract syntax tree of the layout scripting language.

Every node carries an optional :class:`Span` — the 1-based line/column
of its first token — populated by the parser and consumed by error
messages and the static analyzer (:mod:`repro.analysis`).  Spans are
excluded from equality so tests and tools can compare node *shapes*
without reconstructing positions.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Span:
    """1-based source location of a node's first token."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


def _span_field():
    return field(default=None, compare=False, repr=False)


# -- expressions -----------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Literal:
    """A string or number literal (barewords parse as string literals)."""

    value: object
    span: Span | None = _span_field()


@dataclass(frozen=True, slots=True)
class VarRef:
    """``$name`` — a script variable reference."""

    name: str
    span: Span | None = _span_field()


@dataclass(frozen=True, slots=True)
class ArgRef:
    """``%n`` — the n-th positional script argument (1-based)."""

    index: int
    span: Span | None = _span_field()


@dataclass(frozen=True, slots=True)
class Index:
    """``expr[n]`` — element access into a list value."""

    base: "Expr"
    index: int
    span: Span | None = _span_field()


@dataclass(frozen=True, slots=True)
class ListExpr:
    """``[a, b, c]`` — a list literal."""

    items: tuple["Expr", ...]
    span: Span | None = _span_field()


@dataclass(frozen=True, slots=True)
class CompletsIn:
    """``completsIn expr`` — all complets hosted at a Core."""

    core: "Expr"
    span: Span | None = _span_field()


@dataclass(frozen=True, slots=True)
class CoreOf:
    """``coreOf expr`` — the Core currently hosting a complet."""

    complet: "Expr"
    span: Span | None = _span_field()


Expr = Literal | VarRef | ArgRef | Index | ListExpr | CompletsIn | CoreOf


# -- actions -----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class MoveAction:
    """``move <target> to <destination>``."""

    target: Expr
    destination: Expr
    span: Span | None = _span_field()


@dataclass(frozen=True, slots=True)
class RetypeAction:
    """``retype <ref> to <type>`` — change a reference's relocator."""

    reference: Expr
    type_name: str
    span: Span | None = _span_field()


@dataclass(frozen=True, slots=True)
class LogAction:
    """``log <expr>`` — append to the engine's log."""

    message: Expr
    span: Span | None = _span_field()


@dataclass(frozen=True, slots=True)
class CallAction:
    """``call name(args...)`` — invoke a registered or loadable command."""

    name: str
    args: tuple[Expr, ...]
    span: Span | None = _span_field()


@dataclass(frozen=True, slots=True)
class AssignAction:
    """``$name = expr`` inside a rule body."""

    name: str
    value: Expr
    span: Span | None = _span_field()


Action = MoveAction | RetypeAction | LogAction | CallAction | AssignAction


# -- statements ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Assignment:
    """Top-level ``$name = expr``."""

    name: str
    value: Expr
    span: Span | None = _span_field()


@dataclass(frozen=True, slots=True)
class Rule:
    """``on <event>(args) <clauses> do <actions> end``."""

    event: str
    event_args: tuple[Expr, ...] = ()
    fired_by: str | None = None          # variable bound to the event origin
    source: Expr | None = None           # `from` clause
    target: Expr | None = None           # `to` clause
    listen_at: Expr | None = None        # `listenAt` clause
    every: Expr | None = None            # sampling interval
    actions: tuple[Action, ...] = ()
    span: Span | None = _span_field()


@dataclass(frozen=True, slots=True)
class Script:
    """A parsed script: bindings followed by rules, in source order."""

    statements: tuple[Assignment | Rule, ...] = ()

    @property
    def rules(self) -> list[Rule]:
        return [s for s in self.statements if isinstance(s, Rule)]

    @property
    def assignments(self) -> list[Assignment]:
        return [s for s in self.statements if isinstance(s, Assignment)]
