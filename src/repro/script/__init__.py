"""The FarGo layout scripting language (§4.3).

An event-driven rule language for administrators: a script is a set of
variable bindings and ``on <event> ... do <actions> end`` rules.  The
event part names a Core event (``shutdown``, ``completArrived``, ...)
or a profiled quantity with a threshold (``methodInvokeRate(3)``); the
action part moves complets (``move ... to ...``), retypes references,
logs, or calls user-defined commands which are loaded automatically on
first use.  Scripts are attached to a running cluster *after*
deployment, decoupling layout policy from application code.

The paper's example script runs verbatim::

    $coreList = %1
    $targetCore = %2
    $comps = %3
    on shutdown firedby $core
      listenAt $coreList do
        move completsIn $core to $targetCore
    end
    on methodInvokeRate(3)
      from $comps[0] to $comps[1] do
        move $comps[0] to coreOf $comps[1]
    end
"""

from repro.script.lexer import Token, TokenKind, tokenize
from repro.script.parser import parse
from repro.script.interpreter import ScriptEngine

__all__ = ["Token", "TokenKind", "tokenize", "parse", "ScriptEngine"]
