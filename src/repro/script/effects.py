"""Rule → effect extraction: what a layout rule *does*, symbolically.

The interaction analyzer (:mod:`repro.analysis.interaction`) reasons
about sets of rules — possibly from different scripts — without running
any of them, so it needs each rule reduced to its externally visible
effects: which complets it moves where, which references it retypes,
which recovery actions it calls, and under which trigger it fires.

Expressions are canonicalised to *spellings* (:func:`render_expr`):
``move $c to coreOf $s`` yields the move effect ``($c, coreOf $s)``.
Two effects with the same spelling are treated as touching the same
thing — an over-approximation across scripts (two scripts' ``$c`` may
be bound differently), which is the right polarity for race warnings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.script.ast import (
    Action,
    ArgRef,
    AssignAction,
    CallAction,
    CompletsIn,
    CoreOf,
    Expr,
    Index,
    ListExpr,
    Literal,
    MoveAction,
    RetypeAction,
    Rule,
    Script,
    Span,
    VarRef,
)

__all__ = [
    "CallEffect",
    "MoveEffect",
    "RetypeEffect",
    "RuleEffects",
    "extract_effects",
    "render_expr",
]


def render_expr(expr: Expr | None) -> str | None:
    """Canonical source-like spelling of ``expr`` (identity for matching)."""
    if expr is None:
        return None
    if isinstance(expr, Literal):
        return str(expr.value)
    if isinstance(expr, VarRef):
        return f"${expr.name}"
    if isinstance(expr, ArgRef):
        return f"%{expr.index}"
    if isinstance(expr, Index):
        return f"{render_expr(expr.base)}[{expr.index}]"
    if isinstance(expr, ListExpr):
        return "[" + ", ".join(str(render_expr(item)) for item in expr.items) + "]"
    if isinstance(expr, CompletsIn):
        return f"completsIn {render_expr(expr.core)}"
    if isinstance(expr, CoreOf):
        return f"coreOf {render_expr(expr.complet)}"
    return repr(expr)


def literal_str(expr: Expr | None) -> str | None:
    """``expr``'s value when it is a string literal, else ``None``."""
    if isinstance(expr, Literal) and isinstance(expr.value, str):
        return expr.value
    return None


@dataclass(frozen=True, slots=True)
class MoveEffect:
    """One ``move <target> to <destination>`` action, symbolically."""

    target: str                 # canonical spelling of the moved expression
    destination: str            # canonical spelling of the destination
    target_literal: bool        # True when the target is a literal complet id
    destination_literal: bool   # True when the destination is a literal Core
    span: Span | None


@dataclass(frozen=True, slots=True)
class RetypeEffect:
    """One ``retype <ref> to <type>`` action, symbolically."""

    reference: str
    type_name: str
    span: Span | None


@dataclass(frozen=True, slots=True)
class CallEffect:
    """One ``call name(args...)`` action, symbolically."""

    name: str
    args: tuple[str, ...]
    #: Literal string value of each argument (None for dynamic args).
    literal_args: tuple[str | None, ...]
    span: Span | None


@dataclass(frozen=True)
class RuleEffects:
    """One rule reduced to trigger + effects."""

    rule: Rule
    #: Label of the script the rule came from (file name or synthetic).
    script: str
    #: Index of the script within the analyzed set.
    script_index: int
    #: The trigger event name as written (``completArrived``, ``timer``...).
    event: str
    #: Literal Core names of the ``listenAt`` clause; None = dynamic/all.
    listen_cores: tuple[str, ...] | None
    moves: tuple[MoveEffect, ...] = ()
    retypes: tuple[RetypeEffect, ...] = ()
    calls: tuple[CallEffect, ...] = ()
    #: Trigger identity: equal keys mean the same installed trigger.
    trigger_key: tuple = field(default=(), compare=False)

    @property
    def location(self) -> str:
        line = self.rule.span.line if self.rule.span else 0
        return f"{self.script}:{line}"


def _listen_cores(rule: Rule) -> tuple[str, ...] | None:
    expr = rule.listen_at
    if expr is None:
        return None
    if isinstance(expr, Literal) and isinstance(expr.value, str):
        return (expr.value,)
    if isinstance(expr, ListExpr):
        names = [
            item.value
            for item in expr.items
            if isinstance(item, Literal) and isinstance(item.value, str)
        ]
        if len(names) == len(expr.items):
            return tuple(names)
    return None


def _action_effects(
    actions: tuple[Action, ...],
) -> tuple[tuple[MoveEffect, ...], tuple[RetypeEffect, ...], tuple[CallEffect, ...]]:
    moves: list[MoveEffect] = []
    retypes: list[RetypeEffect] = []
    calls: list[CallEffect] = []
    for action in actions:
        if isinstance(action, MoveAction):
            moves.append(
                MoveEffect(
                    target=str(render_expr(action.target)),
                    destination=str(render_expr(action.destination)),
                    target_literal=isinstance(action.target, Literal),
                    destination_literal=literal_str(action.destination) is not None,
                    span=action.span,
                )
            )
        elif isinstance(action, RetypeAction):
            retypes.append(
                RetypeEffect(
                    reference=str(render_expr(action.reference)),
                    type_name=action.type_name.lower(),
                    span=action.span,
                )
            )
        elif isinstance(action, CallAction):
            calls.append(
                CallEffect(
                    name=action.name,
                    args=tuple(str(render_expr(a)) for a in action.args),
                    literal_args=tuple(literal_str(a) for a in action.args),
                    span=action.span,
                )
            )
        elif isinstance(action, AssignAction):
            continue
    return tuple(moves), tuple(retypes), tuple(calls)


def extract_effects(
    script: Script, *, script_name: str = "<script>", script_index: int = 0
) -> list[RuleEffects]:
    """Effects of every rule in ``script``, in source order."""
    out: list[RuleEffects] = []
    for rule in script.rules:
        moves, retypes, calls = _action_effects(rule.actions)
        out.append(
            RuleEffects(
                rule=rule,
                script=script_name,
                script_index=script_index,
                event=rule.event,
                listen_cores=_listen_cores(rule),
                moves=moves,
                retypes=retypes,
                calls=calls,
                trigger_key=(
                    rule.event,
                    rule.event_args,
                    rule.fired_by,
                    rule.source,
                    rule.target,
                    rule.listen_at,
                    rule.every,
                ),
            )
        )
    return out
