"""Interpreter for the layout scripting language.

A :class:`ScriptEngine` is attached to a cluster at one *home* Core (the
administrator's seat).  Running a script evaluates its top-level
bindings and activates its rules:

- **Core-event rules** (``shutdown``, ``completArrived``, ...) subscribe
  the engine — over the network — at every Core named by ``listenAt``
  (default: all running Cores).
- **Profile rules** (``methodInvokeRate(3) from A to B``) install a
  threshold watch at the Core where the measurement lives (for
  invocation rates: the Core hosting the *source* complet) and subscribe
  to the resulting monitor event.  When the watched complet migrates,
  the engine re-installs the watch at its new host, so the rule follows
  the complet — the migration-surviving listener property of §4.2.

Action commands beyond the built-ins are registered with
:meth:`ScriptEngine.register_action` or auto-loaded from a
``module:function`` name, the analogue of the paper's user-defined
(Java) action classes loaded upon invocation.
"""

from __future__ import annotations

import importlib
import logging
from contextlib import ExitStack
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.complet.relocators import relocator_from_name
from repro.complet.stub import Stub, stub_core, stub_target_id
from repro.core.core import Core
from repro.core.events import (
    CALL_RETRIED,
    COMPLET_ARRIVED,
    COMPLET_DEPARTED,
    COMPLET_RECOVERED,
    COMPLET_RESTORED,
    CORE_FAILED,
    CORE_RECONCILED,
    CORE_RECOVERED,
    CORE_SHUTDOWN,
    CORE_SUSPECTED,
    MOVE_COMPLETED,
    MOVE_FAILED,
    ONEWAY_FAILED,
    REFERENCE_RETYPED,
    Event,
)
from repro.errors import FarGoError, ScriptRuntimeError, UnknownActionError
from repro.script.ast import (
    Action,
    ArgRef,
    AssignAction,
    Assignment,
    CallAction,
    CompletsIn,
    CoreOf,
    Expr,
    Index,
    ListExpr,
    Literal,
    LogAction,
    MoveAction,
    RetypeAction,
    Rule,
    Script,
    VarRef,
)
from repro.script.parser import parse

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster

logger = logging.getLogger(__name__)

#: Script-facing names of Core events.
CORE_EVENTS = {
    "shutdown": CORE_SHUTDOWN,
    "coreShutdown": CORE_SHUTDOWN,
    "completArrived": COMPLET_ARRIVED,
    "completDeparted": COMPLET_DEPARTED,
    "referenceRetyped": REFERENCE_RETYPED,
    "moveFailed": MOVE_FAILED,
    "moveCompleted": MOVE_COMPLETED,
    "callRetried": CALL_RETRIED,
    "onewayFailed": ONEWAY_FAILED,
    "coreSuspected": CORE_SUSPECTED,
    "coreFailed": CORE_FAILED,
    "coreRecovered": CORE_RECOVERED,
    "completRecovered": COMPLET_RECOVERED,
    "completRestored": COMPLET_RESTORED,
    "coreReconciled": CORE_RECONCILED,
}

#: Script-facing aliases of profiling services.
SERVICE_ALIASES = {
    "methodInvokeRate": "invocationRate",
    "invocationRate": "invocationRate",
    "byteRate": "byteRate",
    "bandwidth": "bandwidth",
    "latency": "latency",
    "completLoad": "completLoad",
    "completSize": "completSize",
    "coreMemory": "coreMemory",
    "cpuLoad": "cpuLoad",
    "servedRate": "servedRate",
    "linkBytes": "linkBytes",
    "invocationCount": "invocationCount",
    "trackerLoad": "trackerLoad",
}


@dataclass(slots=True)
class ScriptContext:
    """What a user-defined action command receives."""

    engine: "ScriptEngine"
    env: dict
    event: Event | None


@dataclass(slots=True)
class _ActiveRule:
    rule: Rule
    #: (core, callback_id) handles from subscribe_remote.
    subscriptions: list[tuple[str, int]] = field(default_factory=list)
    #: (core_name, watch_id) pairs for installed threshold watches.
    watches: list[tuple[str, int]] = field(default_factory=list)
    #: Scheduler timers (``on timer(...)`` rules).
    timers: list = field(default_factory=list)
    fired_count: int = 0


class ScriptEngine:
    """Runs layout scripts against a cluster."""

    def __init__(self, cluster: "Cluster", home: str | None = None) -> None:
        self.cluster = cluster
        home_name = home if home is not None else cluster.core_names()[0]
        self.core: Core = cluster.core(home_name)
        #: ``log <expr>`` output, in order.
        self.log: list[str] = []
        self._globals: dict[str, object] = {}
        self._args: tuple = ()
        self._actions: dict[str, Callable[..., object]] = {}
        self._active: list[_ActiveRule] = []
        #: Scripts this engine has activated, as ``(Script, label)``
        #: pairs — the cluster's interaction analysis reads them.
        self.installed: list[tuple[Script, str]] = []
        cluster.register_engine(self)
        from repro.script.stdlib import register_stdlib

        register_stdlib(self)

    # -- action registry -------------------------------------------------------------

    def register_action(self, name: str, fn: Callable[..., object]) -> None:
        """Register a user-defined action command callable as ``call name(...)``.

        The callable receives a :class:`ScriptContext` followed by the
        evaluated arguments.
        """
        self._actions[name] = fn

    def _resolve_action(self, name: str) -> Callable[..., object]:
        fn = self._actions.get(name)
        if fn is not None:
            return fn
        if ":" in name:
            # Auto-load "package.module:function", the paper's dynamic
            # loading of user-defined action classes.
            module_name, _, attr = name.partition(":")
            try:
                fn = getattr(importlib.import_module(module_name), attr)
            except (ImportError, AttributeError) as exc:
                raise UnknownActionError(f"cannot load action {name!r}: {exc}") from exc
            self._actions[name] = fn
            return fn
        raise UnknownActionError(
            f"unknown action {name!r}; register it or use module:function"
        )

    # -- running scripts ------------------------------------------------------------------

    def run(self, source: str, args: tuple | list = ()) -> Script:
        """Parse and activate ``source`` with positional ``args`` (%1, %2...)."""
        script = parse(source)
        return self.run_script(script, args)

    def run_script(self, script: Script, args: tuple | list = ()) -> Script:
        self._args = tuple(args)
        self.installed.append(
            (script, f"<{self.core.name}:script#{len(self.installed) + 1}>")
        )
        for statement in script.statements:
            if isinstance(statement, Assignment):
                self._globals[statement.name] = self._eval(statement.value, self._globals)
            else:
                self._activate(statement)
        return script

    def stop(self) -> None:
        """Deactivate every rule: unsubscribe and remove all watches."""
        for active in self._active:
            for core_name, callback_id in active.subscriptions:
                self.core.events.unsubscribe_remote((core_name, callback_id))
            for core_name, watch_id in active.watches:
                try:
                    self.core.admin(core_name, "unwatch", watch_id=watch_id)
                except FarGoError:
                    logger.debug("unwatch at %s failed", core_name, exc_info=True)
            for timer in active.timers:
                timer.cancel()
        self._active.clear()
        self.installed.clear()

    @property
    def active_rules(self) -> list[_ActiveRule]:
        return list(self._active)

    # -- rule activation -----------------------------------------------------------------------

    def _activate(self, rule: Rule) -> None:
        active = _ActiveRule(rule)
        self._active.append(active)
        if rule.event == "timer":
            self._activate_timer(rule, active)
        elif rule.event in CORE_EVENTS:
            self._activate_core_event(rule, active)
        else:
            self._activate_profile_event(rule, active)

    def _activate_timer(self, rule: Rule, active: _ActiveRule) -> None:
        """``on timer(interval) do ... end`` — periodic administration.

        An extension beyond §4.3 (periodic policies such as scripted
        checkpoints need no measurable trigger); the interval is in
        virtual seconds.
        """
        if not rule.event_args:
            raise ScriptRuntimeError("timer rules need an interval argument")
        interval = float(self._eval_number(rule.event_args[0]))
        if interval <= 0:
            raise ScriptRuntimeError(f"timer interval must be positive, got {interval}")

        def fire() -> None:
            event = Event(
                name="timer",
                origin=self.core.name,
                time=self.core.scheduler.clock.now(),
                data={"interval": interval},
            )
            self._fire(rule, active, event)

        timer = self.core.scheduler.call_every(interval, fire)
        active.timers.append(timer)

    def _listen_cores(self, rule: Rule) -> list[str]:
        if rule.listen_at is None:
            return [c.name for c in self.cluster.running_cores()]
        value = self._eval(rule.listen_at, self._globals)
        if isinstance(value, str):
            return [value]
        if isinstance(value, (list, tuple)):
            return [str(v) for v in value]
        raise ScriptRuntimeError(f"listenAt expects a core name or list, got {value!r}")

    def _activate_core_event(self, rule: Rule, active: _ActiveRule) -> None:
        event_name = CORE_EVENTS[rule.event]

        def callback(event: Event) -> None:
            self._fire(rule, active, event)

        for core_name in self._listen_cores(rule):
            handle = self.core.events.subscribe_remote(core_name, event_name, callback)
            active.subscriptions.append(handle)

    def _activate_profile_event(self, rule: Rule, active: _ActiveRule) -> None:
        service = SERVICE_ALIASES.get(rule.event)
        if service is None:
            raise ScriptRuntimeError(
                f"unknown event {rule.event!r}: not a Core event and not a "
                f"profiling service"
            )
        if not rule.event_args:
            raise ScriptRuntimeError(
                f"profiled event {rule.event!r} needs a threshold argument"
            )
        threshold = float(self._eval_number(rule.event_args[0]))
        op = ">"
        if len(rule.event_args) > 1:
            op = str(self._eval(rule.event_args[1], self._globals))
        interval = 1.0
        if rule.every is not None:
            interval = float(self._eval_number(rule.every))
        params = self._profile_params(service, rule)
        event_name = f"script:{id(active)}:{service}"

        def callback(event: Event) -> None:
            self._fire(rule, active, event)

        watch_core = self._watch_core(service, rule, params)
        self._install_watch(
            active, watch_core, service, op, threshold, interval, event_name, params
        )
        # The subscription pattern is the unique event name, so the rule
        # keeps matching after the watch is re-installed elsewhere.
        self._subscribe_watch(active, watch_core, event_name, callback)
        if service in ("invocationRate", "byteRate", "invocationCount"):
            self._follow_source(rule, active, service, op, threshold, interval,
                                event_name, params, callback)

    def _install_watch(
        self,
        active: _ActiveRule,
        core_name: str,
        service: str,
        op: str,
        threshold: float,
        interval: float,
        event_name: str,
        params: dict,
    ) -> None:
        watch_id = self.core.admin(
            core_name,
            "watch",
            service=service,
            op=op,
            threshold=threshold,
            interval=interval,
            event_name=event_name,
            repeat=False,
            params=params,
        )
        active.watches.append((core_name, watch_id))

    def _subscribe_watch(
        self, active: _ActiveRule, core_name: str, event_name: str, callback
    ) -> None:
        handle = self.core.events.subscribe_remote(core_name, event_name, callback)
        active.subscriptions.append(handle)

    def _watch_core(self, service: str, rule: Rule, params: dict) -> str:
        if rule.listen_at is not None:
            cores = self._listen_cores(rule)
            return cores[0]
        if service in ("invocationRate", "byteRate", "invocationCount") and rule.source is not None:
            value = self._eval(rule.source, self._globals)
            if isinstance(value, Stub):
                return self.cluster.locate(value)
        return self.core.name

    def _profile_params(self, service: str, rule: Rule) -> dict:
        def complet_id(expr: Expr | None) -> str | None:
            if expr is None:
                return None
            value = self._eval(expr, self._globals)
            return _as_complet_id(value)

        if service in ("invocationRate", "byteRate", "invocationCount"):
            src = complet_id(rule.source)
            dst = complet_id(rule.target)
            if src is None or dst is None:
                raise ScriptRuntimeError(
                    f"{service} rules need 'from <complet> to <complet>' clauses"
                )
            return {"src": src, "dst": dst}
        if service in ("bandwidth", "latency", "linkBytes"):
            if rule.target is None:
                raise ScriptRuntimeError(f"{service} rules need a 'to <core>' clause")
            return {"peer": str(self._eval(rule.target, self._globals))}
        if service in ("completSize", "servedRate"):
            src = complet_id(rule.source)
            if src is None:
                raise ScriptRuntimeError(f"{service} rules need a 'from <complet>' clause")
            return {"complet": src}
        return {}

    def _follow_source(
        self,
        rule: Rule,
        active: _ActiveRule,
        service: str,
        op: str,
        threshold: float,
        interval: float,
        event_name: str,
        params: dict,
        callback,
    ) -> None:
        """Re-install the watch when the watched source complet migrates."""
        source_id = params["src"]

        def on_arrival(event: Event) -> None:
            if event.data.get("complet") != source_id:
                return
            new_host = event.origin
            installed = [(c, w) for (c, w) in active.watches]
            for core_name, watch_id in installed:
                try:
                    self.core.admin(core_name, "unwatch", watch_id=watch_id)
                except FarGoError:
                    logger.debug("unwatch at %s failed", core_name, exc_info=True)
            active.watches.clear()
            self._install_watch(
                active, new_host, service, op, threshold, interval, event_name, params
            )
            self._subscribe_watch(active, new_host, event_name, callback)

        for core_name in [c.name for c in self.cluster.running_cores()]:
            handle = self.core.events.subscribe_remote(
                core_name, COMPLET_ARRIVED, on_arrival
            )
            active.subscriptions.append(handle)

    # -- firing -----------------------------------------------------------------------------------

    def _fire(self, rule: Rule, active: _ActiveRule, event: Event) -> None:
        active.fired_count += 1
        tracer = self.core.tracer
        sanitizer = self.core.sanitizer
        with ExitStack() as stack:
            if sanitizer is not None:
                # Each firing is its own happens-before context, forked
                # from the event's origin: two rules reacting to one
                # frontier run concurrently as far as layout operations
                # are concerned, which is what the sanitizer checks.
                stack.enter_context(
                    sanitizer.rule_context(
                        f"rule(on {rule.event})@{self.core.name}", event.origin
                    )
                )
            if tracer.enabled:
                # The rule's actions run under one script span, so whatever
                # they trigger (moves, retypes, calls) stays in the trace of
                # the event that fired the rule.
                stack.enter_context(
                    tracer.span(
                        f"script:{rule.event}", category="script", trigger=event.name
                    )
                )
            self._run_rule(rule, event)

    def _run_rule(self, rule: Rule, event: Event) -> None:
        env = dict(self._globals)
        if rule.fired_by is not None:
            env[rule.fired_by] = event.data.get("core", event.origin)
        # The firing event is always available to actions as $event.
        env["event"] = event
        try:
            for action in rule.actions:
                self._run_action(action, env, event)
        except FarGoError:
            logger.warning("script rule on %s failed", rule.event, exc_info=True)

    def _run_action(self, action: Action, env: dict, event: Event | None) -> None:
        if isinstance(action, AssignAction):
            env[action.name] = self._eval(action.value, env)
            return
        if isinstance(action, LogAction):
            message = str(self._eval(action.message, env))
            self.log.append(message)
            logger.info("script log: %s", message)
            return
        if isinstance(action, MoveAction):
            self._run_move(action, env)
            return
        if isinstance(action, RetypeAction):
            reference = self._eval(action.reference, env)
            if not isinstance(reference, Stub):
                raise ScriptRuntimeError(
                    f"retype expects a complet reference, got {reference!r}"
                )
            Core.get_meta_ref(reference).set_relocator(
                relocator_from_name(action.type_name)
            )
            return
        if isinstance(action, CallAction):
            fn = self._resolve_action(action.name)
            args = [self._eval(a, env) for a in action.args]
            fn(ScriptContext(self, env, event), *args)
            return
        raise ScriptRuntimeError(f"unknown action node {action!r}")

    def _run_move(self, action: MoveAction, env: dict) -> None:
        destination = self._eval(action.destination, env)
        if not isinstance(destination, str):
            raise ScriptRuntimeError(f"move destination must be a core name, got {destination!r}")
        targets = self._eval(action.target, env)
        if not isinstance(targets, (list, tuple)):
            targets = [targets]
        for target in targets:
            self._move_one(target, destination)

    def _move_one(self, target: object, destination: str) -> None:
        if isinstance(target, Stub):
            core = stub_core(target) or self.core
            core.move(target, destination)
            return
        if isinstance(target, str):
            host = self._find_host(target)
            if host is None:
                raise ScriptRuntimeError(f"no running Core hosts complet {target!r}")
            self.core.admin(host, "move", complet=target, destination=destination)
            return
        raise ScriptRuntimeError(f"cannot move {target!r}")

    def _find_host(self, complet_id: str) -> str | None:
        for core in self.cluster.running_cores():
            if complet_id in self.cluster.complets_at(core.name):
                return core.name
        return None

    # -- expression evaluation ------------------------------------------------------------------------

    def _eval(self, expr: Expr, env: dict) -> object:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, VarRef):
            if expr.name not in env:
                raise ScriptRuntimeError(f"undefined variable ${expr.name}")
            return env[expr.name]
        if isinstance(expr, ArgRef):
            if not 1 <= expr.index <= len(self._args):
                raise ScriptRuntimeError(
                    f"script argument %{expr.index} missing "
                    f"({len(self._args)} given)"
                )
            return self._args[expr.index - 1]
        if isinstance(expr, Index):
            base = self._eval(expr.base, env)
            try:
                return base[expr.index]  # type: ignore[index]
            except (TypeError, IndexError, KeyError) as exc:
                raise ScriptRuntimeError(f"cannot index {base!r}[{expr.index}]") from exc
        if isinstance(expr, ListExpr):
            return [self._eval(item, env) for item in expr.items]
        if isinstance(expr, CompletsIn):
            core_name = str(self._eval(expr.core, env))
            return list(self.core.admin(core_name, "complets"))
        if isinstance(expr, CoreOf):
            value = self._eval(expr.complet, env)
            if isinstance(value, Stub):
                return self.cluster.locate(value)
            if isinstance(value, str):
                host = self._find_host(value)
                if host is None:
                    raise ScriptRuntimeError(f"no running Core hosts complet {value!r}")
                return host
            raise ScriptRuntimeError(f"coreOf expects a complet, got {value!r}")
        raise ScriptRuntimeError(f"unknown expression node {expr!r}")

    def _eval_number(self, expr: Expr) -> float:
        value = self._eval(expr, self._globals)
        if isinstance(value, (int, float)):
            return float(value)
        raise ScriptRuntimeError(f"expected a number, got {value!r}")


def _as_complet_id(value: object) -> str:
    if isinstance(value, Stub):
        return str(stub_target_id(value))
    return str(value)
