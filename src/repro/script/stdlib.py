"""Built-in action commands available to every script via ``call``.

These are the commands an administrator reaches for beyond the core
``move``/``retype``/``log`` actions.  User-defined commands are added
with :meth:`~repro.script.interpreter.ScriptEngine.register_action` or
loaded on demand from a ``module:function`` name.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.complet.stub import Stub
from repro.errors import ScriptRuntimeError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.script.interpreter import ScriptContext, ScriptEngine


def register_stdlib(engine: "ScriptEngine") -> None:
    engine.register_action("collectTrackers", _collect_trackers)
    engine.register_action("shutdownCore", _shutdown_core)
    engine.register_action("colocate", _colocate)
    engine.register_action("bindName", _bind_name)


def _collect_trackers(ctx: "ScriptContext") -> None:
    """``call collectTrackers()`` — run tracker GC on every running Core."""
    collected = ctx.engine.cluster.collect_all_trackers()
    ctx.engine.log.append(f"collected {collected} trackers")


def _shutdown_core(ctx: "ScriptContext", core_name: object) -> None:
    """``call shutdownCore(name)`` — gracefully shut a Core down."""
    ctx.engine.cluster.shutdown_core(str(core_name))


def _colocate(ctx: "ScriptContext", mover: object, anchor_point: object) -> None:
    """``call colocate(a, b)`` — move complet ``a`` to ``b``'s Core."""
    if not isinstance(anchor_point, Stub):
        raise ScriptRuntimeError("colocate expects complet references")
    destination = ctx.engine.cluster.locate(anchor_point)
    ctx.engine._move_one(mover, destination)


def _bind_name(ctx: "ScriptContext", name: object, stub: object) -> None:
    """``call bindName(name, complet)`` — bind at the engine's home Core."""
    if not isinstance(stub, Stub):
        raise ScriptRuntimeError("bindName expects a complet reference")
    ctx.engine.core.bind(str(name), stub, replace=True)
