"""Built-in action commands available to every script via ``call``.

These are the commands an administrator reaches for beyond the core
``move``/``retype``/``log`` actions.  User-defined commands are added
with :meth:`~repro.script.interpreter.ScriptEngine.register_action` or
loaded on demand from a ``module:function`` name.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING

from repro.complet.stub import Stub
from repro.errors import FarGoError, ScriptRuntimeError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.script.interpreter import ScriptContext, ScriptEngine

logger = logging.getLogger(__name__)

#: Names every engine gets out of the box (the static analyzer resolves
#: ``call`` actions against this set).
STDLIB_ACTIONS = frozenset(
    {
        "collectTrackers",
        "shutdownCore",
        "colocate",
        "bindName",
        "retryMove",
        "failover",
        "restore",
    }
)


def register_stdlib(engine: "ScriptEngine") -> None:
    engine.register_action("collectTrackers", _collect_trackers)
    engine.register_action("shutdownCore", _shutdown_core)
    engine.register_action("colocate", _colocate)
    engine.register_action("bindName", _bind_name)
    engine.register_action("retryMove", _retry_move)
    engine.register_action("failover", _failover)
    engine.register_action("restore", _restore)


def _collect_trackers(ctx: "ScriptContext") -> None:
    """``call collectTrackers()`` — run tracker GC on every running Core."""
    collected = ctx.engine.cluster.collect_all_trackers()
    ctx.engine.log.append(f"collected {collected} trackers")


def _shutdown_core(ctx: "ScriptContext", core_name: object) -> None:
    """``call shutdownCore(name)`` — gracefully shut a Core down."""
    ctx.engine.cluster.shutdown_core(str(core_name))


def _colocate(ctx: "ScriptContext", mover: object, anchor_point: object) -> None:
    """``call colocate(a, b)`` — move complet ``a`` to ``b``'s Core."""
    if not isinstance(anchor_point, Stub):
        raise ScriptRuntimeError("colocate expects complet references")
    destination = ctx.engine.cluster.locate(anchor_point)
    ctx.engine._move_one(mover, destination)


def _bind_name(ctx: "ScriptContext", name: object, stub: object) -> None:
    """``call bindName(name, complet)`` — bind at the engine's home Core."""
    if not isinstance(stub, Stub):
        raise ScriptRuntimeError("bindName expects a complet reference")
    ctx.engine.core.bind(str(name), stub, replace=True)


def _retry_move(
    ctx: "ScriptContext", delay: object = 0, destination: object = None
) -> None:
    """``call retryMove([delaySeconds[, destination]])`` — re-issue a failed move.

    Only meaningful inside an ``on moveFailed`` rule: the complet and the
    original destination are read from the firing event.  With a positive
    ``delay`` the retry is scheduled that many virtual seconds later —
    long enough, typically, for a transient outage to heal.  An explicit
    ``destination`` overrides the one from the event (retry elsewhere).
    A retry that fails again publishes another ``moveFailed``, so a rule
    combining ``retryMove`` with a delay keeps trying until it lands.
    """
    event = ctx.event
    if event is None or "complet" not in event.data:
        raise ScriptRuntimeError(
            "retryMove only works inside an 'on moveFailed' rule"
        )
    complet = str(event.data["complet"])
    target = str(destination) if destination is not None else str(event.data["destination"])
    engine = ctx.engine

    def fire() -> None:
        try:
            engine._move_one(complet, target)
            engine.log.append(f"retried move of {complet} to {target}")
        except FarGoError as exc:
            engine.log.append(f"retryMove of {complet} to {target} failed: {exc}")
            logger.warning("retryMove of %s to %s failed", complet, target, exc_info=True)

    seconds = float(delay) if isinstance(delay, (int, float)) else 0.0
    if seconds > 0:
        engine.core.scheduler.call_after(seconds, fire)
    else:
        fire()


def _recovery_of(ctx: "ScriptContext"):
    recovery = getattr(ctx.engine.cluster, "recovery", None)
    if recovery is None:
        raise ScriptRuntimeError(
            "recovery is not enabled on this cluster; call "
            "cluster.enable_recovery() before running failover/restore actions"
        )
    return recovery


def _failover(ctx: "ScriptContext", core_name: object = None) -> None:
    """``call failover([core])`` — recover a failed Core's complets.

    Without an argument the failed Core is read from the firing event,
    so the argless form only works inside an ``on coreFailed`` rule —
    the canonical reliability pairing::

        on coreFailed firedby $c do
            call failover()
        end

    Every complet last checkpointed on the failed Core is restored on a
    surviving Core (see :class:`repro.recovery.RecoveryManager` for the
    identity rules); the pass is idempotent, so many detectors firing
    the rule cost one recovery.
    """
    recovery = _recovery_of(ctx)
    if core_name is None:
        event = ctx.event
        if event is None or "core" not in event.data:
            raise ScriptRuntimeError(
                "failover() without a Core argument only works inside an "
                "'on coreFailed' rule"
            )
        core_name = event.data["core"]
    failed = str(core_name)
    if failed in recovery._handled:
        ctx.engine.log.append(f"failover of {failed} already handled")
        return
    report = recovery.recover_core(failed)
    ctx.engine.log.append(
        f"failover of {failed}: {report.recovered_count} complets "
        f"-> {report.destination}"
    )


def _restore(
    ctx: "ScriptContext", complet: object, destination: object = None
) -> None:
    """``call restore(completId[, core])`` — revive one stored checkpoint.

    ``completId`` names a checkpointed complet (full or short id form);
    ``core`` pins the Core it lands on (default: the emptiest one).
    """
    recovery = _recovery_of(ctx)
    target = str(destination) if destination is not None else None
    new_id = recovery.restore_complet(str(complet), destination=target)
    ctx.engine.log.append(f"restored {complet} as {new_id}")
