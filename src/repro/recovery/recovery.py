"""Automatic complet recovery after a Core failure.

The :class:`RecoveryManager` listens for the failure detector's
``coreFailed`` verdicts on every Core's bus and — once it trusts a
verdict — restores the dead Core's checkpointed complets on a surviving
Core, repairs the cluster's distributed pointers, and announces each
revival with a ``completRecovered`` event.

Trusting a verdict is the delicate part.  Detection is per-observer, so
a partition makes *both* sides declare the other failed; acting on the
minority side would resurrect complets whose originals are alive across
the split.  The guard:

- a verdict from a Core that is itself down is ignored (a crashed Core's
  timers keep firing locally; its detector sees everyone as silent);
- when the named Core is genuinely down (crashed or deregistered), the
  verdict is trusted;
- otherwise (a partition), the observer's reachability component must be
  a strict majority of the running Cores — ties broken toward the
  component with the alphabetically-first Core — and must exclude the
  named Core.

Identity is the second delicate part.  A complet is restored under its
*original* identity only when nothing can contradict it: the failed Core
is really down and every running Core is reachable from the recovery
destination.  Whenever the original might still be alive (partition, or
unreachable survivors), the revival gets a *fresh* identity and its
``completRecovered`` event says ``degraded=True`` — old references are
left dangling (a typed error) rather than silently split-brained.  When
a crashed Core later revives with stale hosted copies,
:meth:`RecoveryManager.reconcile` drops the copies whose identity was
reclaimed elsewhere and forwards their trackers to the living complet;
complets the revived Core still legitimately hosts (a healed partition's
false positive) get their dangling trackers repaired instead.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.complet.stub import stub_target_id, stub_tracker
from repro.core import persistence
from repro.core.events import (
    COMPLET_RECOVERED,
    CORE_FAILED,
    CORE_RECONCILED,
    CORE_RECOVERED,
)
from repro.errors import CompletError, CoreNotFoundError, FarGoError
from repro.recovery.checkpoint import CheckpointManager
from repro.recovery.store import CheckpointRecord
from repro.util.ids import CompletId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster
    from repro.core.core import Core

logger = logging.getLogger(__name__)


@dataclass(slots=True)
class RecoveryReport:
    """What one :meth:`RecoveryManager.recover_core` pass did."""

    failed: str
    destination: str
    #: New ids of complets restored under their original identity.
    restored: list[str] = field(default_factory=list)
    #: New ids of complets restored under a fresh identity (degraded).
    degraded: list[str] = field(default_factory=list)
    #: Original ids skipped (alive elsewhere, or their snapshot failed).
    skipped: list[str] = field(default_factory=list)
    #: Original id -> tracker address now hosting it (identity kept).
    relocated: dict = field(default_factory=dict)
    #: Post-condition check: survivor trackers for relocated complets
    #: still pointing at the dead Core after repair ("core:complet_id").
    #: Non-empty means the tracker-repair guarantee was broken.
    unrepaired: list[str] = field(default_factory=list)
    #: Virtual time the pass started / took.
    at: float = 0.0
    duration: float = 0.0

    @property
    def recovered_count(self) -> int:
        return len(self.restored) + len(self.degraded)


class RecoveryManager:
    """Restores a dead Core's checkpointed complets on survivors."""

    def __init__(
        self,
        cluster: "Cluster",
        checkpoints: CheckpointManager,
        *,
        auto_recover: bool = True,
    ) -> None:
        self.cluster = cluster
        self.checkpoints = checkpoints
        self.store = checkpoints.store
        self.auto_recover = auto_recover
        self.reports: list[RecoveryReport] = []
        #: Human-readable log of recovery decisions: (time, message).
        self.log: list[tuple[float, str]] = []
        #: Cores recovered and not yet seen alive again (epoch guard —
        #: many detectors declare the same failure; one recovery runs).
        self._handled: set[str] = set()
        for core in cluster.cores.values():
            self.attach(core)

    def attach(self, core: "Core") -> None:
        """Listen for detector verdicts published at ``core``."""
        core.events.subscribe(CORE_FAILED, self._on_core_failed)
        core.events.subscribe(CORE_RECOVERED, self._on_core_recovered)

    # -- verdict handling --------------------------------------------------------

    def _on_core_failed(self, event) -> None:
        failed = event.data.get("core")
        if not self.auto_recover or not isinstance(failed, str):
            return
        if failed in self._handled:
            return
        if not self._should_act(event.origin, failed):
            return
        self.recover_core(failed, seen_from=event.origin)

    def _on_core_recovered(self, event) -> None:
        revived = event.data.get("core")
        if isinstance(revived, str) and revived in self._handled:
            self.reconcile(revived)

    def _should_act(self, observer: str, failed: str) -> bool:
        network = self.cluster.transport
        if not network.is_up(observer):
            return False  # a crashed Core's own detector still ticking
        if not network.is_up(failed):
            return True  # genuinely down: crashed or deregistered
        # Both up yet unreachable: a partition.  Act only from the
        # majority component, and never from the side that still sees
        # the accused Core.
        running = sorted(
            core.name
            for core in self.cluster.running_cores()
            if network.is_up(core.name)
        )
        component = [name for name in running if network.can_reach(observer, name)]
        if failed in component:
            return False
        rest = [name for name in running if name not in component]
        if 2 * len(component) != len(running):
            return 2 * len(component) > len(running)
        # Even split: exactly one side may act; pick deterministically.
        return min(component) < min(rest)

    # -- recovery ----------------------------------------------------------------

    def recover_core(
        self,
        failed: str,
        destination: str | None = None,
        *,
        seen_from: str | None = None,
    ) -> RecoveryReport:
        """Restore every complet last checkpointed at ``failed``.

        ``destination`` pins the Core the complets land on (default: the
        reachable survivor hosting the fewest complets).  ``seen_from``
        names the Core whose detector triggered the pass; only survivors
        it can reach participate, which keeps a partition-side recovery
        inside its own component.
        """
        network = self.cluster.transport
        started = self.cluster.scheduler.clock.now()
        self._handled.add(failed)
        survivors = [
            core
            for core in self.cluster.running_cores()
            if core.name != failed
            and network.is_up(core.name)
            and (seen_from is None or network.can_reach(seen_from, core.name))
        ]
        if not survivors:
            raise CoreNotFoundError(
                f"cannot recover Core {failed!r}: no reachable survivor"
            )
        if destination is not None:
            dest = self.cluster.core(destination)
            if dest not in survivors:
                raise CoreNotFoundError(
                    f"recovery destination {destination!r} is not a reachable survivor"
                )
        else:
            dest = min(survivors, key=lambda core: (len(core.repository), core.name))

        report = RecoveryReport(failed=failed, destination=dest.name, at=started)
        records = self.store.hosted_at(failed)
        # Originals may survive the "failure" if it is only a partition,
        # or live on a survivor this side cannot see; then a revival must
        # not claim the original identity.
        unreachable = [
            core.name
            for core in self.cluster.running_cores()
            if core.name != failed and core not in survivors
        ]
        identity_safe = not network.is_up(failed) and not unreachable

        with dest.tracer.span(
            "recovery:core", category="recovery", failed=failed, records=len(records)
        ):
            for survivor in survivors:
                survivor.locator.forget_core(failed)
            for record in records:
                self._recover_record(record, dest, survivors, identity_safe, report)
            for survivor in survivors:
                survivor.references.repair_dead_core(failed, report.relocated)
            # Post-condition: no survivor tracker for a relocated complet
            # may still forward into the grave.  (Checked synchronously —
            # references minted later from stale tokens are out of scope;
            # they resolve through the registry or fail typed.)
            for survivor in survivors:
                for old_id in report.relocated:
                    tracker = survivor.repository.existing_tracker(old_id)
                    if (
                        tracker is not None
                        and tracker.next_hop is not None
                        and tracker.next_hop.core == failed
                    ):
                        report.unrepaired.append(f"{survivor.name}:{old_id}")

        report.duration = self.cluster.scheduler.clock.now() - started
        dest.metrics.histogram("recovery.duration").observe(report.duration)
        self.reports.append(report)
        self.log.append(
            (
                report.at,
                f"recovered core {failed}: {len(report.restored)} restored, "
                f"{len(report.degraded)} degraded, {len(report.skipped)} skipped "
                f"-> {dest.name}",
            )
        )
        return report

    def _recover_record(
        self,
        record: CheckpointRecord,
        dest: "Core",
        survivors: list["Core"],
        identity_safe: bool,
        report: RecoveryReport,
    ) -> None:
        original = record.complet_id
        if any(core.repository.hosts(original) for core in survivors):
            # Moved (or evacuated) after its last checkpoint: alive.
            report.skipped.append(str(original))
            return
        recovered = dest.metrics.counter("recovery.complets_recovered")
        if dest.sanitizer is not None:
            dest.sanitizer.record(
                "restore", str(original), core=dest, detail=dest.name,
                actor="recovery",
            )
        try:
            snap = persistence.Snapshot.from_bytes(record.data)
            degraded = not identity_safe
            if identity_safe:
                try:
                    stub = persistence.restore(dest, snap, keep_identity=True)
                except CompletError:
                    # The registry (or dest itself) still knows a live copy.
                    degraded = True
                    stub = persistence.restore(dest, snap)
            else:
                stub = persistence.restore(dest, snap)
        except FarGoError:
            logger.warning(
                "recovery of %s at %s failed", original, dest.name, exc_info=True
            )
            report.skipped.append(str(original))
            return
        new_id = stub_target_id(stub)
        address = stub_tracker(stub).address
        if not degraded:
            report.restored.append(str(new_id))
            report.relocated[original] = address
        else:
            report.degraded.append(str(new_id))
        dest.locator.publish(new_id, address)
        recovered.inc()
        dest.events.publish(
            COMPLET_RECOVERED,
            complet=str(new_id),
            original=str(original),
            from_core=record.host,
            at=dest.name,
            degraded=degraded,
        )
        if not degraded:
            # The revival IS the complet now; refresh its checkpoint so
            # the store names the new host instead of the dead one.
            self.checkpoints.checkpoint(new_id)
        elif self.checkpoints.is_protected(original):
            # The original may still be alive somewhere — that is what
            # made the revival degraded — so its protection and its last
            # checkpoint stay put; the fresh copy gets its own.
            self.checkpoints.protect(new_id, self.checkpoints.policy_of(original))

    # -- reconciliation -----------------------------------------------------------

    def reconcile(self, revived: str) -> list[str]:
        """A recovered-from Core is back: resolve identity duplication.

        Complets still hosted on ``revived`` whose identity was reclaimed
        by recovery elsewhere are *stale copies*: the recovered complet
        has been doing the work.  They are dropped, their trackers
        forwarded to the living copy, and a ``coreReconciled`` event
        reports what was dropped.  Returns the dropped ids.

        The complets ``revived`` still legitimately hosts get the inverse
        treatment: a degraded recovery wrote them off — survivors marked
        their trackers dangling and forgot their registry entries — so
        once the Core turns out alive, those trackers are re-pointed at
        the living originals and the locations republished.
        """
        self._handled.discard(revived)
        core = self.cluster.cores.get(revived)
        network = self.cluster.transport
        if core is None or not core.is_running or not network.is_up(revived):
            return []
        dropped: list[str] = []
        for complet_id in core.repository.complet_ids():
            winner = self._live_copy_elsewhere(complet_id, core)
            if winner is None:
                continue
            core.repository.release(complet_id)
            tracker = core.repository.existing_tracker(complet_id)
            if tracker is not None:
                remote = winner.repository.existing_tracker(complet_id)
                if remote is not None:
                    tracker.point_to(remote.address)
                else:  # pragma: no cover - winner hosts it, tracker exists
                    tracker.mark_dangling()
            dropped.append(str(complet_id))
        # Inverse repair: complets this Core still hosts were declared
        # dead by a degraded recovery — un-dangle the cluster's trackers
        # and restore the registry entries survivors forgot.
        hosted: dict = {}
        for complet_id in core.repository.complet_ids():
            tracker = core.repository.existing_tracker(complet_id)
            if tracker is None or not tracker.is_local:
                continue
            hosted[complet_id] = tracker.address
            core.locator.publish(complet_id, tracker.address)
        repaired = 0
        if hosted:
            for other in self.cluster.running_cores():
                if other is core or not network.is_up(other.name):
                    continue
                if not network.can_reach(core.name, other.name):
                    continue
                repaired += other.references.repair_revived(hosted)
        if dropped or repaired:
            self.log.append(
                (
                    self.cluster.scheduler.clock.now(),
                    f"reconciled revived core {revived}: dropped {len(dropped)} "
                    f"stale copies, repaired {repaired} trackers",
                )
            )
            core.events.publish(
                CORE_RECONCILED, core=revived, dropped=dropped, repaired=repaired
            )
        return dropped

    def _live_copy_elsewhere(self, complet_id: CompletId, core: "Core") -> "Core | None":
        network = self.cluster.transport
        for other in self.cluster.running_cores():
            if other is core or not network.is_up(other.name):
                continue
            if not network.can_reach(core.name, other.name):
                continue
            if other.repository.hosts(complet_id):
                return other
        return None

    # -- manual restore (shell / scripts) ------------------------------------------

    def restore_complet(self, complet_id_str: str, destination: str | None = None) -> str:
        """Restore one stored checkpoint by id; returns the live complet's id.

        The original identity is reclaimed when nothing contradicts it,
        otherwise the revival gets a fresh identity — same rule as
        automatic recovery, applied to a single complet.
        """
        record = self.store.by_str(complet_id_str)
        if record is None:
            raise CompletError(f"no checkpoint stored for complet {complet_id_str!r}")
        network = self.cluster.transport
        candidates = [
            core
            for core in self.cluster.running_cores()
            if network.is_up(core.name)
        ]
        if destination is not None:
            dest = self.cluster.core(destination)
            if dest not in candidates:
                raise CoreNotFoundError(f"Core {destination!r} is not up")
        else:
            if not candidates:
                raise CoreNotFoundError("no running Core to restore on")
            dest = min(candidates, key=lambda core: (len(core.repository), core.name))
        if dest.sanitizer is not None:
            dest.sanitizer.record(
                "restore", complet_id_str, core=dest, detail=dest.name,
                actor="recovery",
            )
        snap = persistence.Snapshot.from_bytes(record.data)
        if any(core.repository.hosts(record.complet_id) for core in candidates):
            stub = persistence.restore(dest, snap)
        else:
            try:
                stub = persistence.restore(dest, snap, keep_identity=True)
            except CompletError:
                stub = persistence.restore(dest, snap)
        new_id = stub_target_id(stub)
        dest.locator.publish(new_id, stub_tracker(stub).address)
        self.log.append(
            (
                self.cluster.scheduler.clock.now(),
                f"restored {complet_id_str} as {new_id} at {dest.name}",
            )
        )
        return str(new_id)

    def __repr__(self) -> str:
        return (
            f"<RecoveryManager auto={self.auto_recover} "
            f"handled={sorted(self._handled)} reports={len(self.reports)}>"
        )
