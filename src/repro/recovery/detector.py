"""Heartbeat-based failure detection between Cores.

Each Core that runs a :class:`FailureDetector` pings its peers every
``interval`` seconds of virtual time with a tiny ``HEARTBEAT`` request
(answered by every Core, detector or not).  A peer that stays silent
past ``suspect_after`` is *suspected*; past ``fail_after`` it is
declared *failed*.  Verdict transitions are published as monitor events
on the detecting Core's bus — ``coreSuspected``, ``coreFailed``,
``coreRecovered`` — so layout scripts (``on coreFailed ... failover``)
and the :class:`~repro.recovery.recovery.RecoveryManager` can react.

Detection is per-observer: a partition makes each side declare the other
failed, and both are right about reachability.  Whether a verdict should
trigger recovery is the :class:`RecoveryManager`'s call (it applies a
majority guard); the detector only reports what it can measure.
"""

from __future__ import annotations

import logging
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.events import CORE_FAILED, CORE_RECOVERED, CORE_SHUTDOWN, CORE_SUSPECTED
from repro.errors import ConfigurationError, CoreError
from repro.net.messages import MessageKind
from repro.net.retry import NO_RETRY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.core import Core

logger = logging.getLogger(__name__)

#: Peer verdicts, in order of degradation.
ALIVE = "alive"
SUSPECT = "suspect"
FAILED = "failed"


@dataclass(frozen=True, slots=True)
class DetectorConfig:
    """Tuning knobs of the failure detector (virtual-time seconds).

    ``interval`` is the ping period; a peer silent for ``suspect_after``
    seconds is suspected, and for ``fail_after`` seconds is declared
    failed.  ``fail_after`` bounds detection latency from above:
    a crash is declared within ``fail_after + interval`` seconds.
    """

    interval: float = 0.5
    suspect_after: float = 1.5
    fail_after: float = 3.0

    def __post_init__(self) -> None:
        if self.interval <= 0.0:
            raise ConfigurationError(f"interval must be positive, got {self.interval}")
        if self.suspect_after < self.interval:
            raise ConfigurationError(
                f"suspect_after ({self.suspect_after}) must be at least one "
                f"interval ({self.interval})"
            )
        if self.fail_after < self.suspect_after:
            raise ConfigurationError(
                f"fail_after ({self.fail_after}) must not precede "
                f"suspect_after ({self.suspect_after})"
            )


@dataclass(slots=True)
class _PeerState:
    last_ok: float
    status: str = ALIVE


class FailureDetector:
    """One Core's view of its peers' liveness.

    ``peers`` is a callable returning the current peer names, so Cores
    added to the cluster later are picked up on the next tick.
    """

    def __init__(
        self,
        core: "Core",
        peers: Callable[[], list[str]],
        config: DetectorConfig | None = None,
    ) -> None:
        self.core = core
        self.config = config if config is not None else DetectorConfig()
        self._peers = peers
        self._states: dict[str, _PeerState] = {}
        self._latency = core.metrics.histogram("detector.detection_latency")
        self._ticks = core.metrics.counter("detector.ticks")
        self._timer = core.scheduler.call_every(self.config.interval, self._tick)
        core.events.subscribe(CORE_SHUTDOWN, self._on_shutdown)

    # -- lifecycle -------------------------------------------------------------

    def stop(self) -> None:
        """Cancel all future pings."""
        self._timer.cancel()

    def _on_shutdown(self, event) -> None:
        if event.data.get("core") == self.core.name:
            self.stop()

    # -- the heartbeat loop ----------------------------------------------------

    def _tick(self) -> None:
        if not self.core.is_running:
            return
        self._ticks.inc()
        now = self.core.scheduler.clock.now()
        peers = [name for name in self._peers() if name != self.core.name]
        for gone in set(self._states) - set(peers):
            del self._states[gone]
        for peer in peers:
            state = self._states.get(peer)
            if state is None:
                # Grace: a newly observed peer starts the silence clock now.
                state = self._states[peer] = _PeerState(last_ok=now)
            if self._ping(peer):
                self._mark_alive(peer, state, now)
            else:
                self._mark_silent(peer, state, now)

    def _ping(self, peer: str) -> bool:
        try:
            self.core.peer.request(
                peer, MessageKind.HEARTBEAT, self.core.name, retry=NO_RETRY
            )
        except CoreError:
            return False
        return True

    def _mark_alive(self, peer: str, state: _PeerState, now: float) -> None:
        if state.status != ALIVE:
            downtime = now - state.last_ok
            self._event("detector.recoveries", peer)
            self.core.events.publish(CORE_RECOVERED, core=peer, downtime=downtime)
        state.status = ALIVE
        state.last_ok = now

    def _mark_silent(self, peer: str, state: _PeerState, now: float) -> None:
        silent = now - state.last_ok
        if state.status == ALIVE and silent >= self.config.suspect_after:
            state.status = SUSPECT
            self._event("detector.suspicions", peer)
            self.core.events.publish(CORE_SUSPECTED, core=peer, silent_for=silent)
        if state.status == SUSPECT and silent >= self.config.fail_after:
            state.status = FAILED
            self._event("detector.failures", peer)
            self._latency.observe(silent)
            self.core.events.publish(CORE_FAILED, core=peer, silent_for=silent)

    def _event(self, counter: str, peer: str) -> None:
        self.core.metrics.counter(counter, peer=peer).inc()
        tracer = self.core.tracer
        if tracer.enabled:
            span = tracer.start_span(
                f"{counter.split('.')[-1].rstrip('s')}:{peer}",
                category="detector",
                root=True,
                peer=peer,
            )
            tracer.finish(span)

    # -- introspection ---------------------------------------------------------

    def state(self) -> dict:
        """Per-peer verdicts: ``{peer: {"status": ..., "last_ok": ...}}``."""
        return {
            peer: {"status": state.status, "last_ok": state.last_ok}
            for peer, state in sorted(self._states.items())
        }

    def verdict(self, peer: str) -> str:
        """This detector's current verdict on ``peer`` (default: alive)."""
        state = self._states.get(peer)
        return state.status if state is not None else ALIVE

    def __repr__(self) -> str:
        failed = sorted(p for p, s in self._states.items() if s.status == FAILED)
        return f"<FailureDetector at {self.core.name} failed={failed}>"
