"""The checkpoint store: snapshot bytes that outlive their host Core.

The store lives with the cluster harness, not with any Core, so the
snapshots it holds survive a Core crash — the stand-in for the durable
replicated storage a real deployment would use.  Records are keyed by
complet identity; each knows which Core hosted the complet when the
checkpoint was taken (recovery restores exactly the complets whose last
known host died) and which pull-group it was captured with (the group is
restored together, honoring relocation semantics).

Two backends:

- :class:`CheckpointStore` — the in-memory default; survives simulated
  Core crashes (the harness outlives them) but not the process.
- :class:`FileCheckpointStore` — durable and cross-process, layered on
  the content-keyed :class:`~repro.store.store.FileStore`: snapshot
  bytes land as refcounted blobs (an unchanged complet re-checkpoints
  to the *same* blob), while a per-complet JSON manifest — written
  atomically via rename — tracks generations.  Old generations are
  garbage-collected past ``keep_generations``.  A respawned Core
  process pointed at the same directory reads the newest generation
  written by its predecessor, which is what makes supervised
  crash-restart recovery possible.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.util.ids import CompletId


@dataclass(frozen=True, slots=True)
class CheckpointRecord:
    """One checkpointed complet: snapshot bytes plus placement facts."""

    complet_id: CompletId
    data: bytes
    taken_at: float
    host: str
    #: Identities of the pull-group captured in the same pass (self included).
    group: tuple[CompletId, ...] = ()


class CheckpointStore:
    """Latest checkpoint per complet identity."""

    def __init__(self) -> None:
        self._records: dict[CompletId, CheckpointRecord] = {}

    def put(self, record: CheckpointRecord) -> None:
        self._records[record.complet_id] = record

    def get(self, complet_id: CompletId) -> CheckpointRecord | None:
        return self._records.get(complet_id)

    def by_str(self, complet_id_str: str) -> CheckpointRecord | None:
        """Resolve a record from the display form of its complet id."""
        for complet_id, record in self._records.items():
            if str(complet_id) == complet_id_str or complet_id.short() == complet_id_str:
                return record
        return None

    def ids(self) -> list[CompletId]:
        return sorted(self._records, key=str)

    def hosted_at(self, core_name: str) -> list[CheckpointRecord]:
        """Records whose complet last checkpointed while hosted at ``core_name``."""
        return sorted(
            (r for r in self._records.values() if r.host == core_name),
            key=lambda r: str(r.complet_id),
        )

    def discard(self, complet_id: CompletId) -> None:
        self._records.pop(complet_id, None)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, complet_id: CompletId) -> bool:
        return complet_id in self._records

    def __repr__(self) -> str:
        return f"<CheckpointStore {len(self._records)} records>"


# -- durable, cross-process backend -------------------------------------------


def _id_to_json(complet_id: CompletId) -> list:
    return [complet_id.birth_core, complet_id.serial, complet_id.type_name]


def _id_from_json(fields: list) -> CompletId:
    return CompletId(str(fields[0]), int(fields[1]), str(fields[2]))


class FileCheckpointStore(CheckpointStore):
    """Durable checkpoints in a directory shared across OS processes.

    Layout under ``root``::

        blobs/                   content-keyed FileStore (snapshot bytes)
        <id-digest>/MANIFEST.json   per-complet generation manifest

    The manifest names the complet (its id contains ``/`` so directories
    use a digest of the display form instead), the latest generation,
    and per-generation blob keys + placement facts.  Writes go through a
    temp file and :func:`os.replace`, so a reader in another process —
    or a respawned successor of a SIGKILLed writer — always sees either
    the previous manifest or the complete new one, never a torn write.
    Every read consults the disk, so records written by one process are
    immediately visible to every other one pointed at the directory.
    """

    MANIFEST = "MANIFEST.json"

    def __init__(self, root: str | Path, keep_generations: int = 3) -> None:
        super().__init__()
        from repro.store.store import FileStore

        if keep_generations < 1:
            raise ValueError(f"keep_generations must be >= 1, got {keep_generations}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.keep_generations = keep_generations
        self._blobs = FileStore(self.root / "blobs")

    # -- directory layout --------------------------------------------------

    def _slot(self, complet_id: CompletId) -> Path:
        digest = hashlib.sha256(str(complet_id).encode()).hexdigest()[:16]
        return self.root / digest

    def _manifest_path(self, slot: Path) -> Path:
        return slot / self.MANIFEST

    def _read_manifest(self, slot: Path) -> dict | None:
        try:
            return json.loads(self._manifest_path(slot).read_text())
        except (OSError, ValueError):
            return None

    def _write_manifest(self, slot: Path, manifest: dict) -> None:
        slot.mkdir(parents=True, exist_ok=True)
        tmp = slot / f"{self.MANIFEST}.tmp.{os.getpid()}"
        tmp.write_text(json.dumps(manifest, indent=1, sort_keys=True))
        os.replace(tmp, self._manifest_path(slot))

    def _record_from(self, manifest: dict, generation: dict) -> CheckpointRecord:
        from repro.store.store import StoreKey

        data = self._blobs.get(StoreKey(generation["digest"], generation["size"]))
        return CheckpointRecord(
            complet_id=_id_from_json(manifest["complet_id"]),
            data=data,
            taken_at=float(generation["taken_at"]),
            host=str(generation["host"]),
            group=tuple(_id_from_json(g) for g in generation["group"]),
        )

    def _latest(self, manifest: dict) -> dict | None:
        for generation in manifest.get("generations", []):
            if generation["gen"] == manifest.get("latest"):
                return generation
        return None

    # -- CheckpointStore API ----------------------------------------------

    def put(self, record: CheckpointRecord) -> None:
        slot = self._slot(record.complet_id)
        manifest = self._read_manifest(slot) or {
            "complet_id": _id_to_json(record.complet_id),
            "display": str(record.complet_id),
            "latest": 0,
            "generations": [],
        }
        key = self._blobs.put(record.data)
        generation = {
            "gen": int(manifest["latest"]) + 1,
            "digest": key.digest,
            "size": key.size,
            "taken_at": record.taken_at,
            "host": record.host,
            "group": [_id_to_json(g) for g in record.group],
        }
        manifest["latest"] = generation["gen"]
        manifest["generations"].append(generation)
        # Generation GC: evict blob references past the retention window.
        from repro.store.store import StoreKey

        while len(manifest["generations"]) > self.keep_generations:
            stale = manifest["generations"].pop(0)
            self._blobs.evict(StoreKey(stale["digest"], stale["size"]))
        self._write_manifest(slot, manifest)

    def get(self, complet_id: CompletId) -> CheckpointRecord | None:
        manifest = self._read_manifest(self._slot(complet_id))
        if manifest is None:
            return None
        generation = self._latest(manifest)
        if generation is None:
            return None
        try:
            return self._record_from(manifest, generation)
        except Exception:
            return None

    def generations(self, complet_id: CompletId) -> list[dict]:
        """Retained generation metadata, oldest first (admin surface)."""
        manifest = self._read_manifest(self._slot(complet_id))
        if manifest is None:
            return []
        return list(manifest.get("generations", []))

    def _manifests(self) -> list[dict]:
        manifests = []
        for slot in sorted(self.root.iterdir()):
            if not slot.is_dir() or slot.name == "blobs":
                continue
            manifest = self._read_manifest(slot)
            if manifest is not None:
                manifests.append(manifest)
        return manifests

    def by_str(self, complet_id_str: str) -> CheckpointRecord | None:
        for manifest in self._manifests():
            complet_id = _id_from_json(manifest["complet_id"])
            if (
                str(complet_id) == complet_id_str
                or complet_id.short() == complet_id_str
            ):
                return self.get(complet_id)
        return None

    def ids(self) -> list[CompletId]:
        found = []
        for manifest in self._manifests():
            complet_id = _id_from_json(manifest["complet_id"])
            if self._latest(manifest) is not None:
                found.append(complet_id)
        return sorted(found, key=str)

    def hosted_at(self, core_name: str) -> list[CheckpointRecord]:
        records = []
        for manifest in self._manifests():
            generation = self._latest(manifest)
            if generation is None or generation["host"] != core_name:
                continue
            try:
                records.append(self._record_from(manifest, generation))
            except Exception:
                continue
        return sorted(records, key=lambda r: str(r.complet_id))

    def discard(self, complet_id: CompletId) -> None:
        from repro.store.store import StoreKey

        slot = self._slot(complet_id)
        manifest = self._read_manifest(slot)
        if manifest is None:
            return
        for generation in manifest.get("generations", []):
            self._blobs.evict(StoreKey(generation["digest"], generation["size"]))
        manifest["generations"] = []
        manifest["latest"] = 0
        self._write_manifest(slot, manifest)

    def __len__(self) -> int:
        return len(self.ids())

    def __contains__(self, complet_id: CompletId) -> bool:
        return self.get(complet_id) is not None

    def __repr__(self) -> str:
        return f"<FileCheckpointStore {self.root} ({len(self)} records)>"
