"""The checkpoint store: snapshot bytes that outlive their host Core.

The store lives with the cluster harness, not with any Core, so the
snapshots it holds survive a Core crash — the stand-in for the durable
replicated storage a real deployment would use.  Records are keyed by
complet identity; each knows which Core hosted the complet when the
checkpoint was taken (recovery restores exactly the complets whose last
known host died) and which pull-group it was captured with (the group is
restored together, honoring relocation semantics).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.ids import CompletId


@dataclass(frozen=True, slots=True)
class CheckpointRecord:
    """One checkpointed complet: snapshot bytes plus placement facts."""

    complet_id: CompletId
    data: bytes
    taken_at: float
    host: str
    #: Identities of the pull-group captured in the same pass (self included).
    group: tuple[CompletId, ...] = ()


class CheckpointStore:
    """Latest checkpoint per complet identity."""

    def __init__(self) -> None:
        self._records: dict[CompletId, CheckpointRecord] = {}

    def put(self, record: CheckpointRecord) -> None:
        self._records[record.complet_id] = record

    def get(self, complet_id: CompletId) -> CheckpointRecord | None:
        return self._records.get(complet_id)

    def by_str(self, complet_id_str: str) -> CheckpointRecord | None:
        """Resolve a record from the display form of its complet id."""
        for complet_id, record in self._records.items():
            if str(complet_id) == complet_id_str or complet_id.short() == complet_id_str:
                return record
        return None

    def ids(self) -> list[CompletId]:
        return sorted(self._records, key=str)

    def hosted_at(self, core_name: str) -> list[CheckpointRecord]:
        """Records whose complet last checkpointed while hosted at ``core_name``."""
        return sorted(
            (r for r in self._records.values() if r.host == core_name),
            key=lambda r: str(r.complet_id),
        )

    def discard(self, complet_id: CompletId) -> None:
        self._records.pop(complet_id, None)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, complet_id: CompletId) -> bool:
        return complet_id in self._records

    def __repr__(self) -> str:
        return f"<CheckpointStore {len(self._records)} records>"
