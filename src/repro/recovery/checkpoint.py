"""Checkpoint policies: when and how protected complets are snapshotted.

A complet under protection is checkpointed with the persistence
machinery (:func:`repro.core.persistence.snapshot` — the stream is
exactly "what would move", with stamp references preserved) into the
cluster's :class:`~repro.recovery.store.CheckpointStore`:

- **immediately** when protection starts;
- **every** ``interval`` virtual seconds, when the policy sets one;
- **on arrival**, when the policy asks for it — the complet is
  re-checkpointed right after every migration, so the stored host is
  never stale and recovery restores it where it last lived.

Each pass also checkpoints the complet's *local pull-group*: complets
reachable over ``pull``-typed references hosted on the same Core move
with it, so they must be captured and restored with it too.  (Remote
group members are captured by their own host's pass; ``duplicate``
references are *not* followed — fetching a fresh clone is a remote side
effect, not a checkpoint.)
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.complet.anchor import Anchor
from repro.complet.closure import compute_closure
from repro.complet.relocators import Pull
from repro.complet.stub import Stub, stub_meta, stub_target_id
from repro.core import persistence
from repro.core.events import COMPLET_ARRIVED
from repro.errors import FarGoError
from repro.recovery.store import CheckpointRecord, CheckpointStore
from repro.sim.scheduler import Timer
from repro.util.ids import CompletId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster
    from repro.core.core import Core

logger = logging.getLogger(__name__)


def local_pull_group(host: "Core", anchor: Anchor) -> list[Anchor]:
    """``anchor`` plus local complets pulled along when it moves.

    Shared by the cluster-wide :class:`CheckpointManager` and the
    standalone child-process checkpointer in
    :mod:`repro.cluster.launch`.
    """
    members = [anchor]
    seen = {anchor.complet_id}
    queue = [anchor]
    while queue:
        for stub in compute_closure(queue.pop()).outgoing:
            if not isinstance(stub_meta(stub).get_relocator(), Pull):
                continue
            target_id = stub_target_id(stub)
            if target_id in seen:
                continue
            member = host.repository.get(target_id)
            if member is None:
                continue
            seen.add(target_id)
            members.append(member)
            queue.append(member)
    return members


@dataclass(frozen=True, slots=True)
class CheckpointPolicy:
    """When a protected complet gets (re-)checkpointed.

    The default policy takes one checkpoint when protection starts and
    never again; add ``interval`` for periodic passes and/or
    ``on_arrival=True`` to re-checkpoint after every migration.
    """

    interval: float | None = None
    on_arrival: bool = False


@dataclass(slots=True)
class _Protection:
    complet_id: CompletId
    policy: CheckpointPolicy
    timer: Timer | None = None


class CheckpointManager:
    """Tracks protected complets and runs their checkpoint policies."""

    def __init__(self, cluster: "Cluster", store: CheckpointStore | None = None) -> None:
        self.cluster = cluster
        self.store = store if store is not None else CheckpointStore()
        self._protected: dict[CompletId, _Protection] = {}
        self._by_str: dict[str, CompletId] = {}
        #: Checkpoint passes that found no reachable host (crash window).
        self.skipped = 0
        for core in cluster.cores.values():
            self.attach(core)

    def attach(self, core: "Core") -> None:
        """Listen for arrivals at ``core`` (on-arrival policies)."""
        core.events.subscribe(COMPLET_ARRIVED, self._on_arrival)

    # -- protection ------------------------------------------------------------

    def protect(
        self, target: Stub | CompletId, policy: CheckpointPolicy | None = None
    ) -> CompletId:
        """Put a complet under ``policy``; takes the first checkpoint now."""
        complet_id = stub_target_id(target) if isinstance(target, Stub) else target
        policy = policy if policy is not None else CheckpointPolicy()
        self.unprotect(complet_id)
        protection = _Protection(complet_id, policy)
        if policy.interval is not None:
            protection.timer = self.cluster.scheduler.call_every(
                policy.interval, self._checkpoint_quietly, complet_id
            )
        self._protected[complet_id] = protection
        self._by_str[str(complet_id)] = complet_id
        self.checkpoint(complet_id)
        return complet_id

    def unprotect(self, complet_id: CompletId) -> None:
        protection = self._protected.pop(complet_id, None)
        if protection is not None:
            self._by_str.pop(str(complet_id), None)
            if protection.timer is not None:
                protection.timer.cancel()

    def policy_of(self, complet_id: CompletId) -> CheckpointPolicy | None:
        protection = self._protected.get(complet_id)
        return protection.policy if protection is not None else None

    def protected_ids(self) -> list[CompletId]:
        return sorted(self._protected, key=str)

    def is_protected(self, complet_id: CompletId) -> bool:
        return complet_id in self._protected

    # -- checkpointing ----------------------------------------------------------

    def checkpoint(self, complet_id: CompletId, *, at: str | None = None) -> bool:
        """Checkpoint ``complet_id`` (and its local pull-group) right now.

        Returns False — counting the pass as skipped — when no single
        reachable running Core hosts the complet: during a crash window
        there is nothing safe to snapshot, and finding the identity on
        *two* Cores (a revival race) means neither copy is authoritative.
        ``at`` names the authoritative host when the caller knows it
        (mid-move, the departing copy still exists on the source).
        """
        host = self._find_host(complet_id) if at is None else self._host_named(at, complet_id)
        if host is None:
            self.skipped += 1
            return False
        anchor = host.repository.get(complet_id)
        assert anchor is not None
        members = self._pull_group(host, anchor)
        group = tuple(member.complet_id for member in members)
        now = self.cluster.scheduler.clock.now()
        taken = host.metrics.counter("checkpoint.taken")
        with host.tracer.span(
            "checkpoint", category="recovery", complet=str(complet_id), members=len(members)
        ):
            for member in members:
                try:
                    snap = persistence.snapshot(host, member)
                except FarGoError:
                    logger.warning(
                        "checkpoint of %s at %s failed", member.complet_id, host.name,
                        exc_info=True,
                    )
                    self.skipped += 1
                    continue
                self.store.put(
                    CheckpointRecord(
                        complet_id=member.complet_id,
                        data=snap.to_bytes(),
                        taken_at=now,
                        host=host.name,
                        group=group,
                    )
                )
                taken.inc()
        return True

    def checkpoint_all(self) -> int:
        """One pass over every protected complet; checkpoints taken."""
        taken = 0
        for complet_id in self.protected_ids():
            if self.checkpoint(complet_id):
                taken += 1
        return taken

    def _checkpoint_quietly(self, complet_id: CompletId, at: str | None = None) -> None:
        # Timer callback: a failing pass must not abort the clock sweep.
        try:
            self.checkpoint(complet_id, at=at)
        except FarGoError:
            logger.warning("periodic checkpoint of %s failed", complet_id, exc_info=True)
            self.skipped += 1

    def _host_named(self, name: str, complet_id: CompletId) -> "Core | None":
        core = self.cluster.cores.get(name)
        if (
            core is None
            or not core.is_running
            or not self.cluster.transport.is_up(name)
            or not core.repository.hosts(complet_id)
        ):
            return None
        return core

    def _find_host(self, complet_id: CompletId) -> "Core | None":
        hosts = [
            core
            for core in self.cluster.running_cores()
            if self.cluster.transport.is_up(core.name)
            and core.repository.hosts(complet_id)
        ]
        if len(hosts) != 1:
            return None
        return hosts[0]

    def _pull_group(self, host: "Core", anchor: Anchor) -> list[Anchor]:
        return local_pull_group(host, anchor)

    # -- event hooks -------------------------------------------------------------

    def _on_arrival(self, event) -> None:
        complet_id = self._by_str.get(event.data.get("complet", ""))
        if complet_id is None:
            return
        protection = self._protected.get(complet_id)
        if protection is not None and protection.policy.on_arrival:
            # The publishing Core just installed the arrival: it is the
            # authoritative host even while the departing copy lingers.
            self._checkpoint_quietly(complet_id, at=event.origin)

    def __repr__(self) -> str:
        return (
            f"<CheckpointManager {len(self._protected)} protected, "
            f"{len(self.store)} stored>"
        )
