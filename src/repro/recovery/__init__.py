"""Liveness detection, checkpoint policies, and automatic recovery.

The paper's Cores are stationary and assumed reliable; this package
supplies the missing robustness story so layout experiments can include
Core *failure* as an environmental event, next to the link degradation
and shutdown the monitoring layer already reports:

- :class:`FailureDetector` — heartbeat pings on the virtual clock,
  publishing ``coreSuspected`` / ``coreFailed`` / ``coreRecovered``
  monitor events per peer;
- :class:`CheckpointManager` + :class:`CheckpointPolicy` — periodic and
  on-arrival complet snapshots (via :mod:`repro.core.persistence`) into
  a cluster-survivable :class:`CheckpointStore`;
- :class:`RecoveryManager` — reacts to ``coreFailed`` by restoring the
  dead Core's checkpointed complets on a survivor, repairing tracker
  chains and location-registry records, and reconciling identities when
  the dead Core comes back.

Entry point: :meth:`repro.cluster.cluster.Cluster.enable_recovery`.
"""

from repro.recovery.checkpoint import CheckpointManager, CheckpointPolicy
from repro.recovery.detector import DetectorConfig, FailureDetector
from repro.recovery.recovery import RecoveryManager, RecoveryReport
from repro.recovery.store import (
    CheckpointRecord,
    CheckpointStore,
    FileCheckpointStore,
)

__all__ = [
    "CheckpointManager",
    "CheckpointPolicy",
    "CheckpointRecord",
    "CheckpointStore",
    "DetectorConfig",
    "FailureDetector",
    "FileCheckpointStore",
    "RecoveryManager",
    "RecoveryReport",
]
