"""The profiling services of §4.1.

Every service is exposed through two interfaces, exactly as the paper
specifies:

- **instant** — :meth:`Profiler.instant` evaluates the service now.  A
  small TTL cache serves successive instant requests without
  re-evaluation ("the monitor caches recent results").
- **continuous** — :meth:`Profiler.start` begins periodic sampling into
  an exponential average, :meth:`Profiler.get` reads the current
  average, and :meth:`Profiler.stop` ends the sampling *if no other
  client still needs it* (starts are reference-counted).  Only services
  someone started are ever sampled, "minimizing system overhead".

Application profiling (invocation rates and byte rates along complet
references) is fed by the invocation unit through :meth:`note_invocation`
and :meth:`note_served`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.errors import ProfilingNotStartedError, UnknownServiceError
from repro.sim.scheduler import Timer
from repro.util.ema import ExponentialAverage, RateMeter
from repro.util.ids import CompletId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.core import Core

#: Attribution for invocations issued outside any complet (driver code).
EXTERNAL = "external"

#: A sample listener receives (raw sample, running average).
SampleListener = Callable[[float, float], None]

#: Service implementation: evaluates the quantity now for given params.
ServiceFn = Callable[["Core", dict], float]


@dataclass(slots=True)
class ServiceDef:
    """One registered profiling service."""

    name: str
    fn: ServiceFn
    description: str = ""
    #: Expensive services (closure scans, probes) are worth caching and
    #: are better used through the instant interface (§4.1).
    expensive: bool = False
    #: Services that already return a smoothed value (rate meters) keep
    #: alpha=1.0 in their continuous profile to avoid double smoothing.
    default_alpha: float | None = None


#: Samples kept per continuous profile for history queries.
HISTORY_CAPACITY = 256


class ListenerFanoutStats:
    """Process-wide sample-listener fan-out counters (bench-facing).

    ``snapshots_built`` counts listener-table snapshot constructions per
    sampler tick; with snapshot caching this drops to once per
    listener-set change.
    """

    __slots__ = ("snapshots_built", "sample_ticks")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.snapshots_built = 0
        self.sample_ticks = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "snapshots_built": self.snapshots_built,
            "sample_ticks": self.sample_ticks,
        }


#: Shared counters; ``LISTENER_STATS.reset()`` scopes a measurement window.
LISTENER_STATS = ListenerFanoutStats()


@dataclass(slots=True)
class ContinuousProfile:
    """A running continuous measurement of one (service, params) pair."""

    service: ServiceDef
    params: dict
    interval: float
    average: ExponentialAverage
    timer: Timer | None = None
    refcount: int = 1
    samples_taken: int = 0
    last_sample: float = 0.0
    listeners: dict[int, SampleListener] = field(default_factory=dict)
    #: Cached immutable view of ``listeners``, rebuilt lazily after a
    #: listener change instead of on every sampler tick.
    listener_snapshot: tuple[tuple[int, SampleListener], ...] | None = None
    #: Recent (time, raw sample) pairs, oldest first, bounded.
    history: list[tuple[float, float]] = field(default_factory=list)


def _key(service: str, params: dict) -> tuple:
    return (service, tuple(sorted(params.items())))


class ProfilingSession:
    """A handle on one continuous profile (the preferred interface).

    Obtained from :meth:`Profiler.session` (or ``core.profile(...)``).
    Reads the running average via :attr:`value`, the raw sample history
    via :meth:`history`, and releases its reference on :meth:`stop` —
    automatically when used as a context manager.  Stopping twice is a
    no-op, so sessions are safe to close defensively.
    """

    __slots__ = ("profiler", "service", "params", "key", "_open")

    def __init__(
        self,
        profiler: "Profiler",
        service: str,
        *,
        interval: float = 1.0,
        alpha: float | None = None,
        **params,
    ) -> None:
        self.profiler = profiler
        self.service = service
        self.params = dict(params)
        self.key = profiler.start(service, interval=interval, alpha=alpha, **params)
        self._open = True

    @property
    def value(self) -> float:
        """The current exponential average of the profiled quantity."""
        return self.profiler.get(self.service, **self.params)

    @property
    def active(self) -> bool:
        return self._open

    def history(self) -> list[tuple[float, float]]:
        """Recent ``(time, raw sample)`` pairs, oldest first."""
        return self.profiler.history(self.service, **self.params)

    def stop(self) -> None:
        """Release this session's reference (idempotent)."""
        if not self._open:
            return
        self._open = False
        self.profiler.stop(self.service, **self.params)

    def __enter__(self) -> "ProfilingSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "open" if self._open else "stopped"
        return f"<ProfilingSession {self.service} {self.params or ''} ({state})>"


class Profiler:
    """One Core's profiling unit."""

    def __init__(self, core: "Core", *, cache_ttl: float = 1.0) -> None:
        self.core = core
        self.cache_ttl = cache_ttl
        self._services: dict[str, ServiceDef] = {}
        self._profiles: dict[tuple, ContinuousProfile] = {}
        self._cache: dict[tuple, tuple[float, float]] = {}
        self._listener_ids = 0
        # Counters live in the Core's unified metrics registry; the
        # instruments are bound here once, per-service lazily below.
        self._cache_hit_counter = core.metrics.counter("profiler.cache_hits")
        self._evaluation_counters: dict[str, object] = {}
        # Application-profiling meters, fed by the invocation unit.
        self._invocation_meters: dict[tuple[str, str], RateMeter] = {}
        self._byte_meters: dict[tuple[str, str], RateMeter] = {}
        self._served_meters: dict[str, RateMeter] = {}
        self._cpu_meter = RateMeter()
        from repro.monitor.services import register_builtin_services

        register_builtin_services(self)

    # -- service registry -----------------------------------------------------------

    def register_service(
        self,
        name: str,
        fn: ServiceFn,
        *,
        description: str = "",
        expensive: bool = False,
        default_alpha: float | None = None,
    ) -> None:
        """Add a profiling service (applications may add their own)."""
        self._services[name] = ServiceDef(name, fn, description, expensive, default_alpha)

    def service(self, name: str) -> ServiceDef:
        try:
            return self._services[name]
        except KeyError:
            raise UnknownServiceError(
                f"Core {self.core.name!r} has no profiling service {name!r}; "
                f"known: {sorted(self._services)}"
            ) from None

    def services(self) -> list[str]:
        return sorted(self._services)

    # -- instant interface -----------------------------------------------------------

    def instant(self, service: str, *, use_cache: bool = True, **params) -> float:
        """Evaluate ``service`` now (serving from the TTL cache if fresh)."""
        definition = self.service(service)
        key = _key(service, params)
        now = self.core.scheduler.clock.now()
        if use_cache:
            cached = self._cache.get(key)
            if cached is not None and now - cached[0] <= self.cache_ttl:
                self._cache_hit_counter.inc()
                return cached[1]
        value = self._evaluate(definition, params)
        self._cache[key] = (now, value)
        return value

    def _evaluate(self, definition: ServiceDef, params: dict) -> float:
        counter = self._evaluation_counters.get(definition.name)
        if counter is None:
            counter = self._evaluation_counters[definition.name] = (
                self.core.metrics.counter(
                    "profiler.evaluations", service=definition.name
                )
            )
        counter.inc()  # type: ignore[attr-defined]
        return float(definition.fn(self.core, params))

    @property
    def evaluations(self) -> Counter:
        """Evaluation counts per service (shows what the cache avoided).

        A read-only view over the ``profiler.evaluations`` counters in
        the Core's metrics registry.
        """
        counts: Counter = Counter()
        for labels, counter in self.core.metrics.counters_named(
            "profiler.evaluations"
        ).items():
            counts[dict(labels)["service"]] = int(counter.value)
        return counts

    @property
    def cache_hits(self) -> int:
        """Instant reads served from the TTL cache (registry-backed)."""
        return int(self._cache_hit_counter.value)

    # -- continuous interface ------------------------------------------------------------

    def start(
        self,
        service: str,
        *,
        interval: float = 1.0,
        alpha: float | None = None,
        **params,
    ) -> tuple:
        """Begin (or join) continuous profiling of ``service``.

        Starts are reference-counted: a second client starting the same
        (service, params) pair shares the existing sampler instead of
        adding measurement work.  Returns the profile key for use with
        :meth:`get` / :meth:`stop`.
        """
        definition = self.service(service)
        key = _key(service, params)
        profile = self._profiles.get(key)
        if profile is not None:
            profile.refcount += 1
            return key
        if alpha is None:
            alpha = definition.default_alpha if definition.default_alpha is not None else 0.3
        profile = ContinuousProfile(
            service=definition,
            params=params,
            interval=interval,
            average=ExponentialAverage(alpha),
        )
        profile.timer = self.core.scheduler.call_every(interval, self._sample, key)
        self._profiles[key] = profile
        return key

    def session(
        self,
        service: str,
        *,
        interval: float = 1.0,
        alpha: float | None = None,
        **params,
    ) -> ProfilingSession:
        """Begin (or join) continuous profiling, returning a session handle."""
        return ProfilingSession(
            self, service, interval=interval, alpha=alpha, **params
        )

    def get(self, service: str, **params) -> float:
        """Current average of a continuous profile."""
        profile = self._profiles.get(_key(service, params))
        if profile is None:
            raise ProfilingNotStartedError(
                f"continuous profiling of {service!r} {params or ''} was not started"
            )
        return profile.average.value

    def stop(self, service: str, **params) -> None:
        """Leave a continuous profile; sampling ends with the last client."""
        key = _key(service, params)
        profile = self._profiles.get(key)
        if profile is None:
            raise ProfilingNotStartedError(
                f"continuous profiling of {service!r} {params or ''} was not started"
            )
        profile.refcount -= 1
        if profile.refcount <= 0 and not profile.listeners:
            self._drop_profile(key, profile)

    def _drop_profile(self, key: tuple, profile: ContinuousProfile) -> None:
        if profile.timer is not None:
            profile.timer.cancel()
        self._profiles.pop(key, None)

    def _sample(self, key: tuple) -> None:
        profile = self._profiles.get(key)
        if profile is None:
            return
        value = self._evaluate(profile.service, profile.params)
        average = profile.average.add(value)
        profile.samples_taken += 1
        profile.last_sample = value
        profile.history.append((self.core.scheduler.clock.now(), value))
        if len(profile.history) > HISTORY_CAPACITY:
            del profile.history[: len(profile.history) - HISTORY_CAPACITY]
        LISTENER_STATS.sample_ticks += 1
        snapshot = profile.listener_snapshot
        if snapshot is None:
            if profile.listeners:
                LISTENER_STATS.snapshots_built += 1
            snapshot = profile.listener_snapshot = tuple(profile.listeners.items())
        # Membership is re-checked per call so a listener removed by an
        # earlier listener of the same tick (e.g. ``unwatch`` from inside
        # a watch handler) is not fired with the in-flight sample.
        for listener_id, listener in snapshot:
            if profile.listeners.get(listener_id) is listener:
                listener(value, average)

    def history(self, service: str, **params) -> list[tuple[float, float]]:
        """Recent ``(time, raw sample)`` pairs of a continuous profile.

        Bounded to the last :data:`HISTORY_CAPACITY` samples; the viewer
        renders these as sparklines, experiments plot them directly.
        """
        profile = self._profiles.get(_key(service, params))
        if profile is None:
            raise ProfilingNotStartedError(
                f"continuous profiling of {service!r} {params or ''} was not started"
            )
        return list(profile.history)

    # -- sample listeners (used by the monitor-event engine) ----------------------------

    def add_sample_listener(
        self, service: str, listener: SampleListener, **params
    ) -> tuple[tuple, int]:
        """Attach a per-sample callback to a started continuous profile."""
        key = _key(service, params)
        profile = self._profiles.get(key)
        if profile is None:
            raise ProfilingNotStartedError(
                f"cannot listen to {service!r}: continuous profiling not started"
            )
        self._listener_ids += 1
        profile.listeners[self._listener_ids] = listener
        profile.listener_snapshot = None
        return (key, self._listener_ids)

    def remove_sample_listener(self, handle: tuple[tuple, int]) -> None:
        key, listener_id = handle
        profile = self._profiles.get(key)
        if profile is None:
            return
        profile.listeners.pop(listener_id, None)
        profile.listener_snapshot = None
        if profile.refcount <= 0 and not profile.listeners:
            self._drop_profile(key, profile)

    # -- introspection --------------------------------------------------------------------

    def active_profiles(self) -> int:
        """Number of (service, params) pairs currently being sampled."""
        return len(self._profiles)

    def profile_keys(self) -> list[tuple]:
        return list(self._profiles)

    # -- application-profiling feed (called by the invocation unit) -----------------------

    def note_invocation(
        self, source: CompletId | None, target: CompletId, nbytes: int
    ) -> None:
        src = str(source) if source is not None else EXTERNAL
        dst = str(target)
        self._meter(self._invocation_meters, (src, dst)).mark()
        self._meter(self._byte_meters, (src, dst)).mark(nbytes)

    def note_result_bytes(
        self, source: CompletId | None, target: CompletId, nbytes: int
    ) -> None:
        """Result payloads count toward the reference's byte rate too —
        a reference pulling bulk data *back* is just as link-hungry."""
        src = str(source) if source is not None else EXTERNAL
        self._meter(self._byte_meters, (src, str(target))).mark(nbytes)

    def note_served(self, complet_id: CompletId) -> None:
        self._cpu_meter.mark()
        self._meter(self._served_meters, str(complet_id)).mark()

    @staticmethod
    def _meter(table: dict, key) -> RateMeter:
        meter = table.get(key)
        if meter is None:
            meter = table[key] = RateMeter()
        return meter

    def invocation_meter(self, src: str, dst: str) -> RateMeter:
        return self._meter(self._invocation_meters, (src, dst))

    def byte_meter(self, src: str, dst: str) -> RateMeter:
        return self._meter(self._byte_meters, (src, dst))

    def served_meter(self, complet: str) -> RateMeter:
        return self._meter(self._served_meters, complet)

    @property
    def cpu_meter(self) -> RateMeter:
        return self._cpu_meter

    def shutdown(self) -> None:
        """Cancel every sampler (Core shutdown)."""
        for key, profile in list(self._profiles.items()):
            self._drop_profile(key, profile)
