"""Monitor events: asynchronous threshold notification (§4.2).

Registering a watch starts (or joins) the continuous profile of the
watched service and attaches a per-sample filter holding the watch's
threshold.  The *measurement* is shared — a hundred listeners with a
hundred different thresholds still cost one sampler — which is the
paper's "many listeners without overloading the measurement unit".

When a sample crosses the threshold, the engine publishes an event on
the Core's event bus, from which local callables, remote Cores, and
complet listeners all receive it.  Watches are edge-triggered by
default (one event per crossing); ``repeat=True`` fires on every
sample satisfying the predicate.
"""

from __future__ import annotations

import itertools
import operator
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.core import Core

#: Comparison operators accepted by watches (script syntax uses the same).
OPERATORS: dict[str, Callable[[float, float], bool]] = {
    ">": operator.gt,
    "<": operator.lt,
    ">=": operator.ge,
    "<=": operator.le,
}


@dataclass(slots=True)
class WatchSpec:
    """Declarative description of one threshold watch."""

    service: str
    op: str
    threshold: float
    interval: float = 1.0
    params: dict = field(default_factory=dict)
    event_name: str | None = None
    repeat: bool = False

    def resolved_event_name(self) -> str:
        if self.event_name is not None:
            return self.event_name
        return f"{self.service}{self.op}{self.threshold:g}"


@dataclass(slots=True)
class _Watch:
    watch_id: int
    spec: WatchSpec
    predicate: Callable[[float], bool]
    listener_handle: tuple
    satisfied: bool = False
    fired_count: int = 0


class MonitorEventEngine:
    """One Core's threshold-event engine."""

    def __init__(self, core: "Core") -> None:
        self.core = core
        self._ids = itertools.count(1)
        self._watches: dict[int, _Watch] = {}

    def watch(
        self,
        service: str,
        op: str,
        threshold: float,
        *,
        interval: float = 1.0,
        event_name: str | None = None,
        repeat: bool = False,
        **params,
    ) -> int:
        """Install a threshold watch; returns its id.

        The fired event's name defaults to ``"<service><op><threshold>"``
        (e.g. ``"invocationRate>3"``) and carries the measured value, the
        threshold, and the watch parameters in its data.
        """
        spec = WatchSpec(
            service=service,
            op=op,
            threshold=threshold,
            interval=interval,
            params=dict(params),
            event_name=event_name,
            repeat=repeat,
        )
        return self.watch_spec(spec)

    def watch_spec(self, spec: WatchSpec) -> int:
        compare = OPERATORS.get(spec.op)
        if compare is None:
            raise ConfigurationError(
                f"unknown comparison {spec.op!r}; expected one of {sorted(OPERATORS)}"
            )
        self.core.profiler.start(spec.service, interval=spec.interval, **spec.params)
        watch_id = next(self._ids)

        def on_sample(value: float, average: float) -> None:
            self._evaluate(watch_id, average)

        handle = self.core.profiler.add_sample_listener(
            spec.service, on_sample, **spec.params
        )
        threshold = spec.threshold
        self._watches[watch_id] = _Watch(
            watch_id=watch_id,
            spec=spec,
            predicate=lambda value: compare(value, threshold),
            listener_handle=handle,
        )
        return watch_id

    def unwatch(self, watch_id: int) -> None:
        watch = self._watches.pop(watch_id, None)
        if watch is None:
            return
        self.core.profiler.remove_sample_listener(watch.listener_handle)
        self.core.profiler.stop(watch.spec.service, **watch.spec.params)

    def active_watches(self) -> int:
        return len(self._watches)

    def fired_count(self, watch_id: int) -> int:
        watch = self._watches.get(watch_id)
        return watch.fired_count if watch is not None else 0

    def shutdown(self) -> None:
        for watch_id in list(self._watches):
            self.unwatch(watch_id)

    # -- evaluation ------------------------------------------------------------------

    def _evaluate(self, watch_id: int, value: float) -> None:
        watch = self._watches.get(watch_id)
        if watch is None:
            return
        holds = watch.predicate(value)
        should_fire = holds if watch.spec.repeat else (holds and not watch.satisfied)
        watch.satisfied = holds
        if not should_fire:
            return
        watch.fired_count += 1
        self.core.metrics.counter(
            "monitor.watch_fires", service=watch.spec.service
        ).inc()
        event_name = watch.spec.resolved_event_name()
        tracer = self.core.tracer
        if tracer.enabled:
            # A threshold crossing starts its own causal tree: whatever
            # the crossing triggers (script rules, moves, notifications)
            # becomes one trace rooted at this watch fire — even when the
            # sample was taken while unrelated traced work was active.
            with tracer.span(
                f"watch:{event_name}",
                category="watch",
                root=True,
                service=watch.spec.service,
                value=value,
                threshold=watch.spec.threshold,
            ):
                self._fire(watch, event_name, value)
        else:
            self._fire(watch, event_name, value)

    def _fire(self, watch: _Watch, event_name: str, value: float) -> None:
        self.core.events.publish(
            event_name,
            service=watch.spec.service,
            value=value,
            threshold=watch.spec.threshold,
            **watch.spec.params,
        )
