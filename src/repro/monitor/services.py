"""Built-in profiling services (§4.1).

System services measure the environment: how many complets a Core
hosts, the bandwidth and latency toward a peer Core (by active probing
through the Peer Interface), memory pressure, CPU load.  Application
services measure how the application *uses* complet references: the
invocation rate and byte rate between two complets — possible because
complet references are realized by the Core itself.

Bandwidth and latency are measured honestly with a two-size probe pair:
sending ``s₁`` and ``s₂`` byte probes and timing both round trips gives
``bandwidth = (s₂ - s₁) / (t₂ - t₁)`` independent of latency, and then
``latency = (t₁ - s₁/bandwidth) / 2``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.complet.closure import compute_closure
from repro.errors import MonitoringError
from repro.net.messages import MessageKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.core import Core
    from repro.monitor.profiler import Profiler

#: Probe sizes for the bandwidth/latency estimator, in bytes.  Active
#: probing charges the link it measures, so the large probe is kept
#: modest: at the slowest links worth adapting around (~10 KB/s) one
#: probe pair costs ~1.5 s of link time; the instant-read cache (§4.1)
#: keeps repeated policy evaluations from re-paying it.
PROBE_SMALL = 1_024
PROBE_LARGE = 16_384


def register_builtin_services(profiler: "Profiler") -> None:
    """Install the paper's service set on a fresh profiler."""
    profiler.register_service(
        "completLoad",
        _complet_load,
        description="number of complets hosted by this Core",
    )
    profiler.register_service(
        "trackerLoad",
        _tracker_load,
        description="number of trackers kept by this Core",
    )
    profiler.register_service(
        "completSize",
        _complet_size,
        description="marshaled closure size of a complet, in bytes (params: complet)",
        expensive=True,
    )
    profiler.register_service(
        "coreMemory",
        _core_memory,
        description="total marshaled size of all hosted complets, in bytes",
        expensive=True,
    )
    profiler.register_service(
        "bandwidth",
        _bandwidth,
        description="measured bandwidth toward a peer Core, bytes/s (params: peer)",
        expensive=True,
    )
    profiler.register_service(
        "latency",
        _latency,
        description="measured one-way latency toward a peer Core, s (params: peer)",
        expensive=True,
    )
    profiler.register_service(
        "invocationRate",
        _invocation_rate,
        description="invocations/s along a complet reference (params: src, dst)",
        default_alpha=1.0,
    )
    profiler.register_service(
        "byteRate",
        _byte_rate,
        description="marshaled bytes/s along a complet reference (params: src, dst)",
        default_alpha=1.0,
    )
    profiler.register_service(
        "invocationCount",
        _invocation_count,
        description="total invocations along a complet reference (params: src, dst)",
    )
    profiler.register_service(
        "cpuLoad",
        _cpu_load,
        description="invocations executed per second on this Core",
        default_alpha=1.0,
    )
    profiler.register_service(
        "servedRate",
        _served_rate,
        description="invocations/s served by one complet (params: complet)",
        default_alpha=1.0,
    )
    profiler.register_service(
        "linkBytes",
        _link_bytes,
        description="total bytes exchanged with a peer Core (params: peer)",
    )


# -- system services ---------------------------------------------------------------


def _complet_load(core: "Core", params: dict) -> float:
    return float(len(core.repository))


def _tracker_load(core: "Core", params: dict) -> float:
    return float(core.repository.tracker_count())


def _complet_size(core: "Core", params: dict) -> float:
    anchor = core.repository.find_by_str(_require(params, "complet"))
    if anchor is None:
        raise MonitoringError(
            f"completSize: complet {params.get('complet')!r} is not hosted at "
            f"{core.name!r}"
        )
    return float(compute_closure(anchor).size_bytes)


def _core_memory(core: "Core", params: dict) -> float:
    return float(sum(compute_closure(a).size_bytes for a in core.repository.anchors()))


def _probe(core: "Core", peer: str, size: int) -> float:
    """Round-trip a probe of ``size`` bytes; returns elapsed seconds."""
    clock = core.scheduler.clock
    before = clock.now()
    core.peer.request_raw(
        peer, MessageKind.PROFILE_PROBE, size.to_bytes(8, "big") + b"\x00" * size
    )
    return clock.now() - before


def _bandwidth_and_latency(core: "Core", peer: str) -> tuple[float, float]:
    t_small = _probe(core, peer, PROBE_SMALL)
    t_large = _probe(core, peer, PROBE_LARGE)
    if t_large <= t_small:
        # Links faster than the probe can resolve (or zero-cost loopback).
        return float("inf"), max(t_small / 2.0, 0.0)
    bandwidth = (PROBE_LARGE - PROBE_SMALL) / (t_large - t_small)
    latency = max((t_small - PROBE_SMALL / bandwidth) / 2.0, 0.0)
    return bandwidth, latency


def _bandwidth(core: "Core", params: dict) -> float:
    bandwidth, _latency_ = _bandwidth_and_latency(core, _require(params, "peer"))
    return bandwidth


def _latency(core: "Core", params: dict) -> float:
    _bandwidth_, latency = _bandwidth_and_latency(core, _require(params, "peer"))
    return latency


def _link_bytes(core: "Core", params: dict) -> float:
    return float(core.peer.link_bytes(_require(params, "peer")))


# -- application services ----------------------------------------------------------------


def _invocation_rate(core: "Core", params: dict) -> float:
    meter = core.profiler.invocation_meter(
        _require(params, "src"), _require(params, "dst")
    )
    return meter.sample(core.scheduler.clock.now())


def _byte_rate(core: "Core", params: dict) -> float:
    meter = core.profiler.byte_meter(_require(params, "src"), _require(params, "dst"))
    return meter.sample(core.scheduler.clock.now())


def _invocation_count(core: "Core", params: dict) -> float:
    meter = core.profiler.invocation_meter(
        _require(params, "src"), _require(params, "dst")
    )
    return meter.total


def _cpu_load(core: "Core", params: dict) -> float:
    return core.profiler.cpu_meter.sample(core.scheduler.clock.now())


def _served_rate(core: "Core", params: dict) -> float:
    meter = core.profiler.served_meter(_require(params, "complet"))
    return meter.sample(core.scheduler.clock.now())


def _require(params: dict, key: str) -> str:
    try:
        return str(params[key])
    except KeyError:
        raise MonitoringError(f"profiling service requires parameter {key!r}") from None
