"""Monitoring support for relocation (§4): profiling and monitor events.

The :class:`~repro.monitor.profiler.Profiler` provides the paper's two
kinds of profiling — *system* (completLoad, bandwidth, latency, ...) and
*application* (invocationRate along complet references) — each through
both an *instant* interface (cached, so successive reads don't
re-evaluate) and a *continuous* interface (start/get/stop with a
sampling interval and an exponential average).  The
:class:`~repro.monitor.events.MonitorEventEngine` turns profiled values
into asynchronous threshold events: one measurement per service, any
number of listeners filtering by their own thresholds.
"""

from repro.monitor.profiler import ContinuousProfile, Profiler, ServiceDef
from repro.monitor.events import MonitorEventEngine, WatchSpec

__all__ = [
    "Profiler",
    "ServiceDef",
    "ContinuousProfile",
    "MonitorEventEngine",
    "WatchSpec",
]
