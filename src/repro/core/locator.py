"""The location registry: the paper's future-work naming scheme, built.

§7: "We intend to design a global location-independent naming scheme,
which will present an alternative to tracking complet objects using
chains."  This module is that alternative: every complet's *birth Core*
(encoded in its immutable :class:`~repro.util.ids.CompletId`) acts as
its home registrar.  Whenever the complet arrives somewhere, the
receiving Core posts one LOCATION_UPDATE to the home; anyone holding a
reference can then resolve the current location with a single
LOCATION_QUERY instead of walking a tracker chain.

Trade-offs versus chains (measured in ``benchmarks/bench_tracking_modes.py``):

- resolution is O(1) messages regardless of migration history;
- references survive the death of *intermediate* Cores on the migration
  path (a chain breaks there), at the price of depending on the home
  Core's availability — so the runtime keeps chains as the fallback and
  uses the registry opportunistically;
- every move costs one extra (one-way, best-effort) update message.

Enable per Core with ``use_location_registry=True`` (the cluster harness
forwards the flag to every Core it creates).
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING

from repro.complet.tracker import TrackerAddress
from repro.errors import CoreError
from repro.net.messages import MessageKind
from repro.util.ids import CompletId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.core import Core

logger = logging.getLogger(__name__)


class LocationRegistry:
    """One Core's slice of the global location registry.

    Every Core *serves* registry traffic for the complets born on it,
    whether or not it uses the registry to resolve its own references —
    homes cannot predict where their offspring's references live.
    """

    def __init__(self, core: "Core") -> None:
        self.core = core
        #: Authoritative locations of complets born on this Core.
        self._locations: dict[CompletId, TrackerAddress] = {}
        #: Updates served / queries answered (for the benchmarks).
        self.updates_received = 0
        self.queries_served = 0
        core.peer.register(MessageKind.LOCATION_UPDATE, self._handle_update)
        core.peer.register(MessageKind.LOCATION_QUERY, self._handle_query)

    # -- publishing (receiving side of every move) ----------------------------

    def publish(self, complet_id: CompletId, address: TrackerAddress) -> None:
        """Record that ``complet_id`` now lives behind ``address``.

        Called by the movement unit after installing an arrival; the
        update to a remote home is one-way and best-effort — a missed
        update only costs a fallback to chain walking later.
        """
        if complet_id.birth_core == self.core.name:
            self._locations[complet_id] = address
            self.updates_received += 1
            return
        try:
            self.core.peer.notify(
                complet_id.birth_core,
                MessageKind.LOCATION_UPDATE,
                (complet_id, address),
            )
        except CoreError:
            logger.debug(
                "location update for %s dropped (home %s unreachable)",
                complet_id,
                complet_id.birth_core,
            )

    # -- resolution --------------------------------------------------------------

    def resolve(self, complet_id: CompletId) -> TrackerAddress | None:
        """Current address of ``complet_id`` per its home, or None.

        None means the home is unreachable or has no record (the complet
        never moved, or updates were lost) — callers fall back to the
        tracker chain.
        """
        if complet_id.birth_core == self.core.name:
            return self._locations.get(complet_id)
        try:
            answer = self.core.peer.request(
                complet_id.birth_core, MessageKind.LOCATION_QUERY, complet_id
            )
        except CoreError:
            return None
        assert answer is None or isinstance(answer, TrackerAddress)
        return answer

    def known_count(self) -> int:
        return len(self._locations)

    def forget_core(self, core_name: str) -> int:
        """Drop every record pointing at ``core_name``; returns the count.

        Used by recovery: once a Core is declared dead, registry records
        naming it would send resolvers straight into the failure.  The
        records reappear naturally when the complets are republished from
        their recovery destination.
        """
        stale = [
            complet_id
            for complet_id, address in self._locations.items()
            if address.core == core_name
        ]
        for complet_id in stale:
            del self._locations[complet_id]
        return len(stale)

    # -- message handlers -------------------------------------------------------------

    def _handle_update(self, src: str, body: object) -> None:
        complet_id, address = body  # type: ignore[misc]
        self._locations[complet_id] = address
        self.updates_received += 1

    def _handle_query(self, src: str, complet_id: object) -> TrackerAddress | None:
        assert isinstance(complet_id, CompletId)
        self.queries_served += 1
        return self._locations.get(complet_id)
