"""The Movement unit: the mobility protocol of §3.3.

A move request resolves its target (following tracker chains to the
hosting Core if needed), plans the movement group by consulting the
relocators of every outgoing reference, runs the ``pre_departure``
callbacks, marshals the whole group into a *single* MOVE_COMPLET
message, and — once the receiving Core replies with the new tracker
addresses — re-points the local trackers, runs ``post_departure``, and
releases the complets.  Pull targets living on third Cores get follow-up
move requests to the same destination.

The receiving side pre-registers the sender's trackers as remote
pointers, installs the arrivals between their ``pre_arrival`` and
``post_arrival`` callbacks, fires ``completArrived`` events, and invokes
the continuation, if one travelled along.

Sending is an *abortable two-phase protocol*: phase one runs the
``pre_departure`` hooks and marshals the group, phase two ships the
stream and — only once the destination's reply commits the move —
re-points trackers and releases the complets.  Any failure before the
reply (marshaling, an unreachable destination after the RPC layer's
retries, a denial at the destination) triggers
``abort_departure``: every group member's :meth:`Anchor.abort_departure`
hook runs, the group stays hosted and invocable, trackers are left
untouched, and a ``moveFailed`` event tells the monitoring and scripting
layers — then the original error is re-raised to the caller.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING

from repro.complet.anchor import Anchor, bump_state_version, execution_context
from repro.complet.continuation import Continuation
from repro.complet.marshal import (
    CloneEntry,
    MovementMarshaler,
    MovementPayload,
    MovementPlan,
    MovementUnmarshaler,
)
from repro.complet.stub import Stub, stub_target_id, stub_tracker
from repro.core.events import MOVE_COMPLETED, MOVE_FAILED
from repro.errors import CompletError, MovementDeniedError
from repro.net.messages import MessageKind
from repro.net.rpc import NO_DEADLINE
from repro.net.serializer import PLAIN
from repro.util.ids import CompletId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.core import Core

logger = logging.getLogger(__name__)

#: Bound on MOVE_REQUEST forwarding along tracker chains.  Two stale
#: trackers claiming each other's complet would otherwise bounce a
#: request forever.
MAX_FORWARD_HOPS = 16


class MovementUnit:
    """One Core's complet-migration engine."""

    def __init__(self, core: "Core") -> None:
        self.core = core
        core.peer.register_raw(MessageKind.MOVE_COMPLET, self._handle_move_complet)
        core.peer.register(MessageKind.MOVE_REQUEST, self._handle_move_request)
        core.peer.register(MessageKind.CLONE_REQUEST, self._handle_clone_request)
        # Counts live in the unified metrics registry (bound once here);
        # the attributes below remain readable as plain ints.
        self._moves_sent = core.metrics.counter("movement.moves_sent")
        self._moves_received = core.metrics.counter("movement.moves_received")
        self._moves_aborted = core.metrics.counter("movement.moves_aborted")

    @property
    def moves_sent(self) -> int:
        """Group moves sent by this Core (for the benchmarks)."""
        return int(self._moves_sent.value)

    @property
    def moves_received(self) -> int:
        """Group moves received by this Core."""
        return int(self._moves_received.value)

    @property
    def moves_aborted(self) -> int:
        """Moves that ran abort_departure after a phase-two failure."""
        return int(self._moves_aborted.value)

    # -- public entry point -----------------------------------------------------------

    def move(
        self,
        target: Stub | Anchor | CompletId,
        destination: str,
        continuation: Continuation | None = None,
    ) -> None:
        """Move ``target``'s complet (and whatever its references drag along).

        ``target`` may be a stub, the anchor itself (self-movement), or a
        complet id.  If the complet is not hosted here, the request is
        forwarded to its current host, so any Core can initiate any move.
        """
        tracer = self.core.tracer
        if tracer.enabled:
            with tracer.span("move", category="move", destination=destination):
                self._move(target, destination, continuation)
        else:
            self._move(target, destination, continuation)

    def _move(
        self,
        target: Stub | Anchor | CompletId,
        destination: str,
        continuation: Continuation | None,
    ) -> None:
        anchor = self._resolve_local(target)
        if anchor is None:
            self._forward_request(target, destination, continuation)
            return
        if destination == self.core.name:
            return  # already in place; a move would be a no-op
        self._move_local(anchor, destination, continuation)

    def _resolve_local(self, target: Stub | Anchor | CompletId) -> Anchor | None:
        if isinstance(target, Stub):
            tracker = stub_tracker(target)
            return tracker.local_anchor
        if isinstance(target, Anchor):
            if not target.is_installed or not self.core.repository.hosts(
                target.complet_id
            ):
                raise MovementDeniedError(
                    f"anchor {target!r} is not hosted at Core {self.core.name!r}"
                )
            return target
        if isinstance(target, CompletId):
            return self.core.repository.get(target)
        raise CompletError(f"cannot move {target!r}: not a complet reference")

    # -- sending side ------------------------------------------------------------------

    def _move_local(
        self, anchor: Anchor, destination: str, continuation: Continuation | None
    ) -> None:
        tracer = self.core.tracer
        if tracer.enabled:
            with tracer.span(
                "move:twophase",
                category="move",
                complet=anchor.complet_id.short(),
                destination=destination,
            ):
                self._move_twophase(anchor, destination, continuation)
        else:
            self._move_twophase(anchor, destination, continuation)

    def _move_twophase(
        self, anchor: Anchor, destination: str, continuation: Continuation | None
    ) -> None:
        plan = MovementPlan(self.core, anchor)
        sanitizer = self.core.sanitizer
        stamps: dict[str, dict] = {}
        if sanitizer is not None:
            # Stamp every group member now, while the issuing context
            # (the rule firing, if any) is still active; the stamps are
            # joined at the destination before completArrived fires.
            for complet_id in plan.movers:
                subject = str(complet_id)
                stamps[subject] = sanitizer.record(
                    "move", subject, core=self.core, detail=destination
                )
                sanitizer.pending_move(subject, destination, stamps[subject])
        for mover in plan.movers.values():
            with execution_context(self.core, mover.complet_id):
                mover.pre_departure(destination)
                bump_state_version(mover)
        try:
            payload = MovementMarshaler(self.core, plan).payload(continuation)
            # The commit request is deadline-exempt: once the destination's
            # reply is in hand the group is installed *there*, so a timeout
            # raised here would abort the departure while the arrivals stay
            # live — the same complets hosted on two Cores.  Reachability
            # failures are raised before the handler runs and abort safely.
            raw_reply = self.core.peer.request_raw(
                destination,
                MessageKind.MOVE_COMPLET,
                PLAIN.dumps(payload),
                timeout=NO_DEADLINE,
            )
        except Exception as exc:
            # Phase two never committed: undo phase one and keep hosting.
            if sanitizer is not None:
                for subject in stamps:
                    sanitizer.abort_move(subject, destination)
            self._abort_departure(plan, anchor, destination, exc)
            raise
        addresses: dict[CompletId, object] = PLAIN.loads(raw_reply)  # type: ignore[assignment]
        self._moves_sent.inc()
        if sanitizer is not None:
            # The commit orders everything the sender publishes next
            # (completDeparted, moveCompleted) after the move itself.
            for subject, stamp in stamps.items():
                sanitizer.commit_move(subject, self.core, stamp)

        for complet_id, mover in plan.movers.items():
            tracker = self.core.repository.existing_tracker(complet_id)
            assert tracker is not None
            tracker.point_to(addresses[complet_id])  # type: ignore[arg-type]
            with execution_context(self.core, complet_id):
                mover.post_departure()
            self.core.repository.release(complet_id)
            self.core.events.publish(
                "completDeparted",
                complet=str(complet_id),
                type=complet_id.type_name,
                destination=destination,
            )
        self.core.events.publish(
            MOVE_COMPLETED,
            complet=str(anchor.complet_id),
            type=anchor.complet_id.type_name,
            destination=destination,
            group=[str(cid) for cid in plan.movers],
        )
        for stub in plan.remote_pulls:
            self._forward_request(stub, destination, None)

    def _abort_departure(
        self, plan: MovementPlan, root: Anchor, destination: str, error: BaseException
    ) -> None:
        """Undo phase one of a move that failed before the commit reply.

        Every group member's ``abort_departure`` hook runs (failures are
        isolated and logged — the abort itself must not die half-way),
        nothing is released and no tracker is re-pointed, and a
        ``moveFailed`` event is published so layout scripts can react
        (``on moveFailed ... do call retryMove(...) end``).
        """
        for complet_id, mover in plan.movers.items():
            try:
                with execution_context(self.core, complet_id):
                    mover.abort_departure(destination)
                    bump_state_version(mover)
            except Exception:  # noqa: BLE001 - abort hooks are isolated
                logger.warning(
                    "abort_departure of %s failed", complet_id, exc_info=True
                )
        self._moves_aborted.inc()
        self.core.events.publish(
            MOVE_FAILED,
            complet=str(root.complet_id),
            type=root.complet_id.type_name,
            destination=destination,
            reason=type(error).__name__,
            detail=str(error),
            group=[str(cid) for cid in plan.movers],
        )

    def _forward_request(
        self,
        target: Stub | Anchor | CompletId,
        destination: str,
        continuation: Continuation | None,
    ) -> None:
        if isinstance(target, Stub):
            target_id = stub_target_id(target)
            host = self.core.references.locate(stub_tracker(target))
        elif isinstance(target, CompletId):
            tracker = self.core.repository.existing_tracker(target)
            if tracker is None:
                raise CompletError(
                    f"Core {self.core.name!r} holds no reference to {target}"
                )
            target_id = target
            host = self.core.references.locate(tracker)
        else:
            raise CompletError(f"cannot forward a move of {target!r}")
        if host == destination:
            return  # the complet is already at the requested destination
        self.core.peer.request(
            host, MessageKind.MOVE_REQUEST, self._request_body(target_id, destination, continuation)
        )

    def _request_body(
        self,
        target_id: CompletId,
        destination: str,
        continuation: Continuation | None,
        hops: int = 0,
    ) -> tuple:
        """Encode a forwarded move request.

        Continuation arguments may contain complet references, so they are
        marshaled with the invocation marshaler rather than pickled raw.
        ``hops`` counts tracker-chain forwards so a cycle of stale
        trackers cannot bounce the request forever.
        """
        if continuation is None:
            return (target_id, destination, None, None, hops)
        args_bytes = self.core.invocation.marshaler.dumps(
            (continuation.args, continuation.kwargs)
        )
        return (target_id, destination, continuation.method, args_bytes, hops)

    # -- receiving side ------------------------------------------------------------------

    def _handle_move_complet(self, src: str, raw: bytes) -> bytes:
        payload = PLAIN.loads(raw)
        assert isinstance(payload, MovementPayload)
        result = MovementUnmarshaler(self.core, payload).load()
        arrivals: list[Anchor] = list(result.movers.values()) + result.clones

        for anchor in arrivals:
            with execution_context(self.core, anchor._complet_id):
                anchor.pre_arrival()

        addresses: dict[CompletId, object] = {}
        for anchor in arrivals:
            # If this Core already tracked the arriving complet through a
            # chain, it stops forwarding now — tell the old pointee so its
            # remote-pointer set (and hence tracker GC) stays accurate.
            stale = self.core.repository.existing_tracker(anchor.complet_id)
            if stale is not None and stale.next_hop is not None:
                self.core.references.unregister_remote_pointer(
                    stale.next_hop, stale.address
                )
            tracker = self.core.repository.adopt(anchor)
            addresses[anchor.complet_id] = tracker.address
        for member in payload.members:
            if member.source_tracker is not None:
                tracker = self.core.repository.tracker_for(
                    member.complet_id, member.anchor_ref
                )
                self.core.references.register_pointer(tracker, member.source_tracker)
        if self.core.use_location_registry:
            for complet_id, address in addresses.items():
                self.core.locator.publish(complet_id, address)  # type: ignore[arg-type]

        if self.core.sanitizer is not None:
            # Join each in-flight move's stamp into this Core's clock
            # before completArrived fires: rules the arrival triggers
            # are ordered after the move that caused it.
            for anchor in arrivals:
                self.core.sanitizer.arrive(str(anchor.complet_id), self.core)
        for anchor in arrivals:
            with execution_context(self.core, anchor.complet_id):
                anchor.post_arrival()
            self.core.events.publish(
                "completArrived",
                complet=str(anchor.complet_id),
                type=anchor.complet_id.type_name,
                source=payload.source_core,
            )
        self._moves_received.inc()

        if result.continuation is not None and result.movers:
            root = next(iter(result.movers.values()))
            # Resolve eagerly so a bad continuation still aborts the move,
            # but *run* it deferred: the paper starts a fresh thread for
            # post-arrival work, so the continuation must not execute
            # inside the movement protocol itself (a continuation that
            # moves the complet again — an agent itinerary — would find
            # the protocol still holding the previous copy).
            method = result.continuation.resolve(root)
            continuation = result.continuation
            self.core.scheduler.call_after(
                0.0, self._run_continuation, root, method, continuation
            )

        return PLAIN.dumps(addresses)

    def _run_continuation(self, root: Anchor, method, continuation: Continuation) -> None:
        if not self.core.repository.hosts(root.complet_id):
            return  # the complet moved on before the continuation fired
        try:
            with execution_context(self.core, root.complet_id):
                method(*continuation.args, **continuation.kwargs)
                bump_state_version(root)
        except Exception:  # noqa: BLE001 - continuations run detached
            logger.warning(
                "continuation %s of %s failed", continuation.method,
                root.complet_id, exc_info=True,
            )

    def _handle_move_request(self, src: str, body: object):
        target_id, destination, method, args_bytes, hops = body  # type: ignore[misc]
        if hops >= MAX_FORWARD_HOPS:
            raise CompletError(
                f"move request for {target_id} reached the forward bound of "
                f"{MAX_FORWARD_HOPS} hops; stale-tracker cycle suspected"
            )
        continuation: Continuation | None = None
        if method is not None:
            args, kwargs = self.core.invocation.marshaler.loads(args_bytes)  # type: ignore[misc]
            continuation = Continuation(method, args, kwargs)
        anchor = self.core.repository.get(target_id)
        if anchor is not None:
            if destination != self.core.name:
                self._move_local(anchor, destination, continuation)
            return None
        # The complet moved on; chase it via our tracker if we have one.
        tracker = self.core.repository.existing_tracker(target_id)
        if tracker is None:
            raise CompletError(
                f"Core {self.core.name!r} does not host (or track) {target_id}"
            )
        host = self.core.references.locate(tracker)
        if host == destination:
            return None
        self.core.peer.request(
            host,
            MessageKind.MOVE_REQUEST,
            self._request_body(target_id, destination, continuation, hops + 1),
        )
        return None

    # -- remote duplicates -------------------------------------------------------------------

    def fetch_remote_clone(self, stub: Stub) -> CloneEntry:
        """Ask the Core hosting ``stub``'s target for a marshaled copy."""
        host = self.core.references.locate(stub_tracker(stub))
        entry = self.core.peer.request(
            host, MessageKind.CLONE_REQUEST, stub_target_id(stub)
        )
        assert isinstance(entry, CloneEntry)
        return entry

    def _handle_clone_request(self, src: str, target_id: object) -> CloneEntry:
        assert isinstance(target_id, CompletId)
        anchor = self.core.repository.get(target_id)
        if anchor is None:
            raise CompletError(
                f"complet {target_id} is not hosted at {self.core.name!r} "
                "(it may have moved); retry after re-locating"
            )
        from repro.complet.marshal import marshal_clone

        clone_id = self.core.repository.new_complet_id(anchor)
        # Offload: the entry crosses two links (here -> requester ->
        # destination) but is resolved only once, at the destination.
        return marshal_clone(self.core, anchor, clone_id, offload=True)
