"""Complet persistence: the paper's second future-work item, built.

§7: "we plan to develop persistence and mobility-aware transactional
models".  This module provides the persistence half: a complet's closure
can be checkpointed to bytes and restored later, on any Core — the same
marshaling machinery movement uses, so a snapshot is exactly "what would
have moved".

Semantics:

- :func:`snapshot` captures the closure; outgoing complet references are
  preserved as reference tokens (degraded to ``link``, like any copied
  graph), so a restored complet reconnects to its collaborators if they
  still exist.
- :func:`restore` installs the snapshot.  By default the restored
  complet receives a *fresh identity* (it is a recovered copy, and the
  original may still be alive somewhere).  ``keep_identity=True``
  reclaims the original identity — allowed only when no trace of the
  original is reachable (not hosted locally, no live location-registry
  record), so two complets can never answer to one identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.complet.anchor import Anchor
from repro.complet.marshal import CloneEntry, marshal_clone
from repro.complet.stub import Stub, stub_target_id
from repro.errors import CompletError
from repro.net.serializer import PLAIN
from repro.util.ids import CompletId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.core import Core

#: Current snapshot wire-format version.  Bumped whenever the stream
#: layout changes incompatibly; :meth:`Snapshot.from_bytes` refuses to
#: load any other version instead of unpickling garbage.
SNAPSHOT_VERSION = 1


@dataclass(frozen=True, slots=True)
class Snapshot:
    """A persisted complet: identity, type, and marshaled closure."""

    original_id: CompletId
    anchor_ref: str
    stream: bytes
    #: Virtual time at which the snapshot was taken.
    taken_at: float
    #: Wire-format version this snapshot was written with.
    version: int = SNAPSHOT_VERSION

    def to_bytes(self) -> bytes:
        """Serialize the snapshot for storage (a file, a blob store...)."""
        return PLAIN.dumps(self)

    @staticmethod
    def from_bytes(data: bytes) -> "Snapshot":
        snapshot = PLAIN.loads(data)
        if not isinstance(snapshot, Snapshot):
            raise CompletError("bytes do not contain a complet snapshot")
        found = getattr(snapshot, "version", 0)
        if found != SNAPSHOT_VERSION:
            raise CompletError(
                f"snapshot of {snapshot.original_id} uses format version "
                f"{found}, but this runtime reads version {SNAPSHOT_VERSION}; "
                f"re-take the snapshot with the current runtime"
            )
        return snapshot


def snapshot(core: "Core", target: Stub | Anchor) -> Snapshot:
    """Checkpoint a complet hosted on ``core``.

    ``stamp`` references keep their stamp semantics in the stream (they
    re-resolve by type wherever the snapshot is restored); every other
    reference degrades to ``link``, as for any copied graph.
    """
    anchor = _resolve_hosted(core, target)
    entry: CloneEntry = marshal_clone(
        core, anchor, anchor.complet_id, preserve_stamps=True
    )
    return Snapshot(
        original_id=anchor.complet_id,
        anchor_ref=entry.anchor_ref,
        stream=entry.stream,
        taken_at=core.scheduler.clock.now(),
    )


def restore(core: "Core", snapshot_: Snapshot, *, keep_identity: bool = False) -> Stub:
    """Bring a snapshot back to life on ``core``; returns a stub for it.

    With ``keep_identity=True`` the restored complet answers to the
    original identity — refused if the original is still hosted here or
    the location registry still knows where it lives.
    """
    from repro.complet.marshal import unmarshal_clone

    if keep_identity:
        _check_identity_free(core, snapshot_.original_id)

    entry = CloneEntry(snapshot_.original_id, snapshot_.anchor_ref, snapshot_.stream)
    anchor = unmarshal_clone(core, entry)
    if not keep_identity:
        anchor._complet_id = core.repository.new_complet_id(anchor)
    else:
        # The identity's old tracker (if any) must host the revenant.
        stale = core.repository.existing_tracker(snapshot_.original_id)
        if stale is not None:
            stale.mark_dangling()
    from repro.core.events import COMPLET_RESTORED

    tracker = core.repository.adopt(anchor)
    core.events.publish(
        COMPLET_RESTORED,
        complet=str(anchor.complet_id),
        original=str(snapshot_.original_id),
        type=anchor.complet_id.type_name,
    )
    return core.references.stub_for_local(tracker.target_id)


def _resolve_hosted(core: "Core", target: Stub | Anchor) -> Anchor:
    if isinstance(target, Stub):
        anchor = core.repository.get(stub_target_id(target))
        if anchor is None:
            raise CompletError(
                f"complet {stub_target_id(target)} is not hosted at "
                f"{core.name!r}; snapshot it where it lives"
            )
        return anchor
    if isinstance(target, Anchor):
        if not target.is_installed or not core.repository.hosts(target.complet_id):
            raise CompletError(f"anchor {target!r} is not hosted at {core.name!r}")
        return target
    raise CompletError(f"cannot snapshot {target!r}")


def _check_identity_free(core: "Core", complet_id: CompletId) -> None:
    if core.repository.hosts(complet_id):
        raise CompletError(
            f"cannot restore {complet_id} with its identity: the original "
            f"is still hosted at {core.name!r}"
        )
    located = core.locator.resolve(complet_id)
    if located is not None:
        raise CompletError(
            f"cannot restore {complet_id} with its identity: the location "
            f"registry says it lives at {located.core!r}"
        )
