"""The Naming service: logical names for complets.

Every Core keeps a local table mapping logical names to complet
references (live stubs, so a binding keeps following its complet as it
migrates — the name does not break when the complet moves away from the
Core that holds the binding).  Remote Cores can bind, look up, unbind,
and list over the network; reference transfer uses the invocation
marshaler, so what travels is a reference token, never the complet.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.complet.stub import Stub
from repro.errors import NameAlreadyBoundError, NameNotFoundError
from repro.net.messages import MessageKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.core import Core


class NamingService:
    """One Core's name table plus remote access to other Cores' tables."""

    def __init__(self, core: "Core") -> None:
        self.core = core
        self._bindings: dict[str, Stub] = {}
        core.peer.register_raw(MessageKind.NAME_BIND, self._handle_bind)
        core.peer.register_raw(MessageKind.NAME_LOOKUP, self._handle_lookup)
        core.peer.register(MessageKind.NAME_UNBIND, self._handle_unbind)
        core.peer.register(MessageKind.NAME_LIST, self._handle_list)

    # -- local table ---------------------------------------------------------------

    def bind(self, name: str, stub: Stub, *, replace: bool = False) -> None:
        """Bind ``name`` to a complet reference in this Core's table."""
        if not replace and name in self._bindings:
            raise NameAlreadyBoundError(
                f"name {name!r} is already bound at Core {self.core.name!r}"
            )
        self._bindings[name] = stub

    def lookup(self, name: str) -> Stub:
        """Resolve ``name`` in this Core's table."""
        try:
            return self._bindings[name]
        except KeyError:
            raise NameNotFoundError(
                f"no complet bound as {name!r} at Core {self.core.name!r}"
            ) from None

    def unbind(self, name: str) -> None:
        if name not in self._bindings:
            raise NameNotFoundError(
                f"no complet bound as {name!r} at Core {self.core.name!r}"
            )
        del self._bindings[name]

    def names(self) -> list[str]:
        return sorted(self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)

    # -- remote access -----------------------------------------------------------------

    def bind_at(self, core_name: str, name: str, stub: Stub, *, replace: bool = False) -> None:
        """Bind a name in *another* Core's table."""
        if core_name == self.core.name:
            self.bind(name, stub, replace=replace)
            return
        payload = self.core.invocation.marshaler.dumps((name, stub, replace))
        self.core.peer.request_raw(core_name, MessageKind.NAME_BIND, payload)

    def lookup_at(self, core_name: str, name: str) -> Stub:
        """Resolve a name bound at another Core; returns a local stub."""
        if core_name == self.core.name:
            return self.lookup(name)
        payload = self.core.invocation.marshaler.dumps(name)
        reply = self.core.peer.request_raw(core_name, MessageKind.NAME_LOOKUP, payload)
        stub = self.core.invocation.marshaler.loads(reply)
        assert isinstance(stub, Stub)
        return stub

    def unbind_at(self, core_name: str, name: str) -> None:
        if core_name == self.core.name:
            self.unbind(name)
            return
        self.core.peer.request(core_name, MessageKind.NAME_UNBIND, name)

    def names_at(self, core_name: str) -> list[str]:
        if core_name == self.core.name:
            return self.names()
        reply = self.core.peer.request(core_name, MessageKind.NAME_LIST, None)
        assert isinstance(reply, list)
        return reply

    def lookup_anywhere(self, name: str) -> Stub:
        """Search every reachable Core's table for ``name``.

        The local table is consulted first; remote Cores are then probed
        in sorted order.  Convenience for applications that do not track
        where a binding was made.
        """
        if name in self._bindings:
            return self._bindings[name]
        for core_name in self.core.peer.peers():
            if core_name == self.core.name or not self.core.peer.is_peer_up(core_name):
                continue
            try:
                return self.lookup_at(core_name, name)
            except NameNotFoundError:
                continue
        raise NameNotFoundError(f"no Core binds the name {name!r}")

    # -- message handlers ------------------------------------------------------------------

    def _handle_bind(self, src: str, payload: bytes) -> bytes:
        name, stub, replace = self.core.invocation.marshaler.loads(payload)  # type: ignore[misc]
        self.bind(name, stub, replace=replace)
        return self.core.invocation.marshaler.dumps(None)

    def _handle_lookup(self, src: str, payload: bytes) -> bytes:
        name = self.core.invocation.marshaler.loads(payload)
        assert isinstance(name, str)
        return self.core.invocation.marshaler.dumps(self.lookup(name))

    def _handle_unbind(self, src: str, name: object) -> None:
        assert isinstance(name, str)
        self.unbind(name)

    def _handle_list(self, src: str, _body: object) -> list[str]:
        return self.names()
