"""The Reference Handler: materializing, tracking, and shortening references.

This unit of Figure 1 realizes complet references at runtime:

- it turns wire tokens back into live stubs wired to Core-local trackers
  (:meth:`ReferenceHandler.materialize`);
- it walks tracker chains to locate a target (:meth:`locate`) and
  shortens chains so later interactions are direct (:meth:`shorten`);
- it maintains the distributed remote-pointer sets that make
  unreferenced trackers collectable.

Pointer bookkeeping is *eager* by default — every repoint sends small
one-way notifications so the pointed-at Cores know who references them —
and can be disabled per Core (``eager_pointer_updates=False``) for the
ablation benchmark.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING

from repro.complet.anchor import resolve_class_ref
from repro.complet.stub import Stub, stub_class_for
from repro.complet.tokens import CloneToken, InGroupToken, RefToken, StampToken
from repro.complet.tracker import Tracker, TrackerAddress
from repro.errors import (
    CompletError,
    CoreError,
    DanglingReferenceError,
    SerializationError,
    StampResolutionError,
)
from repro.net.messages import MessageKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.core import Core

logger = logging.getLogger(__name__)

#: Hard limit on chain walks; a longer chain indicates a routing loop.
MAX_CHAIN_HOPS = 64


class ReferenceHandler:
    """One Core's reference-handling unit."""

    def __init__(self, core: "Core") -> None:
        self.core = core
        #: Serials with a lookup in flight; guards the recursive collapse
        #: in :meth:`_handle_lookup` against chain cycles re-entering it.
        self._resolving: set[int] = set()
        core.peer.register(MessageKind.TRACKER_LOOKUP, self._handle_lookup)
        core.peer.register(MessageKind.TRACKER_UPDATE, self._handle_update)

    # -- token materialization -----------------------------------------------------

    def materialize(self, token: object) -> Stub:
        """Turn a wire token into a live stub at this Core."""
        if isinstance(token, RefToken):
            return self._materialize_ref(token)
        if isinstance(token, (InGroupToken, CloneToken)):
            target_id = token.clone_id if isinstance(token, CloneToken) else token.target_id
            tracker = self.core.repository.tracker_for(target_id, token.anchor_ref)
            return self._stub_for(tracker, token.relocator)
        if isinstance(token, StampToken):
            return self._materialize_stamp(token)
        raise SerializationError(f"unknown reference token {token!r}")

    def _materialize_ref(self, token: RefToken) -> Stub:
        tracker = self.core.repository.existing_tracker(token.target_id)
        if tracker is None:
            tracker = self.core.repository.tracker_for(token.target_id, token.anchor_ref)
            if token.last_known.core == self.core.name:
                # The token points back at this very Core; adopt the
                # referenced tracker's knowledge instead of forwarding to
                # ourselves.
                local = self.core.repository.tracker_by_serial(token.last_known.serial)
                if local is not None and local is not tracker and local.next_hop is not None:
                    tracker.point_to(local.next_hop)
            else:
                tracker.point_to(token.last_known)
                self._notify_pointer(token.last_known, tracker.address, register=True)
        return self._stub_for(tracker, token.relocator)

    def _materialize_stamp(self, token: StampToken) -> Stub:
        try:
            anchor_cls = resolve_class_ref(token.anchor_ref)
        except Exception as exc:  # noqa: BLE001 - import errors vary
            raise StampResolutionError(
                f"cannot resolve stamped type {token.anchor_ref!r}: {exc}"
            ) from exc
        candidates = self.core.repository.find_by_type(anchor_cls)
        if candidates:
            tracker = self.core.repository.tracker_for(
                candidates[0].complet_id, token.anchor_ref
            )
            return self._stub_for(tracker, token.relocator)
        if token.fallback is not None:
            return self._materialize_ref(token.fallback)
        raise StampResolutionError(
            f"Core {self.core.name!r} hosts no complet of stamped type "
            f"{token.anchor_ref!r}"
        )

    def _stub_for(self, tracker: Tracker, relocator) -> Stub:
        anchor_cls = resolve_class_ref(tracker.anchor_ref)
        stub_cls = stub_class_for(anchor_cls)
        return stub_cls._fargo_from_tracker(self.core, tracker, relocator)

    def stub_for_local(self, complet_id) -> Stub:
        """A fresh (link) stub for a complet hosted on this Core."""
        anchor = self.core.repository.get(complet_id)
        if anchor is None:
            raise CompletError(f"complet {complet_id} is not hosted at {self.core.name!r}")
        tracker = self.core.repository.tracker_for(
            complet_id, _class_ref(type(anchor))
        )
        from repro.complet.relocators import Link

        return self._stub_for(tracker, Link())

    # -- chain walking and shortening -------------------------------------------------

    def locate(self, tracker: Tracker) -> str:
        """Name of the Core currently hosting ``tracker``'s target.

        Walking the chain shortens the local tracker as a side effect.
        """
        if tracker.is_local:
            return self.core.name
        final = self.resolve_final(tracker)
        return final.core

    def resolve_final(self, tracker: Tracker) -> TrackerAddress:
        """Walk the chain to the tracker colocated with the target.

        When the location registry is enabled, the home Core is asked
        first — one message, independent of migration history — and the
        chain is only walked when the registry has no answer.
        """
        if tracker.is_local:
            return tracker.address
        if self.core.use_location_registry:
            registered = self.core.locator.resolve(tracker.target_id)
            if registered is not None and registered != tracker.address:
                self.shorten(tracker, registered)
                return registered
        if tracker.next_hop is None:
            raise DanglingReferenceError(
                f"reference to {tracker.target_id} dangles: target was destroyed"
            )
        address = tracker.next_hop
        for _ in range(MAX_CHAIN_HOPS):
            state, next_hop = self.core.peer.request(
                address.core, MessageKind.TRACKER_LOOKUP, address.serial
            )
            if state == "local":
                self.shorten(tracker, address)
                return address
            if state == "final":
                # The queried tracker collapsed the rest of the chain on
                # our behalf and answered with the target's own address.
                assert next_hop is not None
                self.shorten(tracker, next_hop)
                return next_hop
            if state == "forward":
                assert next_hop is not None
                address = next_hop
                continue
            raise DanglingReferenceError(
                f"reference to {tracker.target_id} dangles at {address}"
            )
        raise CompletError(
            f"tracker chain for {tracker.target_id} exceeds {MAX_CHAIN_HOPS} hops; "
            "routing loop suspected"
        )

    def shorten(self, tracker: Tracker, final: TrackerAddress) -> None:
        """Point ``tracker`` directly at ``final`` (§3.1 chain shortening).

        The previously pointed-at tracker is told it lost a pointer and
        the final tracker is told it gained one, so both Cores' garbage
        collection stays accurate.
        """
        if tracker.is_local or tracker.next_hop == final:
            return
        if final == tracker.address:
            return
        old = tracker.next_hop
        tracker.point_to(final)
        if old is not None and old != final:
            self._notify_pointer(old, tracker.address, register=False)
        self._notify_pointer(final, tracker.address, register=True)

    def repair_dead_core(
        self, failed: str, relocated: dict[object, TrackerAddress]
    ) -> int:
        """Fix every local tracker whose next hop is the dead Core ``failed``.

        ``relocated`` maps original complet ids to the tracker address
        each one was recovered behind.  Trackers for recovered complets
        are re-pointed there (with pointer bookkeeping, so collection
        stays accurate); trackers for complets that went down with the
        Core are marked dangling, turning later calls into a typed
        :class:`~repro.errors.DanglingReferenceError` instead of a hang
        against a dead host.  Returns the number of trackers touched.
        """
        repaired = 0
        for tracker in self.core.repository.trackers():
            if tracker.next_hop is None or tracker.next_hop.core != failed:
                continue
            replacement = relocated.get(tracker.target_id)
            if replacement is not None and replacement != tracker.address:
                tracker.point_to(replacement)
                self._notify_pointer(replacement, tracker.address, register=True)
            else:
                tracker.mark_dangling()
            repaired += 1
        return repaired

    def repair_revived(self, hosted: dict[object, TrackerAddress]) -> int:
        """Un-dangle local trackers whose target turned out to be alive.

        ``hosted`` maps complet ids to the tracker address now hosting
        them — typically the local trackers of a revived Core whose
        complets were written off by a degraded recovery.  Dangling is
        terminal for a genuinely destroyed complet, but a false-positive
        failure verdict (a healed partition) leaves live complets behind
        dangling references; this re-points them.  Returns the number of
        trackers repaired.
        """
        repaired = 0
        for tracker in self.core.repository.trackers():
            if not tracker.is_dangling:
                continue
            replacement = hosted.get(tracker.target_id)
            if replacement is None or replacement == tracker.address:
                continue
            tracker.point_to(replacement)
            self._notify_pointer(replacement, tracker.address, register=True)
            repaired += 1
        return repaired

    # -- pointer bookkeeping -------------------------------------------------------------

    def _notify_pointer(
        self, target: TrackerAddress, pointer: TrackerAddress, *, register: bool
    ) -> None:
        if not self.core.eager_pointer_updates:
            return
        if target.core == self.core.name:
            self._apply_pointer_update(target.serial, pointer, register)
            return
        try:
            self.core.peer.notify(
                target.core,
                MessageKind.TRACKER_UPDATE,
                (target.serial, pointer, register),
            )
        except CoreError:
            # Best-effort bookkeeping: an unreachable Core merely delays
            # tracker collection there.
            logger.debug(
                "pointer update to %s dropped (unreachable)", target.core, exc_info=True
            )

    def register_pointer(self, tracker: Tracker, pointer: TrackerAddress) -> None:
        tracker.remote_pointers.add(pointer)

    def unregister_remote_pointer(
        self, target: TrackerAddress, pointer: TrackerAddress
    ) -> None:
        """Tell ``target``'s Core that ``pointer`` no longer forwards to it."""
        self._notify_pointer(target, pointer, register=False)

    def _apply_pointer_update(
        self, serial: int, pointer: TrackerAddress, register: bool
    ) -> None:
        tracker = self.core.repository.tracker_by_serial(serial)
        if tracker is None:
            return
        if register:
            tracker.remote_pointers.add(pointer)
        else:
            tracker.remote_pointers.discard(pointer)

    # -- message handlers ------------------------------------------------------------------

    def _handle_lookup(self, src: str, serial: object) -> tuple[str, TrackerAddress | None]:
        assert isinstance(serial, int)
        tracker = self.core.repository.tracker_by_serial(serial)
        if tracker is None:
            return ("dangling", None)
        if tracker.is_local:
            return ("local", None)
        if tracker.next_hop is not None:
            if serial not in self._resolving:
                # Collapse the remainder of the chain on the caller's
                # behalf: resolve to the final tracker (shortening this
                # tracker as a side effect) and answer with the target's
                # address directly, so the caller repoints in one hop
                # instead of walking every forwarder itself.
                self._resolving.add(serial)
                try:
                    final = self.resolve_final(tracker)
                except DanglingReferenceError:
                    return ("dangling", None)
                except (CoreError, CompletError):
                    # Downstream unreachable or looping — fall back to
                    # the plain one-hop answer and let the caller cope.
                    return ("forward", tracker.next_hop)
                finally:
                    self._resolving.discard(serial)
                return ("final", final)
            return ("forward", tracker.next_hop)
        return ("dangling", None)

    def _handle_update(self, src: str, body: object) -> None:
        serial, pointer, register = body  # type: ignore[misc]
        self._apply_pointer_update(serial, pointer, register)


def _class_ref(cls: type) -> str:
    from repro.complet.anchor import qualified_class_ref

    return qualified_class_ref(cls)
