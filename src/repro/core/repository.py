"""The Complet Repository: complets and trackers hosted by one Core.

The repository owns the two Core-local tables of Figure 1's "Complet
Repository" box: the complets currently living on this Core, and the
trackers this Core keeps for complets it references.  It enforces the
scalability invariant of §3.1 — *at most one tracker per target complet
per Core* — and implements tracker garbage collection ("trackers that
are not pointed at all after shortening become available for garbage
collection").
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.complet.anchor import Anchor, anchor_type_name, execution_context, qualified_class_ref
from repro.complet.tracker import Tracker
from repro.errors import CompletError
from repro.util.ids import CompletId, IdGenerator, TrackerId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.core import Core


class Repository:
    """Complets and trackers of one Core."""

    def __init__(self, core: "Core") -> None:
        self._core = core
        self._complets: dict[CompletId, Anchor] = {}
        self._trackers: dict[int, Tracker] = {}
        self._tracker_by_target: dict[CompletId, Tracker] = {}
        self._complet_serials = IdGenerator()
        self._tracker_serials = IdGenerator()
        #: Trackers collected so far (for the GC experiments).
        self.collected_trackers = 0

    # -- complet lifecycle -------------------------------------------------------

    def install_new(self, anchor_cls: type[Anchor], args: tuple, kwargs: dict) -> Tracker:
        """Construct a brand-new complet on this Core and return its tracker.

        The anchor's constructor runs with this Core in context, so it
        can itself instantiate further complets.
        """
        with execution_context(self._core, None):
            anchor = anchor_cls(*args, **kwargs)
        if anchor._complet_id is not None:
            raise CompletError(f"anchor {anchor!r} is already installed")
        anchor._complet_id = self.new_complet_id(anchor)
        return self._host(anchor)

    def adopt(self, anchor: Anchor) -> Tracker:
        """Install a complet that arrived by movement (identity preserved)."""
        if anchor._complet_id is None:
            raise CompletError(f"arriving anchor {anchor!r} has no complet id")
        return self._host(anchor)

    def _host(self, anchor: Anchor) -> Tracker:
        complet_id = anchor.complet_id
        if complet_id in self._complets:
            raise CompletError(f"complet {complet_id} is already hosted here")
        self._complets[complet_id] = anchor
        tracker = self.tracker_for(complet_id, qualified_class_ref(type(anchor)))
        tracker.point_to_local(anchor)
        return tracker

    def release(self, complet_id: CompletId) -> Anchor:
        """Drop a complet that has departed; its tracker stays (forwarding)."""
        try:
            return self._complets.pop(complet_id)
        except KeyError:
            raise CompletError(f"complet {complet_id} is not hosted at this Core") from None

    def destroy(self, complet_id: CompletId) -> None:
        """Remove a complet permanently; its tracker becomes dangling."""
        self.release(complet_id)
        tracker = self._tracker_by_target.get(complet_id)
        if tracker is not None:
            tracker.mark_dangling()

    def new_complet_id(self, anchor: Anchor) -> CompletId:
        """Mint a fresh complet identity born on this Core."""
        return CompletId(
            birth_core=self._core.name,
            serial=self._complet_serials.next(),
            type_name=anchor_type_name(type(anchor)),
        )

    # -- lookup ---------------------------------------------------------------------

    def get(self, complet_id: CompletId) -> Anchor | None:
        return self._complets.get(complet_id)

    def hosts(self, complet_id: CompletId) -> bool:
        return complet_id in self._complets

    def complet_ids(self) -> list[CompletId]:
        return list(self._complets)

    def anchors(self) -> Iterator[Anchor]:
        return iter(list(self._complets.values()))

    def find_by_str(self, complet_id_str: str) -> Anchor | None:
        """Resolve a hosted complet from the display form of its id.

        Used by the administration surface (shell, scripts, viewer),
        which refers to complets by string.
        """
        for complet_id, anchor in self._complets.items():
            if str(complet_id) == complet_id_str or complet_id.short() == complet_id_str:
                return anchor
        return None

    def find_by_type(self, anchor_cls: type) -> list[Anchor]:
        """Local complets whose anchor is an instance of ``anchor_cls``.

        Results are ordered by complet serial so stamp resolution is
        deterministic.
        """
        matches = [a for a in self._complets.values() if isinstance(a, anchor_cls)]
        matches.sort(key=lambda a: (a.complet_id.birth_core, a.complet_id.serial))
        return matches

    def __len__(self) -> int:
        return len(self._complets)

    # -- trackers ---------------------------------------------------------------------

    def tracker_for(self, target_id: CompletId, anchor_ref: str) -> Tracker:
        """The unique tracker for ``target_id`` at this Core (creating it)."""
        tracker = self._tracker_by_target.get(target_id)
        if tracker is None:
            tracker_id = TrackerId(self._core.name, self._tracker_serials.next())
            tracker = Tracker(tracker_id, target_id, anchor_ref)
            self._trackers[tracker_id.serial] = tracker
            self._tracker_by_target[target_id] = tracker
        return tracker

    def tracker_by_serial(self, serial: int) -> Tracker | None:
        return self._trackers.get(serial)

    def existing_tracker(self, target_id: CompletId) -> Tracker | None:
        return self._tracker_by_target.get(target_id)

    def trackers(self) -> list[Tracker]:
        return list(self._trackers.values())

    def tracker_count(self) -> int:
        return len(self._trackers)

    def collect_trackers(self) -> int:
        """Drop every tracker nothing points at; return how many were dropped.

        A collected tracker that was still forwarding tells its pointee
        it is gone, so chains of garbage trackers collapse under repeated
        collection (one Core per pass — the cluster harness iterates to a
        fixpoint).
        """
        removable = [t for t in self._trackers.values() if t.is_collectable]
        for tracker in removable:
            del self._trackers[tracker.tracker_id.serial]
            existing = self._tracker_by_target.get(tracker.target_id)
            if existing is tracker:
                del self._tracker_by_target[tracker.target_id]
            if tracker.next_hop is not None:
                self._core.references.unregister_remote_pointer(
                    tracker.next_hop, tracker.address
                )
        self.collected_trackers += len(removable)
        return len(removable)
