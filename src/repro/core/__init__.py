"""The Core runtime: FarGo's stationary per-node infrastructure (Figure 1).

One :class:`~repro.core.core.Core` runs per node.  It hosts complets in
its :class:`~repro.core.repository.Repository`, realizes complet
references through the :class:`~repro.core.references.ReferenceHandler`,
executes remote method calls in the
:class:`~repro.core.invocation.InvocationUnit`, migrates complets with
the :class:`~repro.core.movement.MovementUnit`, publishes runtime events
through the :class:`~repro.core.events.EventBus`, and maps logical names
in the :class:`~repro.core.naming.NamingService`.
"""

from repro.core.core import Core
from repro.core.carrier import Carrier
from repro.core.events import Event
from repro.core.locator import LocationRegistry
from repro.core.persistence import Snapshot, restore, snapshot

__all__ = [
    "Core",
    "Carrier",
    "Event",
    "LocationRegistry",
    "Snapshot",
    "restore",
    "snapshot",
]
