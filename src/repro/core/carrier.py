"""The Carrier: the paper's movement entry point.

Figure 3 / §3.3 move complets through a static ``Carrier.move`` call::

    Carrier.move(msg, "acadia", "start", (a1, a2))

The Carrier resolves which Core should act — the stub's Core, or the
Core currently executing complet code when an anchor moves itself — so
complet code never needs to hold an explicit Core reference to move.
"""

from __future__ import annotations

from repro.complet.anchor import Anchor, current_core
from repro.complet.stub import Stub, stub_core
from repro.errors import CompletError
from repro.util.ids import CompletId


class Carrier:
    """Static facade for movement requests."""

    @staticmethod
    def move(
        target: Stub | Anchor | CompletId,
        destination: str,
        continuation: str | None = None,
        args: tuple = (),
        kwargs: dict | None = None,
    ) -> None:
        """Move ``target`` to Core ``destination``.

        ``continuation`` names a method of the moved complet's anchor to
        invoke at the destination with ``args``/``kwargs`` — the weak-
        mobility continuation of §3.3.  A complet moves *itself* by
        passing its own anchor (``Carrier.move(self, ...)``).
        """
        core = None
        if isinstance(target, Stub):
            core = stub_core(target)
        if core is None:
            core = current_core()
        if core is None:
            raise CompletError(
                "Carrier.move: no Core in context; move a stub or call from "
                "within complet code"
            )
        core.move(target, destination, continuation, args, kwargs)
