"""The Core: FarGo's stationary per-node runtime (Figure 1).

A Core hosts complets and provides the Core API of the paper: complet
instantiation (local and remote), movement, reference reflection
(``get_meta_ref``), naming, profiling, monitor events, and
administration.  Cores never move; complets move between them, and the
process boundaries of the application change as they do.
"""

from __future__ import annotations

import pickle
from typing import TYPE_CHECKING

from repro.complet.anchor import Anchor, qualified_class_ref, resolve_class_ref
from repro.complet.marshal import CloneStreamCache
from repro.complet.continuation import Continuation
from repro.complet.metaref import MetaRef
from repro.complet.relocators import relocator_from_name
from repro.complet.stub import Stub, stub_class_for, stub_core, stub_meta, stub_target_id, stub_tracker
from repro.core.events import CALL_RETRIED, CORE_SHUTDOWN, ONEWAY_FAILED, EventBus
from repro.core.invocation import InvocationUnit
from repro.core.locator import LocationRegistry
from repro.core.movement import MovementUnit
from repro.core.naming import NamingService
from repro.core.references import ReferenceHandler
from repro.core.repository import Repository
from repro.errors import CompletError, CoreDownError, NotAStubError
from repro.metrics.registry import MetricsRegistry
from repro.monitor.events import MonitorEventEngine
from repro.monitor.profiler import Profiler
from repro.net.messages import Envelope, MessageKind
from repro.net.peer import PeerInterface
from repro.net.retry import RetryPolicy
from repro.net.transport import Transport
from repro.sim.scheduler import Scheduler
from repro.store.proxy import DEFAULT_OFFLOAD_THRESHOLD, StoreClient
from repro.store.store import ObjectStore
from repro.trace.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.sanitizer import LayoutSanitizer
    from repro.monitor.profiler import ProfilingSession
    from repro.util.ids import CompletId


def _warn_profile_shim(name: str) -> None:
    import warnings

    warnings.warn(
        f"Core.{name}() is deprecated; use the session handle from "
        "Core.profile() instead",
        DeprecationWarning,
        stacklevel=3,
    )


class Core:
    """One stationary runtime node."""

    def __init__(
        self,
        name: str,
        transport: Transport,
        scheduler: Scheduler,
        *,
        eager_pointer_updates: bool = True,
        use_location_registry: bool = False,
        profile_cache_ttl: float = 1.0,
        retry_policy: RetryPolicy | None = None,
        rpc_timeout: float | None = None,
        tracing: bool = False,
        store: "ObjectStore | None" = None,
        store_threshold: int | None = None,
    ) -> None:
        self.name = name
        self.scheduler = scheduler
        #: Eagerly maintain distributed remote-pointer sets (tracker GC).
        self.eager_pointer_updates = eager_pointer_updates
        #: Resolve references through the home-based location registry
        #: (the paper's future-work naming scheme) before chain walking.
        self.use_location_registry = use_location_registry
        #: Default retry policy for this Core's outgoing cross-Core calls.
        self.retry_policy = retry_policy
        self.is_running = True

        self.peer = PeerInterface(name, transport)
        if retry_policy is not None:
            self.peer.configure_retry(retry_policy)
        if rpc_timeout is not None:
            self.peer.configure_timeout(rpc_timeout)
        #: Observability: span recorder + unified metrics, shared with the
        #: RPC endpoint so every cross-Core envelope carries trace context.
        self.tracer = Tracer(name, scheduler.clock, enabled=tracing)
        self.metrics = MetricsRegistry(name)
        self.peer.endpoint.tracer = self.tracer
        self.peer.endpoint.metrics = self.metrics
        #: Large-payload offloading: when a store is attached, the marshal
        #: layer ships payloads above the threshold as store proxies.
        self.store_client: StoreClient | None = None
        if store is not None:
            self.store_client = StoreClient(
                store,
                threshold=(
                    store_threshold
                    if store_threshold is not None
                    else DEFAULT_OFFLOAD_THRESHOLD
                ),
                metrics=self.metrics,
                tracer=self.tracer,
            )
        self.repository = Repository(self)
        #: Memoized clone streams keyed by (complet id, stamp mode); the
        #: marshal layer consults and fills this (see CloneStreamCache).
        self.marshal_cache = CloneStreamCache()
        self.events = EventBus(self)
        self.profiler = Profiler(self, cache_ttl=profile_cache_ttl)
        self.monitor = MonitorEventEngine(self)
        self.references = ReferenceHandler(self)
        self.locator = LocationRegistry(self)
        self.invocation = InvocationUnit(self)
        self.movement = MovementUnit(self)
        self.naming = NamingService(self)
        #: Heartbeat-based failure detector, attached by the recovery
        #: layer (:meth:`repro.cluster.Cluster.enable_recovery`).  Every
        #: Core answers heartbeats whether or not it runs a detector.
        self.detector: object | None = None
        #: Shared dynamic race detector, attached by the cluster when
        #: built with ``sanitize=True`` (:mod:`repro.analysis.sanitizer`).
        self.sanitizer: "LayoutSanitizer | None" = None
        #: Process supervisor, attached by
        #: :class:`repro.cluster.supervisor.Supervisor` to the Core it
        #: drives re-admission from (the multi-process driver).
        self.supervisor: object | None = None

        self.peer.register(MessageKind.HEARTBEAT, self._handle_heartbeat)
        self.peer.register_raw(MessageKind.INSTANTIATE, self._handle_instantiate)
        self.peer.register_raw(MessageKind.PROFILE_PROBE, self._handle_probe)
        self.peer.register(MessageKind.PROFILE_QUERY, self._handle_profile_query)
        self.peer.register(MessageKind.ADMIN_QUERY, self._handle_admin)
        self.peer.endpoint.on_oneway_error = self._on_oneway_error
        self.peer.endpoint.on_retry = self._on_call_retried

    # -- fault-tolerance events ------------------------------------------------------

    def _on_oneway_error(self, envelope: Envelope, error: BaseException) -> None:
        """A one-way message failed in one of this Core's handlers."""
        if envelope.kind is MessageKind.EVENT_NOTIFY:
            # Do not publish an event about a failed event delivery:
            # two Cores with broken listeners would ping-pong forever.
            return
        self.events.publish(
            ONEWAY_FAILED,
            kind=envelope.kind.value,
            source=envelope.src,
            error=repr(error),
        )

    def _on_call_retried(
        self,
        dst: str,
        kind: MessageKind,
        attempt: int,
        delay: float,
        error: BaseException,
    ) -> None:
        """An outgoing call failed and is about to be retried."""
        self.events.publish(
            CALL_RETRIED,
            destination=dst,
            kind=kind.value,
            attempt=attempt,
            delay=delay,
            error=repr(error),
        )

    # -- Core API: instantiation ---------------------------------------------------------

    def instantiate(self, anchor_cls: type[Anchor], *args, at: str | None = None, **kwargs) -> Stub:
        """Create a complet of ``anchor_cls`` and return a stub for it.

        ``at`` asks another Core to host the new complet (remote
        instantiation); constructor arguments then travel by value.
        """
        require_running(self)
        stub_cls = stub_class_for(anchor_cls)
        return stub_cls(*args, _core=self, _at=at, **kwargs)

    def instantiate_remote(
        self, anchor_cls: type[Anchor], at: str, args: tuple, kwargs: dict
    ) -> object:
        """Ask Core ``at`` to construct a complet; returns its wire token.

        Used by the stub constructor; applications normally call
        :meth:`instantiate` with ``at=``.
        """
        payload = self.invocation.marshaler.dumps(
            (qualified_class_ref(anchor_cls), args, kwargs)
        )
        reply = self.peer.request_raw(at, MessageKind.INSTANTIATE, payload)
        return pickle.loads(reply)

    def _handle_instantiate(self, src: str, payload: bytes) -> bytes:
        anchor_ref, args, kwargs = self.invocation.marshaler.loads(payload)  # type: ignore[misc]
        anchor_cls = resolve_class_ref(anchor_ref)
        if not (isinstance(anchor_cls, type) and issubclass(anchor_cls, Anchor)):
            raise CompletError(f"{anchor_ref!r} is not an anchor class")
        tracker = self.repository.install_new(anchor_cls, args, kwargs)
        from repro.complet.relocators import Link
        from repro.complet.tokens import RefToken

        token = RefToken(tracker.target_id, tracker.anchor_ref, tracker.address, Link())
        return pickle.dumps(token)

    # -- Core API: reflection --------------------------------------------------------------

    @staticmethod
    def get_meta_ref(stub: Stub) -> MetaRef:
        """The meta reference reifying ``stub``'s complet reference (§3.2)."""
        if not isinstance(stub, Stub):
            raise NotAStubError(
                f"get_meta_ref expects a complet reference, got {type(stub).__name__}"
            )
        return stub_meta(stub)

    def retype_reference(self, stub: Stub, relocator_name: str) -> None:
        """Change a reference's relocation type by name (shell/scripts)."""
        self.get_meta_ref(stub).set_relocator(relocator_from_name(relocator_name))

    @staticmethod
    def new_reference(stub: Stub) -> Stub:
        """A fresh, independent reference to the same complet.

        The new stub shares the Core-local tracker (one per target per
        Core) but has its own meta reference — default ``link`` type,
        zeroed statistics — so it can be retyped without affecting the
        original.  This is how a program holds two differently-typed
        references to one complet (e.g. a ``link`` master path and a
        ``duplicate`` replication path).
        """
        from repro.complet.relocators import Link

        if not isinstance(stub, Stub):
            raise NotAStubError(
                f"new_reference expects a complet reference, got {type(stub).__name__}"
            )
        return type(stub)._fargo_from_tracker(
            stub_core(stub), stub_tracker(stub), Link()
        )

    # -- Core API: movement -------------------------------------------------------------------

    def move(
        self,
        target: Stub | Anchor | "CompletId",
        destination: str,
        continuation: str | None = None,
        args: tuple = (),
        kwargs: dict | None = None,
    ) -> None:
        """Move a complet (§3.3), optionally with a continuation method."""
        require_running(self)
        cont = None
        if continuation is not None:
            cont = Continuation(continuation, tuple(args), dict(kwargs or {}))
        self.movement.move(target, destination, cont)

    # -- Core API: naming convenience -------------------------------------------------------------

    def bind(self, name: str, stub: Stub, *, replace: bool = False) -> None:
        self.naming.bind(name, stub, replace=replace)

    def lookup(self, name: str) -> Stub:
        return self.naming.lookup(name)

    # -- Core API: profiling convenience ---------------------------------------------------------

    def profile_instant(self, service: str, **params) -> float:
        return self.profiler.instant(service, **params)

    def profile(self, service: str, interval: float = 1.0, **params) -> "ProfilingSession":
        """Open a continuous-monitoring session (preferred API).

        Use as a context manager — ``with core.profile("coreCPU") as s:
        ... s.value`` — or call ``s.stop()`` explicitly.  Supersedes the
        :meth:`profile_start`/:meth:`profile_stop` pair.
        """
        return self.profiler.session(service, interval=interval, **params)

    def profile_start(self, service: str, interval: float = 1.0, **params) -> tuple:
        """Deprecated: use :meth:`profile` (returns a session handle)."""
        _warn_profile_shim("profile_start")
        return self.profiler.start(service, interval=interval, **params)

    def profile_get(self, service: str, **params) -> float:
        return self.profiler.get(service, **params)

    def profile_stop(self, service: str, **params) -> None:
        """Deprecated: use the session handle from :meth:`profile`."""
        _warn_profile_shim("profile_stop")
        self.profiler.stop(service, **params)

    # -- lifecycle -----------------------------------------------------------------------------------

    def shutdown(self) -> None:
        """Shut this Core down.

        Fires ``coreShutdown`` first — synchronously, so listeners (e.g.
        the reliability rule of §4.3) can still move complets off this
        Core — then cancels all profiling and leaves the network.
        """
        if not self.is_running:
            return
        self.events.publish(CORE_SHUTDOWN, core=self.name)
        if self.detector is not None:
            self.detector.stop()  # type: ignore[attr-defined]
        self.monitor.shutdown()
        self.profiler.shutdown()
        self.is_running = False
        self.peer.close()

    # -- administration (shell, viewer, scripts) ----------------------------------------------------

    def snapshot(self) -> dict:
        """Local layout snapshot: complets, names, trackers."""
        complets = []
        for complet_id in self.repository.complet_ids():
            complets.append(
                {
                    "id": str(complet_id),
                    "type": complet_id.type_name,
                    "short": complet_id.short(),
                }
            )
        return {
            "core": self.name,
            "complets": complets,
            "names": self.naming.names(),
            "tracker_count": self.repository.tracker_count(),
            "active_profiles": self.profiler.active_profiles(),
        }

    def store_view(self) -> dict:
        """This Core's object-store view: client counters + store entries."""
        if self.store_client is None:
            return {"enabled": False}
        return {
            "enabled": True,
            "client": self.store_client.stats_snapshot(),
            "store": self.store_client.store.snapshot(),
        }

    def admin(self, core_name: str, operation: str, **kwargs) -> object:
        """Run an administration operation on this or a remote Core."""
        if core_name == self.name:
            return self._admin_op(operation, kwargs)
        return self.peer.request(core_name, MessageKind.ADMIN_QUERY, (operation, kwargs))

    def _handle_admin(self, src: str, body: object) -> object:
        operation, kwargs = body  # type: ignore[misc]
        return self._admin_op(operation, kwargs)

    def _handle_profile_query(self, src: str, body: object) -> float:
        service, params = body  # type: ignore[misc]
        return self.profiler.instant(service, **params)

    def _handle_probe(self, src: str, payload: bytes) -> bytes:
        # Echo probe: first 8 bytes carry the size already received; the
        # reply is intentionally tiny so the request leg dominates.
        return b"ok"

    def _handle_heartbeat(self, src: str, body: object) -> str:
        """Answer a failure-detector ping; reachability is the answer."""
        return self.name

    def _admin_op(self, operation: str, kwargs: dict) -> object:
        if operation == "snapshot":
            return self.snapshot()
        if operation == "complets":
            return [str(cid) for cid in self.repository.complet_ids()]
        if operation == "move":
            anchor = self.repository.find_by_str(kwargs["complet"])
            if anchor is None:
                raise CompletError(
                    f"Core {self.name!r} does not host complet {kwargs['complet']!r}"
                )
            self.move(anchor, kwargs["destination"])
            return None
        if operation == "watch":
            return self.monitor.watch(
                kwargs["service"],
                kwargs["op"],
                kwargs["threshold"],
                interval=kwargs.get("interval", 1.0),
                event_name=kwargs.get("event_name"),
                repeat=kwargs.get("repeat", False),
                **kwargs.get("params", {}),
            )
        if operation == "unwatch":
            self.monitor.unwatch(kwargs["watch_id"])
            return None
        if operation == "references":
            return self._admin_references(kwargs["complet"])
        if operation == "retype":
            return self._admin_retype(
                kwargs["complet"], kwargs["target"], kwargs["type"]
            )
        if operation == "collect_trackers":
            return self.repository.collect_trackers()
        if operation == "services":
            return self.profiler.services()
        if operation == "profile_instant":
            return self.profiler.instant(kwargs["service"], **kwargs.get("params", {}))
        if operation == "profile_start":
            return self.profiler.start(
                kwargs["service"],
                interval=kwargs.get("interval", 1.0),
                **kwargs.get("params", {}),
            )
        if operation == "profile_history":
            return self.profiler.history(kwargs["service"], **kwargs.get("params", {}))
        if operation == "store":
            return self.store_view()
        if operation == "metrics":
            return self.metrics.snapshot()
        if operation == "spans":
            return [span.to_dict() for span in self.tracer.spans()]
        if operation == "set_tracing":
            self.tracer.enabled = bool(kwargs["enabled"])
            return None
        if operation == "clear_spans":
            self.tracer.clear()
            return None
        if operation == "checkpoint":
            return self._admin_checkpoint(kwargs["complet"])
        if operation == "restore_complet":
            return self._admin_restore(
                kwargs["data"], kwargs.get("keep_identity", False)
            )
        if operation == "detector":
            if self.detector is None:
                return {}
            return self.detector.state()  # type: ignore[attr-defined]
        if operation == "supervisor":
            if self.supervisor is None:
                return {}
            return self.supervisor.state()  # type: ignore[attr-defined]
        if operation == "hosted_trackers":
            # Original CompletId -> local TrackerAddress, for every
            # complet hosted here.  The supervisor repairs survivors'
            # trackers toward a reborn Core with exactly this map.
            hosted = {}
            for complet_id in self.repository.complet_ids():
                tracker = self.repository.existing_tracker(complet_id)
                if tracker is not None and tracker.is_local:
                    hosted[complet_id] = tracker.address
            return hosted
        if operation == "add_peer":
            # Address-book update: a peer respawned (possibly on a fresh
            # port); stale pooled connections to it are invalidated.
            add_peer = getattr(self.peer.transport, "add_peer", None)
            if add_peer is None:
                raise CompletError(
                    f"transport of Core {self.name!r} has no address book"
                )
            add_peer(kwargs["peer"], tuple(kwargs["address"]))
            return None
        if operation == "repair_trackers":
            return self.references.repair_dead_core(
                kwargs["failed"], kwargs.get("relocated", {})
            )
        if operation == "locator_forget":
            return self.locator.forget_core(kwargs["core"])
        if operation == "shutdown":
            # Remote shutdown (used by the multi-process launcher).  A
            # small delay lets this reply reach the requester before the
            # Core leaves the network and closes its listener.
            delay = float(kwargs.get("delay", 0.0))
            if delay > 0.0:
                self.scheduler.call_after(delay, self.shutdown)
            else:
                self.shutdown()
            return None
        raise CompletError(f"unknown admin operation {operation!r}")

    def _admin_checkpoint(self, complet_id_str: str) -> bytes:
        """Snapshot a hosted complet to portable bytes (shell/recovery)."""
        from repro.core import persistence

        anchor = self.repository.find_by_str(complet_id_str)
        if anchor is None:
            raise CompletError(
                f"Core {self.name!r} does not host complet {complet_id_str!r}"
            )
        return persistence.snapshot(self, anchor).to_bytes()

    def _admin_restore(self, data: bytes, keep_identity: bool) -> str:
        """Restore snapshot bytes here; returns the live complet's id."""
        from repro.core import persistence

        snap = persistence.Snapshot.from_bytes(data)
        stub = persistence.restore(self, snap, keep_identity=keep_identity)
        return str(stub_target_id(stub))

    def _outgoing_stubs(self, complet_id_str: str) -> list[Stub]:
        from repro.complet.closure import compute_closure

        anchor = self.repository.find_by_str(complet_id_str)
        if anchor is None:
            raise CompletError(
                f"Core {self.name!r} does not host complet {complet_id_str!r}"
            )
        return compute_closure(anchor).outgoing

    def _admin_references(self, complet_id_str: str) -> list[dict]:
        """Describe a hosted complet's outgoing references (viewer/shell)."""
        rows = []
        for stub in self._outgoing_stubs(complet_id_str):
            meta = stub_meta(stub)
            rows.append(
                {
                    "target": str(stub_target_id(stub)),
                    "type": meta.type_name,
                    "invocations": meta.invocation_count,
                    "bytes": meta.bytes_transferred,
                    "local": meta.is_local,
                }
            )
        return rows

    def _admin_retype(self, complet_id_str: str, target: str, type_name: str) -> bool:
        """Retype a hosted complet's outgoing reference by target id."""
        for stub in self._outgoing_stubs(complet_id_str):
            if str(stub_target_id(stub)) == target:
                stub_meta(stub).set_relocator(relocator_from_name(type_name))
                return True
        raise CompletError(
            f"complet {complet_id_str!r} has no reference to {target!r}"
        )

    def __repr__(self) -> str:
        state = "up" if self.is_running else "down"
        return f"<Core {self.name} ({state}, {len(self.repository)} complets)>"


def require_running(core: Core) -> None:
    """Guard helper for components that must not act on a stopped Core."""
    if not core.is_running:
        raise CoreDownError(f"Core {core.name!r} has been shut down")
