"""Typed administration facade over the ADMIN_QUERY protocol.

:meth:`Core.admin` is the wire-level surface: a string operation name
plus keyword arguments, dispatched by ``_admin_op`` at the target Core.
That surface is what travels in ``ADMIN_QUERY`` envelopes and stays
stringly-typed by necessity; everything *above* it — the shell, the
viewer, scripts, tests — should go through :class:`CoreAdmin` instead,
which gives each operation a real signature:

    cluster.admin("beta").references(complet_id)
    cluster.admin("beta").retype(complet_id, target_id, "pull")
    cluster.admin("beta").snapshot()

A ``CoreAdmin`` is bound to a *via* Core (the administrator's seat,
which issues the query) and a *target* Core name; when the two are the
same, the operation runs locally without network traffic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.core import Core


class CoreAdmin:
    """Typed handle for administering one (possibly remote) Core."""

    __slots__ = ("via", "target")

    def __init__(self, via: "Core", target: str | None = None) -> None:
        self.via = via
        self.target = target if target is not None else via.name

    def _op(self, operation: str, **kwargs) -> object:
        return self.via.admin(self.target, operation, **kwargs)

    # -- layout ----------------------------------------------------------------

    def snapshot(self) -> dict:
        """Layout snapshot: complets, names, trackers, active profiles."""
        result = self._op("snapshot")
        assert isinstance(result, dict)
        return result

    def complets(self) -> list[str]:
        """Ids of the complets hosted at the target Core."""
        result = self._op("complets")
        assert isinstance(result, list)
        return result

    def move(self, complet: str, destination: str) -> None:
        """Move a complet hosted at the target Core to ``destination``."""
        self._op("move", complet=complet, destination=destination)

    def collect_trackers(self) -> int:
        """Run one tracker-GC pass at the target Core; trackers collected."""
        result = self._op("collect_trackers")
        assert isinstance(result, int)
        return result

    # -- references ------------------------------------------------------------

    def references(self, complet: str) -> list[dict]:
        """Describe a hosted complet's outgoing references."""
        result = self._op("references", complet=complet)
        assert isinstance(result, list)
        return result

    def retype(self, complet: str, target: str, type_name: str) -> bool:
        """Retype a hosted complet's outgoing reference by target id."""
        result = self._op("retype", complet=complet, target=target, type=type_name)
        assert isinstance(result, bool)
        return result

    # -- monitoring ------------------------------------------------------------

    def watch(
        self,
        service: str,
        op: str,
        threshold: float,
        *,
        interval: float = 1.0,
        event_name: str | None = None,
        repeat: bool = False,
        **params,
    ) -> int:
        """Install a threshold watch at the target Core; returns its id."""
        result = self._op(
            "watch",
            service=service,
            op=op,
            threshold=threshold,
            interval=interval,
            event_name=event_name,
            repeat=repeat,
            params=params,
        )
        assert isinstance(result, int)
        return result

    def unwatch(self, watch_id: int) -> None:
        self._op("unwatch", watch_id=watch_id)

    def services(self) -> list[str]:
        """Profiling services known at the target Core."""
        result = self._op("services")
        assert isinstance(result, list)
        return result

    def profile_instant(self, service: str, **params) -> float:
        result = self._op("profile_instant", service=service, params=params)
        assert isinstance(result, float)
        return result

    def profile_history(self, service: str, **params) -> list[tuple[float, float]]:
        result = self._op("profile_history", service=service, params=params)
        assert isinstance(result, list)
        return result

    # -- persistence & recovery ------------------------------------------------

    def checkpoint(self, complet: str) -> bytes:
        """Snapshot a complet hosted at the target Core to portable bytes."""
        result = self._op("checkpoint", complet=complet)
        assert isinstance(result, bytes)
        return result

    def restore(self, data: bytes, *, keep_identity: bool = False) -> str:
        """Restore snapshot bytes at the target Core; returns the new id."""
        result = self._op("restore_complet", data=data, keep_identity=keep_identity)
        assert isinstance(result, str)
        return result

    def detector_state(self) -> dict:
        """Per-peer liveness verdicts of the target Core's failure detector.

        Empty when no detector is attached there.
        """
        result = self._op("detector")
        assert isinstance(result, dict)
        return result

    def supervisor_state(self) -> dict:
        """Per-child supervision state at the target Core.

        Restart counts, backoff state, and last exit cause for every
        supervised child process; empty when no
        :class:`~repro.cluster.supervisor.Supervisor` is attached there
        (only the multi-process driver Core carries one).
        """
        result = self._op("supervisor")
        assert isinstance(result, dict)
        return result

    def hosted_trackers(self) -> dict:
        """CompletId -> local TrackerAddress for the target's hosted complets."""
        result = self._op("hosted_trackers")
        assert isinstance(result, dict)
        return result

    def add_peer(self, peer: str, address: tuple) -> None:
        """Update the target Core's address book for a (re)spawned peer."""
        self._op("add_peer", peer=peer, address=tuple(address))

    def repair_trackers(self, failed: str, relocated: dict) -> int:
        """Repair trackers at the target Core that forward to a dead Core."""
        result = self._op("repair_trackers", failed=failed, relocated=relocated)
        assert isinstance(result, int)
        return result

    def locator_forget(self, core: str) -> int:
        """Drop the target Core's location records naming a dead Core."""
        result = self._op("locator_forget", core=core)
        assert isinstance(result, int)
        return result

    # -- observability ---------------------------------------------------------

    def metrics(self) -> dict:
        """The target Core's metrics-registry snapshot."""
        result = self._op("metrics")
        assert isinstance(result, dict)
        return result

    def store(self) -> dict:
        """The target Core's object-store view.

        ``{"enabled": False}`` when that Core runs without a store;
        otherwise its resolve-cache counters under ``"client"`` and the
        backing store's entry table and statistics under ``"store"``.
        """
        result = self._op("store")
        assert isinstance(result, dict)
        return result

    def spans(self) -> list[dict]:
        """The target Core's finished spans, as plain dicts, oldest first."""
        result = self._op("spans")
        assert isinstance(result, list)
        return result

    def set_tracing(self, enabled: bool) -> None:
        """Toggle span recording at the target Core."""
        self._op("set_tracing", enabled=enabled)

    def clear_spans(self) -> None:
        self._op("clear_spans")

    def __repr__(self) -> str:
        return f"<CoreAdmin {self.target} via {self.via.name}>"
