"""The Invocation unit: method calls over complet references (§3.1).

Every call issued through a stub passes through here.  Arguments and
results are marshaled by value (complet references by reference,
degraded to ``link``) — *also when the target happens to be colocated*,
because complets are always mutually remote with respect to parameter
passing.  Remote calls are forwarded along the tracker chain; the reply
carries the address of the tracker colocated with the target, and every
tracker on the chain re-points directly at it on the way back — the
paper's chain shortening.

Fault tolerance: a forward that hits a reachability failure (after the
RPC layer's own retries, if the Core carries a
:class:`~repro.net.retry.RetryPolicy`) *re-locates* the target — through
the location registry when enabled, else by re-walking the tracker
chain — and retries once against the recovered address, so a complet
that moved away while a hop was unreachable is found again.  Only
reachability errors (raised before the remote handler ran) take this
path; a :class:`~repro.errors.DeadlineExceededError` propagates to the
caller, because the handler may well have executed and a transparent
retry would silently duplicate non-idempotent work.
"""

from __future__ import annotations

import struct
from inspect import getattr_static
from typing import TYPE_CHECKING

from repro.complet.anchor import bump_state_version, current_complet, execution_context
from repro.complet.marshal import InvocationMarshaler
from repro.complet.stub import Stub, stub_meta, stub_tracker
from repro.complet.tracker import Tracker, TrackerAddress
from repro.errors import (
    CompletError,
    CoreError,
    DanglingReferenceError,
    NoSuchMethodError,
)
from repro.net.messages import MessageKind
from repro.net.retry import REACHABILITY_ERRORS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.core import Core

#: INVOKE wire framing.  The request prepends the target tracker serial
#: to the marshaled call; the reply prepends (core-name length, final
#: serial) and the UTF-8 core name to the marshaled result.  Fixed-width
#: prefixes instead of pickling a wrapper tuple around every hop.
_REQ_HEADER = struct.Struct("<q")
_REPLY_HEADER = struct.Struct("<Hq")


def _pack_request(serial: int, request: bytes) -> bytes:
    return _REQ_HEADER.pack(serial) + request


def _unpack_request(frame: bytes) -> tuple[int, bytes]:
    (serial,) = _REQ_HEADER.unpack_from(frame)
    return serial, frame[_REQ_HEADER.size:]


def _pack_reply(result_bytes: bytes, final: TrackerAddress) -> bytes:
    core_bytes = final.core.encode("utf-8")
    return _REPLY_HEADER.pack(len(core_bytes), final.serial) + core_bytes + result_bytes


def _unpack_reply(frame: bytes) -> tuple[bytes, TrackerAddress]:
    core_len, serial = _REPLY_HEADER.unpack_from(frame)
    start = _REPLY_HEADER.size
    core = frame[start:start + core_len].decode("utf-8")
    return frame[start + core_len:], TrackerAddress(core, serial)


class InvocationUnit:
    """One Core's invocation engine."""

    def __init__(self, core: "Core") -> None:
        self.core = core
        self.marshaler = InvocationMarshaler(core)
        core.peer.register_raw(MessageKind.INVOKE, self._handle_invoke)
        # Counts live in the unified metrics registry (bound once here);
        # the attributes below remain readable as plain ints.
        self._executed = core.metrics.counter("invocation.executed")
        self._forwarded = core.metrics.counter("invocation.forwarded")

    @property
    def executed(self) -> int:
        """Invocations executed on this Core (targets hosted here)."""
        return int(self._executed.value)

    @property
    def forwarded(self) -> int:
        """Invocations this Core forwarded along a tracker chain."""
        return int(self._forwarded.value)

    # -- caller side ----------------------------------------------------------------

    def invoke_stub(self, stub: Stub, method: str, args: tuple, kwargs: dict) -> object:
        tracer = self.core.tracer
        if tracer.enabled:
            with tracer.span(
                f"invoke:{method}",
                category="invoke",
                target=str(stub_tracker(stub).target_id),
            ):
                return self._invoke_stub(stub, method, args, kwargs)
        return self._invoke_stub(stub, method, args, kwargs)

    def _invoke_stub(self, stub: Stub, method: str, args: tuple, kwargs: dict) -> object:
        tracker = stub_tracker(stub)
        source = current_complet()
        request = self.marshaler.dumps((method, args, kwargs))
        self.core.profiler.note_invocation(source, tracker.target_id, len(request))
        result_bytes, final = self._route(tracker, request)
        self.core.profiler.note_result_bytes(
            source, tracker.target_id, len(result_bytes)
        )
        stub_meta(stub).record_invocation(len(request) + len(result_bytes))
        return self.marshaler.loads(result_bytes)

    # -- routing ----------------------------------------------------------------------

    def _route(
        self, tracker: Tracker, request: bytes, *, collapse: bool = False
    ) -> tuple[bytes, TrackerAddress]:
        """Deliver ``request`` to the target, however many hops away.

        Returns the marshaled result together with the address of the
        tracker colocated with the target, which callers use to shorten.

        With ``collapse`` (set by forwarders), the chain is resolved with
        cheap TRACKER_LOOKUP messages *before* the payload is sent, so
        the request body crosses one link instead of riding every hop.
        """
        if tracker.is_local:
            return self._execute(tracker, request), tracker.address
        if tracker.next_hop is None:
            raise DanglingReferenceError(
                f"reference to {tracker.target_id} dangles: target was destroyed"
            )
        if collapse:
            try:
                self.core.references.resolve_final(tracker)
            except DanglingReferenceError:
                raise
            except (CoreError, CompletError):
                # Collapse is an optimization only: if the chain cannot
                # be resolved up front (a hop briefly unreachable), fall
                # through and forward hop by hop as before.
                pass
        try:
            reply = self._forward(tracker.next_hop, request)
        except REACHABILITY_ERRORS:
            # A hop on the chain is gone (the RPC layer already spent its
            # retries).  Re-locate the target and go direct: through the
            # location registry (the paper's future-work naming scheme)
            # when enabled, else by re-walking the tracker chain.  Only
            # reachability failures qualify: they are raised before the
            # remote handler ran, so the retry cannot duplicate work.  A
            # timeout (DeadlineExceededError) is indeterminate — the call
            # may have executed — and propagates to the caller instead.
            recovered = self._recover_route(tracker)
            if recovered is None:
                raise
            reply = self._forward(recovered, request)
        result_bytes, final = _unpack_reply(reply)
        self.core.references.shorten(tracker, final)
        return result_bytes, final

    def _forward(self, address: TrackerAddress, request: bytes) -> bytes:
        frame = _pack_request(address.serial, request)
        return self.core.peer.request_raw(address.core, MessageKind.INVOKE, frame)

    def _recover_route(self, tracker: Tracker) -> TrackerAddress | None:
        failed = tracker.next_hop
        if self.core.use_location_registry:
            try:
                registered = self.core.locator.resolve(tracker.target_id)
            except CoreError:
                registered = None
            if registered is not None and registered != failed:
                self.core.references.shorten(tracker, registered)
                return registered
            return None
        # No registry: re-walk the chain.  This only helps when the chain
        # no longer runs through the failed hop (it was shortened, or the
        # failure happened downstream of a live forwarder).
        try:
            final = self.core.references.resolve_final(tracker)
        except (CoreError, CompletError):
            return None
        if final != failed:
            return final
        return None

    def _handle_invoke(self, src: str, raw: bytes) -> bytes:
        serial, request = _unpack_request(raw)
        tracker = self.core.repository.tracker_by_serial(serial)
        if tracker is None:
            raise DanglingReferenceError(
                f"Core {self.core.name!r} has no tracker #{serial}; target destroyed"
            )
        if not tracker.is_local:
            tracker.forwarded_invocations += 1
            self._forwarded.inc()
        result_bytes, final = self._route(tracker, request, collapse=not tracker.is_local)
        return _pack_reply(result_bytes, final)

    # -- execution ---------------------------------------------------------------------

    def _execute(self, tracker: Tracker, request: bytes) -> bytes:
        anchor = tracker.local_anchor
        assert anchor is not None
        method, args, kwargs = self.marshaler.loads(request)  # type: ignore[misc]
        tracer = self.core.tracer
        if tracer.enabled:
            with tracer.span(
                f"exec:{method}",
                category="exec",
                complet=anchor.complet_id.short(),
            ):
                return self._execute_call(tracker, anchor, method, args, kwargs)
        return self._execute_call(tracker, anchor, method, args, kwargs)

    def _execute_call(
        self, tracker: Tracker, anchor, method: str, args: tuple, kwargs: dict
    ) -> bytes:
        self._check_invocable(type(anchor), method)
        attribute = getattr_static(type(anchor), method)
        with execution_context(self.core, anchor.complet_id):
            if isinstance(attribute, property):
                result = getattr(anchor, method)
            else:
                result = getattr(anchor, method)(*args, **kwargs)
                # The method may have mutated nested containers without
                # any attribute write, so conservatively invalidate any
                # cached marshal stream of this complet.
                bump_state_version(anchor)
        tracker.served_invocations += 1
        self._executed.inc()
        self.core.profiler.note_served(anchor.complet_id)
        return self.marshaler.dumps(result)

    @staticmethod
    def _check_invocable(anchor_cls: type, method: str) -> None:
        if method.startswith("_"):
            raise NoSuchMethodError(
                f"{anchor_cls.__name__}.{method} is not part of the complet interface"
            )
        try:
            getattr_static(anchor_cls, method)
        except AttributeError:
            raise NoSuchMethodError(
                f"{anchor_cls.__name__} has no method {method!r}"
            ) from None
