"""The unified metrics registry.

Before this layer existed, every unit kept its own ad-hoc counters
(``InvocationUnit.executed``, ``MovementUnit.moves_sent``,
``Profiler.cache_hits``, ...).  They now all live in one per-Core
:class:`MetricsRegistry` of named, optionally labelled instruments:

- :class:`Counter` — monotonically increasing count (``inc``);
- :class:`Gauge` — a point-in-time value (``set``);
- :class:`Histogram` — a distribution (``observe``), keeping count, sum,
  min, max, and fixed-boundary bucket counts.

Instruments are identified by ``(name, labels)``; asking for the same
pair twice returns the same instrument, so hot paths bind an instrument
once at construction and pay only the increment afterwards.  The
cluster aggregates registries Core by Core
(:meth:`repro.cluster.cluster.Cluster.metrics_snapshot`).
"""

from __future__ import annotations

import json
from bisect import bisect_left


#: Default histogram boundaries: half-decade steps over the virtual-time
#: ranges the simulator produces (10 µs .. 100 s).
DEFAULT_BUCKETS = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2,
    0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0,
)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def qualified_name(name: str, labels: dict) -> str:
    """Display form: ``name{k=v,...}`` (Prometheus-style)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A point-in-time value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """A distribution with fixed bucket boundaries.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``; the last
    slot counts overflows.  Cumulative views are derived on snapshot.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(
        self, name: str, labels: dict, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.bucket_counts[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {
                f"le_{bound:g}": count
                for bound, count in zip(self.bounds, self.bucket_counts, strict=False)
                if count
            },
            "overflow": self.bucket_counts[-1],
        }


class MetricsRegistry:
    """One Core's instrument table."""

    def __init__(self, core_name: str = "") -> None:
        self.core_name = core_name
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # -- get-or-create ---------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, labels)
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, labels)
        return instrument

    def histogram(
        self, name: str, *, buckets: tuple[float, ...] = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, labels, buckets)
        return instrument

    # -- reading ---------------------------------------------------------------

    def counter_value(self, name: str, **labels) -> float:
        """Current value of a counter (0 if never touched)."""
        instrument = self._counters.get((name, _label_key(labels)))
        return instrument.value if instrument is not None else 0.0

    def counters_named(self, name: str) -> dict[tuple, Counter]:
        """Every labelled variant of one counter name."""
        return {
            key[1]: instrument
            for key, instrument in self._counters.items()
            if key[0] == name
        }

    def snapshot(self) -> dict:
        """Plain-data dump of every instrument, qualified-name keyed."""
        return {
            "core": self.core_name,
            "counters": {
                qualified_name(c.name, c.labels): c.snapshot()
                for c in self._counters.values()
            },
            "gauges": {
                qualified_name(g.name, g.labels): g.snapshot()
                for g in self._gauges.values()
            },
            "histograms": {
                qualified_name(h.name, h.labels): h.snapshot()
                for h in self._histograms.values()
            },
        }

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, default=repr)


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Fold per-Core snapshots into one cluster view.

    Counters sum; gauges keep per-Core values (summing a gauge is rarely
    meaningful); histogram counts/sums merge, bounds permitting.
    """
    merged: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for snap in snapshots:
        core = snap.get("core", "")
        for name, value in snap.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0.0) + value
        for name, value in snap.get("gauges", {}).items():
            merged["gauges"][f"{name}@{core}"] = value
        for name, hist in snap.get("histograms", {}).items():
            slot = merged["histograms"].get(name)
            if slot is None:
                merged["histograms"][name] = dict(hist)
            else:
                slot["count"] += hist["count"]
                slot["sum"] += hist["sum"]
                slot["min"] = min(
                    (m for m in (slot["min"], hist["min"]) if m is not None),
                    default=None,
                )
                slot["max"] = max(
                    (m for m in (slot["max"], hist["max"]) if m is not None),
                    default=None,
                )
                slot["mean"] = slot["sum"] / slot["count"] if slot["count"] else 0.0
    return merged
