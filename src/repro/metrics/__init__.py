"""Unified metrics: counters, gauges, histograms (see registry.py)."""

from repro.metrics.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    qualified_name,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "qualified_name",
]
