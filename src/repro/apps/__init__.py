"""Sample applications built on the public FarGo API.

These are written the way a downstream user would write them — no
reaching into runtime internals — and double as living documentation:
the task farm shows monitoring-driven placement of a bag-of-tasks
workload, and the catalog shows ``duplicate``-reference replication of a
read-mostly data source.
"""

from repro.apps.catalog import Catalog, CatalogClient, CatalogFleet
from repro.apps.taskfarm import Farm, FarmWorker, TaskQueue

__all__ = [
    "Catalog",
    "CatalogClient",
    "CatalogFleet",
    "Farm",
    "FarmWorker",
    "TaskQueue",
]
