"""A replicated read-mostly catalog, built on ``duplicate`` references.

§2 motivates the ``duplicate`` type with replication: "useful when
replication can be used (e.g., for read-only data sources), without
violating the logical semantics of the application."  This app is that
use case in full: a master :class:`Catalog` complet lives at the hub; a
:class:`CatalogClient` holds *two* references to it —

- ``master``: a plain ``link``, always pointing at the authoritative
  catalog;
- ``snapshot``: typed ``duplicate``, so the moment the client relocates
  to an edge Core it automatically carries a private copy of the whole
  catalog with it.

Reads served from the snapshot are local (zero network); the client
detects staleness by comparing versions over the master link and pulls
a delta when asked.  :class:`CatalogFleet` deploys a master plus edge
clients and reports how much traffic replication saved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.complet.anchor import Anchor
from repro.complet.relocators import Duplicate
from repro.complet.stub import Stub, compile_complet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster


class Catalog_(Anchor):
    """The authoritative key-value catalog (versioned)."""

    def __init__(self) -> None:
        self.entries: dict[str, object] = {}
        self.version = 0

    def put(self, key: str, value) -> int:
        """Write one entry; returns the new catalog version."""
        self.entries[key] = value
        self.version += 1
        return self.version

    def get(self, key: str):
        return self.entries.get(key)

    def get_version(self) -> int:
        return self.version

    def changes_since(self, version: int) -> tuple[int, dict]:
        """Delta protocol: everything needed to catch a replica up.

        A real system would keep a log; shipping the full map keeps the
        sample honest about *when* data moves, which is what the
        experiments measure.
        """
        if version >= self.version:
            return (self.version, {})
        return (self.version, dict(self.entries))


class CatalogClient_(Anchor):
    """An edge client reading from its private catalog snapshot."""

    def __init__(self, catalog) -> None:
        #: Authoritative reference — stays a link forever.
        self.master = catalog
        #: Read path — an *independent* reference to the same catalog
        #: (set up by prepare_replication), duplicate-typed so it becomes
        #: a private copy when the client moves.
        self.snapshot = catalog
        self.reads = 0

    def prepare_replication(self) -> None:
        """Split the read path off the master link and type it duplicate.

        ``Core.new_reference`` mints an independent reference (its own
        meta reference) to the same complet; retyping it leaves the
        master link untouched.
        """
        from repro.core.core import Core

        self.snapshot = Core.new_reference(self.master)
        Core.get_meta_ref(self.snapshot).set_relocator(Duplicate())

    def lookup(self, key: str):
        """Read from the (possibly local) snapshot."""
        self.reads += 1
        return self.snapshot.get(key)

    def staleness(self) -> int:
        """Versions the snapshot lags behind the master (network read)."""
        return self.master.get_version() - self.snapshot.get_version()

    def refresh(self) -> int:
        """Catch the snapshot up from the master; returns versions gained."""
        local_version = self.snapshot.get_version()
        new_version, entries = self.master.changes_since(local_version)
        if entries:
            for key, value in entries.items():
                self.snapshot.put(key, value)
        return new_version - local_version


Catalog = compile_complet(Catalog_)
CatalogClient = compile_complet(CatalogClient_)


@dataclass
class CatalogFleet:
    """Driver: one master at the hub, replicated clients at the edges."""

    cluster: "Cluster"
    hub: str
    edges: list[str]
    master: Stub = field(init=False)
    clients: list[Stub] = field(init=False)

    def __post_init__(self) -> None:
        self.master = Catalog(_core=self.cluster.core(self.hub))
        self.clients = []
        for edge in self.edges:
            # Born next to the master so the duplicate snapshot is cut
            # from a local closure, then shipped to its edge in one move.
            client = CatalogClient(self.master, _core=self.cluster.core(self.hub))
            client.prepare_replication()
            self.cluster.move(client, edge)
            self.clients.append(client)

    def publish(self, key: str, value) -> int:
        return self.master.put(key, value)

    def read_everywhere(self, key: str) -> list[object]:
        """Each client answers from its own snapshot."""
        results = []
        for client in self.clients:
            handle = self.cluster.stub_at(self.cluster.locate(client), client)
            results.append(handle.lookup(key))
        return results

    def refresh_all(self) -> int:
        """Propagate master changes to every edge; returns total deltas."""
        total = 0
        for client in self.clients:
            handle = self.cluster.stub_at(self.cluster.locate(client), client)
            total += handle.refresh()
        return total
