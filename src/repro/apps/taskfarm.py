"""An adaptive bag-of-tasks farm.

A :class:`TaskQueue` complet holds work items; :class:`FarmWorker`
complets pull batches through a complet reference, process them, and
report results back.  The :class:`Farm` driver deploys the pieces across
a cluster and — when adaptive placement is enabled — watches each
worker's byte rate toward the queue: a worker that is hauling lots of
task bytes over a slow link gets moved next to the queue, exactly the
colocate-or-spread policy of §4.1, expressed with nothing but the public
monitoring API.

Everything here uses only public surface (anchors, stubs, ``Core``
methods, monitor watches), so the module doubles as an end-to-end usage
example of the library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.complet.anchor import Anchor
from repro.complet.stub import Stub, compile_complet, stub_target_id

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster


class TaskQueue_(Anchor):
    """Work-item store: tasks in, results tallied."""

    def __init__(self) -> None:
        self.pending: list[tuple[int, bytes]] = []
        self.completed: dict[int, int] = {}
        self._next_task_id = 0

    def put(self, payload: bytes, copies: int = 1) -> int:
        """Enqueue ``copies`` tasks with the given payload; returns count."""
        for _ in range(copies):
            self.pending.append((self._next_task_id, payload))
            self._next_task_id += 1
        return len(self.pending)

    def take(self, count: int = 1) -> list[tuple[int, bytes]]:
        """Hand out up to ``count`` tasks (removed from the queue)."""
        batch, self.pending = self.pending[:count], self.pending[count:]
        return batch

    def report(self, task_id: int, digest: int) -> None:
        self.completed[task_id] = digest

    def remaining(self) -> int:
        return len(self.pending)

    def completed_count(self) -> int:
        return len(self.completed)

    def results(self) -> dict[int, int]:
        return self.completed


class FarmWorker_(Anchor):
    """Pulls task batches through its queue reference and processes them."""

    def __init__(self, queue, batch: int = 4) -> None:
        self.queue = queue
        self.batch = batch
        self.processed = 0

    def step(self) -> int:
        """One scheduling round: take, process, report.  Returns #done."""
        tasks = self.queue.take(self.batch)
        for task_id, payload in tasks:
            digest = sum(payload) % 65_521  # the "computation"
            self.queue.report(task_id, digest)
            self.processed += 1
        return len(tasks)

    def done_so_far(self) -> int:
        return self.processed


TaskQueue = compile_complet(TaskQueue_)
FarmWorker = compile_complet(FarmWorker_)


@dataclass
class Farm:
    """Driver: deploy a queue and workers, optionally self-placing.

    ``worker_homes`` names the Core for each worker.  With
    :meth:`enable_adaptive_placement`, each worker is watched and moved
    next to the queue once it crosses the byte-rate threshold while its
    link to the queue is slower than ``bandwidth_threshold``.
    """

    cluster: "Cluster"
    queue_home: str
    worker_homes: list[str]
    batch: int = 4
    queue: Stub = field(init=False)
    workers: list[Stub] = field(init=False)
    relocations: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.queue = TaskQueue(_core=self.cluster.core(self.queue_home))
        self.workers = [
            FarmWorker(self.queue, self.batch, _core=self.cluster.core(home), _at=home)
            for home in self.worker_homes
        ]

    # -- workload -----------------------------------------------------------------

    def submit(self, payload_size: int, count: int) -> None:
        self.queue.put(bytes(range(256)) * (payload_size // 256 + 1), copies=count)

    def round(self) -> int:
        """Every worker takes one step; returns tasks completed."""
        done = 0
        for worker in self.workers:
            handle = self.cluster.stub_at(self.cluster.locate(worker), worker)
            done += handle.step()
        return done

    def run_until_drained(self, *, seconds_per_round: float = 1.0, max_rounds: int = 1_000) -> float:
        """Drive rounds until the queue is empty; returns virtual makespan."""
        start = self.cluster.now
        for _ in range(max_rounds):
            if self.queue.remaining() == 0:
                break
            self.round()
            self.cluster.advance(seconds_per_round)
        return self.cluster.now - start

    # -- adaptive placement (§4.1, via the public monitoring API) ---------------------

    def enable_adaptive_placement(
        self,
        *,
        byte_rate_threshold: float = 10_000.0,
        bandwidth_threshold: float = 500_000.0,
        interval: float = 1.0,
    ) -> None:
        queue_id = str(stub_target_id(self.queue))
        for worker in self.workers:
            home = self.cluster.core(self.cluster.locate(worker))
            worker_id = str(stub_target_id(worker))
            event_name = f"farm:{worker_id}"

            def relocate(event, worker=worker) -> None:
                queue_site = self.cluster.locate(self.queue)
                worker_site = self.cluster.locate(worker)
                if worker_site == queue_site:
                    return
                bandwidth = self.cluster.core(worker_site).profile_instant(
                    "bandwidth", peer=queue_site
                )
                if bandwidth < bandwidth_threshold:
                    self.cluster.move(
                        self.cluster.stub_at(worker_site, worker), queue_site
                    )
                    self.relocations.append(f"{worker_site}->{queue_site}")

            home.events.subscribe(event_name, relocate)
            home.monitor.watch(
                "byteRate",
                ">",
                byte_rate_threshold,
                interval=interval,
                event_name=event_name,
                repeat=True,
                src=worker_id,
                dst=queue_id,
            )

    # -- reporting ---------------------------------------------------------------------------

    def progress(self) -> dict:
        return {
            "remaining": self.queue.remaining(),
            "completed": self.queue.completed_count(),
            "worker_locations": [self.cluster.locate(w) for w in self.workers],
            "relocations": list(self.relocations),
        }
