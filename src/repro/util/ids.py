"""Identifiers for complets and trackers.

Complets are globally identified by the Core that created them plus a
per-Core sequence number; the identity is immutable and travels with the
complet as it migrates.  Trackers are identified per hosting Core.  Using
deterministic counters (rather than UUIDs) keeps test output and traces
reproducible.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass


class IdGenerator:
    """Thread-safe monotonically increasing integer id source."""

    def __init__(self, start: int = 1) -> None:
        self._counter = itertools.count(start)
        self._lock = threading.Lock()

    def next(self) -> int:
        with self._lock:
            return next(self._counter)


@dataclass(frozen=True, slots=True)
class CompletId:
    """Global, immutable identity of a complet instance.

    ``birth_core`` is the name of the Core on which the complet was
    instantiated; it never changes, even after the complet migrates.
    """

    birth_core: str
    serial: int
    type_name: str = ""

    def __str__(self) -> str:
        suffix = f":{self.type_name}" if self.type_name else ""
        return f"{self.birth_core}/c{self.serial}{suffix}"

    def short(self) -> str:
        """Compact display form used by the viewer and shell."""
        base = self.type_name or "complet"
        return f"{base}#{self.serial}@{self.birth_core}"


@dataclass(frozen=True, slots=True)
class TrackerId:
    """Identity of a tracker within the Core that hosts it."""

    core: str
    serial: int

    def __str__(self) -> str:
        return f"{self.core}/t{self.serial}"
