"""Class introspection helpers used by the stub compiler."""

from __future__ import annotations

import inspect
from collections.abc import Iterator


def public_methods(cls: type, *, stop_at: type | None = None) -> Iterator[tuple[str, object]]:
    """Yield ``(name, function)`` for the public methods of ``cls``.

    A method is public when its name does not start with an underscore.
    Methods inherited from ``stop_at`` (and above) are excluded, so the
    stub compiler can mirror the anchor's own interface without also
    mirroring the :class:`~repro.complet.anchor.Anchor` machinery or
    ``object`` itself.  Names are yielded in method-resolution order with
    duplicates suppressed (an override is yielded once, from the most
    derived class).
    """
    seen: set[str] = set()
    for klass in cls.__mro__:
        if klass is object or (stop_at is not None and issubclass(stop_at, klass)):
            continue
        for name, member in vars(klass).items():
            if name.startswith("_") or name in seen:
                continue
            if inspect.isfunction(member):
                seen.add(name)
                yield name, member


def method_signature(func: object) -> inspect.Signature:
    """Return the signature of ``func``, tolerating builtins."""
    return inspect.signature(func)  # type: ignore[arg-type]
