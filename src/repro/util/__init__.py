"""Small shared utilities: identifiers, averages, sizing, introspection."""

from repro.util.ids import CompletId, IdGenerator, TrackerId
from repro.util.ema import ExponentialAverage, RateMeter
from repro.util.bytesize import payload_size
from repro.util.introspect import public_methods

__all__ = [
    "CompletId",
    "IdGenerator",
    "TrackerId",
    "ExponentialAverage",
    "RateMeter",
    "payload_size",
    "public_methods",
]
