"""Payload sizing used for bandwidth accounting and the completSize service."""

from __future__ import annotations

import pickle

from repro.errors import SerializationError


def payload_size(obj: object) -> int:
    """Return the serialized size of ``obj`` in bytes.

    The simulated network charges transfer time proportionally to this
    size, and the ``completSize`` profiling service reports it for a
    complet closure.  Objects are measured with the same mechanism that
    moves them (pickle), so the measurement equals the wire size.
    """
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception as exc:  # noqa: BLE001 - pickle raises many types
        raise SerializationError(f"cannot size object of type {type(obj).__name__}: {exc}") from exc


def human_bytes(size: int) -> str:
    """Render a byte count for the viewer/shell, e.g. ``12.3 KB``."""
    value = float(size)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024.0 or unit == "GB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")
