"""Averaging primitives used by the continuous profiling services.

The paper specifies that continuous profiling returns "some average value
(typically an exponential average)"; :class:`ExponentialAverage` is that
average, and :class:`RateMeter` builds on it to turn discrete occurrences
(method invocations, transferred bytes) into a smoothed per-second rate.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class ExponentialAverage:
    """Exponentially weighted moving average of a sampled quantity.

    ``alpha`` is the weight of the newest sample: ``avg' = alpha * sample
    + (1 - alpha) * avg``.  The first sample initializes the average
    directly so that a freshly started profile is not biased toward zero.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value: float | None = None
        self._samples = 0

    @property
    def samples(self) -> int:
        """Number of samples folded into the average so far."""
        return self._samples

    @property
    def value(self) -> float:
        """Current average; 0.0 before the first sample."""
        return 0.0 if self._value is None else self._value

    def add(self, sample: float) -> float:
        """Fold one sample into the average and return the new average."""
        if self._value is None:
            self._value = float(sample)
        else:
            self._value = self.alpha * sample + (1.0 - self.alpha) * self._value
        self._samples += 1
        return self._value

    def reset(self) -> None:
        self._value = None
        self._samples = 0


class RateMeter:
    """Smoothed events-per-second meter fed by discrete occurrences.

    Callers record occurrences with :meth:`mark` (optionally weighted,
    e.g. by byte count) as they happen; a periodic sampler then calls
    :meth:`sample` with the current time, which converts the count
    accumulated since the previous sample into a rate and folds it into
    an exponential average.  This is the mechanism behind the paper's
    ``invocationRate`` application-profiling service.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        self._average = ExponentialAverage(alpha)
        self._accumulated = 0.0
        self._last_sample_time: float | None = None
        self._total = 0.0

    @property
    def total(self) -> float:
        """Total weight recorded since creation (never reset by sampling)."""
        return self._total

    @property
    def rate(self) -> float:
        """Current smoothed rate in marks per second."""
        return self._average.value

    def mark(self, weight: float = 1.0) -> None:
        """Record ``weight`` occurrences at the current instant."""
        self._accumulated += weight
        self._total += weight

    def sample(self, now: float) -> float:
        """Close the current window at time ``now`` and return the rate."""
        if self._last_sample_time is None:
            # First sample only anchors the window; no rate can be derived.
            self._last_sample_time = now
            self._accumulated = 0.0
            return self._average.value
        elapsed = now - self._last_sample_time
        if elapsed <= 0.0:
            return self._average.value
        self._average.add(self._accumulated / elapsed)
        self._accumulated = 0.0
        self._last_sample_time = now
        return self._average.value

    def reset(self) -> None:
        self._average.reset()
        self._accumulated = 0.0
        self._last_sample_time = None
