"""The layout monitor: the textual stand-in for the paper's GUI (Figure 4).

The original graphical monitor connects to multiple Cores, shows in real
time which complets reside where, tracks movements by listening for
arrival/departure events, displays reference properties (type,
invocation counts, profiling values), and lets the administrator move
complets and retype references.  :class:`~repro.viewer.viewer.LayoutMonitor`
offers the same surface over text: snapshot rendering, a live event
feed, and the same manipulation verbs — all through the public admin
and event interfaces, never by reaching into Core internals.
"""

from repro.viewer.viewer import LayoutMonitor
from repro.viewer.render import render_layout, render_references
from repro.viewer.timeline import MovementTimeline
from repro.viewer.traceview import (
    render_metrics,
    render_trace,
    render_trace_timeline,
    render_traces_summary,
)

__all__ = [
    "LayoutMonitor",
    "MovementTimeline",
    "render_layout",
    "render_metrics",
    "render_references",
    "render_trace",
    "render_trace_timeline",
    "render_traces_summary",
]
