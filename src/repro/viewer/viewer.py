"""The layout monitor (Figure 4, textual).

Connects to multiple Cores through the admin and event interfaces and
offers the GUI's capabilities:

- :meth:`LayoutMonitor.render` — the current layout of every connected
  Core (the GUI's main panel);
- live tracking — subscribes to arrival/departure/retype/shutdown
  events at every connected Core and appends them to a feed;
- :meth:`LayoutMonitor.references` — per-complet reference properties
  (relocator type, invocation counts, traffic);
- manipulation — :meth:`move_complet` (the GUI's drag-and-drop) and
  :meth:`retype_reference`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.core import Core
from repro.core.events import (
    COMPLET_ARRIVED,
    COMPLET_DEPARTED,
    CORE_SHUTDOWN,
    REFERENCE_RETYPED,
    Event,
)
from repro.errors import CoreError
from repro.viewer.render import render_events, render_layout, render_references

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster

_TRACKED_EVENTS = (COMPLET_ARRIVED, COMPLET_DEPARTED, CORE_SHUTDOWN, REFERENCE_RETYPED)


class LayoutMonitor:
    """A monitor attached to a cluster at one home Core."""

    def __init__(self, cluster: "Cluster", home: str | None = None) -> None:
        self.cluster = cluster
        home_name = home if home is not None else cluster.core_names()[0]
        self.core: Core = cluster.core(home_name)
        #: Live feed of observed events, rendered lines in arrival order.
        self.feed: list[str] = []
        self._subscriptions: list[tuple[str, int]] = []
        self._connected: list[str] = []

    # -- connection -------------------------------------------------------------------

    def connect(self, *core_names: str) -> None:
        """Start live tracking of the given Cores (default in :meth:`watch_all`)."""
        for name in core_names:
            if name in self._connected:
                continue
            for event_name in _TRACKED_EVENTS:
                handle = self.core.events.subscribe_remote(
                    name, event_name, self._on_event
                )
                self._subscriptions.append(handle)
            self._connected.append(name)

    def watch_all(self) -> None:
        """Connect to every running Core of the cluster."""
        self.connect(*[c.name for c in self.cluster.running_cores()])

    def disconnect(self) -> None:
        for handle in self._subscriptions:
            try:
                self.core.events.unsubscribe_remote(handle)
            except CoreError:
                pass
        self._subscriptions.clear()
        self._connected.clear()

    def _on_event(self, event: Event) -> None:
        self.feed.append(str(event))

    # -- panels -----------------------------------------------------------------------------

    def snapshots(self) -> list[dict]:
        """Admin snapshots of every running Core, in name order."""
        result = []
        for name in self.cluster.core_names():
            if not self.cluster.core(name).is_running:
                continue
            result.append(self.core.admin(name, "snapshot"))
        return result

    def render(self) -> str:
        """The main layout panel."""
        title = f"FarGo layout (t={self.cluster.now:.2f})"
        return render_layout(self.snapshots(), title=title)

    def render_feed(self, limit: int = 20) -> str:
        """The live event feed panel."""
        return render_events(self.feed, limit=limit)

    def references(self, core_name: str, complet_id: str) -> str:
        """The reference-properties panel for one complet."""
        rows = self.core.admin(core_name, "references", complet=complet_id)
        return render_references(complet_id, rows)

    def render_links(self) -> str:
        """The network panel: configured links and observed traffic.

        The GUI of Figure 4 annotates references with "average network
        bandwidth"; this panel shows the underlying link matrix.
        """
        from repro.util.bytesize import human_bytes

        transport = self.cluster.transport
        names = [c.name for c in self.cluster.running_cores()]
        # Configured bandwidth/latency only exist where the backend
        # models links (simnet); elsewhere show observed traffic and
        # live reachability instead of configuration.
        link_model = getattr(transport, "link", None)
        lines = ["links (bandwidth / latency / observed traffic):"]
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                forward = transport.link_stats(a, b)
                backward = transport.link_stats(b, a)
                traffic = human_bytes(forward.bytes + backward.bytes)
                if link_model is not None:
                    link = link_model(a, b)
                    state = "up" if link.up else "DOWN"
                    lines.append(
                        f"  {a:<10} <-> {b:<10} {link.bandwidth / 1000:8.0f} KB/s  "
                        f"{link.latency * 1000:6.1f} ms  "
                        f"{traffic:>10}  {state}"
                    )
                else:
                    state = "up" if transport.can_reach(a, b) else "DOWN"
                    lines.append(
                        f"  {a:<10} <-> {b:<10} {'unmodelled':>8}  "
                        f"{traffic:>10}  {state}"
                    )
        if len(lines) == 1:
            lines.append("  (no links)")
        return "\n".join(lines)

    # -- manipulation ----------------------------------------------------------------------------

    def move_complet(self, core_name: str, complet_id: str, destination: str) -> None:
        """Drag-and-drop: move a complet between Cores."""
        self.core.admin(core_name, "move", complet=complet_id, destination=destination)

    def retype_reference(
        self, core_name: str, complet_id: str, target_id: str, type_name: str
    ) -> None:
        """Change the relocator of one outgoing reference."""
        self.core.admin(
            core_name, "retype", complet=complet_id, target=target_id, type=type_name
        )

    def profile(self, core_name: str, service: str, **params) -> float:
        """Read a profiling value of a connected Core (instant interface)."""
        return self.core.admin(core_name, "profile_instant", service=service, params=params)
