"""Text rendering of distributed traces (span trees and timelines)."""

from __future__ import annotations

from repro.trace.export import Trace


def render_trace(trace: Trace) -> str:
    """Render one trace as an indented span tree.

    ::

        trace alpha.3  (0.041s .. 0.102s, 0.061s, cores: alpha, beta)
          invoke:echo                alpha   0.041  +0.060s
            rpc:invoke               alpha   0.041  +0.040s
              recv:invoke            beta    0.051  +0.020s
    """
    header = (
        f"trace {trace.trace_id}  ({trace.start:.3f}s .. {trace.end:.3f}s, "
        f"{trace.duration:.3f}s, cores: {', '.join(trace.cores())})"
    )
    lines = [header]
    for depth, span in trace.walk():
        label = "  " * (depth + 1) + span.name
        suffix = f" !{span.error}" if span.error else ""
        lines.append(
            f"{label:<42} {span.core:<10} {span.start:8.3f}  "
            f"+{span.duration:.3f}s{suffix}"
        )
    orphans = len(trace.spans) - len(list(trace.walk()))
    if orphans:
        lines.append(f"  ({orphans} spans not reachable from a recorded root)")
    return "\n".join(lines)


def render_trace_timeline(trace: Trace, *, width: int = 48) -> str:
    """Render one trace as horizontal bars over the virtual-time axis.

    Each span becomes one row; its bar spans the portion of the trace's
    duration the span was open for.  Nesting is shown by indentation, so
    the output reads as a text-mode flame chart.
    """
    span_of = trace.duration or 1.0
    lines = [
        f"trace {trace.trace_id}  [{trace.start:.3f}s .. {trace.end:.3f}s]"
    ]
    for depth, span in trace.walk():
        offset = int((span.start - trace.start) / span_of * width)
        length = max(1, int(span.duration / span_of * width))
        length = min(length, width - offset)
        bar = " " * offset + "█" * length
        name = ("  " * depth + span.name)[:28]
        lines.append(f"{name:<28} |{bar:<{width}}| {span.core}")
    return "\n".join(lines)


def render_traces_summary(traces: dict[str, Trace]) -> str:
    """One line per trace: id, span count, duration, cores touched."""
    if not traces:
        return "(no traces recorded; is tracing enabled?)"
    lines = [f"  {'trace':<16} {'spans':>5} {'start':>9} {'duration':>9}  cores"]
    for trace in sorted(traces.values(), key=lambda t: t.start):
        lines.append(
            f"  {trace.trace_id:<16} {len(trace.spans):>5} "
            f"{trace.start:>9.3f} {trace.duration:>8.3f}s  "
            f"{', '.join(trace.cores())}"
        )
    return "\n".join(lines)


def render_metrics(snapshot: dict, *, title: str = "metrics") -> str:
    """Render a metrics snapshot (one Core's, or the cluster aggregate)."""
    lines = [f"== {title} " + "=" * max(0, 50 - len(title))]
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:<44} {counters[name]:g}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:<44} {gauges[name]:g}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            hist = histograms[name]
            lines.append(
                f"  {name:<44} n={hist['count']} mean={hist['mean']:.6g} "
                f"min={hist['min']:.6g} max={hist['max']:.6g}"
                if hist["count"]
                else f"  {name:<44} n=0"
            )
    if len(lines) == 1:
        lines.append("(no instruments recorded)")
    return "\n".join(lines)
