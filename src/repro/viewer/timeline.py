"""Movement timelines: a space-time view of complet locations.

The Figure 4 monitor tracks movements live; this extension keeps the
history and renders it — per complet, which Core hosted it during which
interval of virtual time — giving experiments a one-glance picture of
how a layout evolved::

    movement timeline (t=0.0 .. 60.0)
    client  c1 ................ c2 .........................
    server  c2 ........................................ safe

Build one from a cluster's event stream (it subscribes to arrivals and
departures at every connected Core) or feed it events manually.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.core import Core
from repro.core.events import COMPLET_ARRIVED, COMPLET_DEPARTED, Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster


@dataclass(slots=True)
class Residency:
    """One complet's stay at one Core."""

    core: str
    since: float
    until: float | None = None  # None while current

    def overlaps(self, start: float, end: float) -> bool:
        finish = self.until if self.until is not None else float("inf")
        return self.since < end and finish > start


@dataclass(slots=True)
class _History:
    complet: str
    type_name: str
    residencies: list[Residency] = field(default_factory=list)

    def current(self) -> Residency | None:
        if self.residencies and self.residencies[-1].until is None:
            return self.residencies[-1]
        return None


class MovementTimeline:
    """Recorder + renderer of complet residency history."""

    def __init__(self, cluster: "Cluster", home: str | None = None) -> None:
        self.cluster = cluster
        home_name = home if home is not None else cluster.core_names()[0]
        self.core: Core = cluster.core(home_name)
        self._histories: dict[str, _History] = {}
        self._subscriptions: list[tuple[str, int]] = []

    # -- recording -----------------------------------------------------------------

    def watch_all(self) -> None:
        """Subscribe to movement events at every running Core."""
        for core in self.cluster.running_cores():
            for event_name in (COMPLET_ARRIVED, COMPLET_DEPARTED):
                handle = self.core.events.subscribe_remote(
                    core.name, event_name, self.record
                )
                self._subscriptions.append(handle)

    def track(self, complet_id: str, type_name: str, core: str, *, since: float | None = None) -> None:
        """Seed the initial residency of a complet (before any move)."""
        start = since if since is not None else self.cluster.now
        history = self._histories.setdefault(
            complet_id, _History(complet_id, type_name)
        )
        history.residencies.append(Residency(core, start))

    def record(self, event: Event) -> None:
        """Fold one arrival/departure event into the history."""
        complet_id = event.data.get("complet")
        if complet_id is None:
            return
        history = self._histories.setdefault(
            complet_id, _History(complet_id, event.data.get("type", ""))
        )
        if event.name == COMPLET_ARRIVED:
            current = history.current()
            if current is not None:
                current.until = event.time
            history.residencies.append(Residency(event.origin, event.time))
        elif event.name == COMPLET_DEPARTED:
            current = history.current()
            if current is not None and current.core == event.origin:
                current.until = event.time

    # -- queries --------------------------------------------------------------------------

    def residencies(self, complet_id: str) -> list[Residency]:
        history = self._histories.get(complet_id)
        return list(history.residencies) if history else []

    def location_at(self, complet_id: str, time: float) -> str | None:
        """Where a complet was at a given virtual instant."""
        for residency in self.residencies(complet_id):
            finish = residency.until if residency.until is not None else float("inf")
            if residency.since <= time < finish:
                return residency.core
        return None

    def move_count(self, complet_id: str) -> int:
        return max(0, len(self.residencies(complet_id)) - 1)

    # -- rendering ------------------------------------------------------------------------------

    def render(self, *, width: int = 60, start: float = 0.0, end: float | None = None) -> str:
        """ASCII space-time chart: one row per complet, labels at moves."""
        horizon = end if end is not None else max(self.cluster.now, start + 1e-9)
        span = max(horizon - start, 1e-9)
        label_width = max(
            (len(self._label(h)) for h in self._histories.values()), default=4
        )
        lines = [f"movement timeline (t={start:g} .. {horizon:g})"]
        for key in sorted(self._histories):
            history = self._histories[key]
            row = [" "] * width
            for residency in history.residencies:
                if not residency.overlaps(start, horizon):
                    continue
                finish = residency.until if residency.until is not None else horizon
                lo = int((max(residency.since, start) - start) / span * (width - 1))
                hi = int((min(finish, horizon) - start) / span * (width - 1))
                for i in range(lo, hi + 1):
                    row[i] = "."
                label = residency.core
                for offset, ch in enumerate(label):
                    if lo + offset < width:
                        row[lo + offset] = ch
            lines.append(f"{self._label(history):<{label_width}}  {''.join(row)}")
        return "\n".join(lines)

    @staticmethod
    def _label(history: _History) -> str:
        return history.type_name or history.complet

    def disconnect(self) -> None:
        for handle in self._subscriptions:
            self.core.events.unsubscribe_remote(handle)
        self._subscriptions.clear()
