"""Text rendering of cluster layout and reference tables."""

from __future__ import annotations

from repro.util.bytesize import human_bytes


def render_layout(snapshots: list[dict], *, title: str = "FarGo layout") -> str:
    """Render per-Core snapshots (from ``Core.snapshot``) as a text panel.

    ::

        == FarGo layout (t=12.00) =====================
        core technion   [2 complets, 3 trackers]
          - technion/c1:Message        (bound: msg)
          - technion/c2:Logger
        core acadia     [0 complets, 1 trackers]
          (empty)
    """
    lines = [f"== {title} " + "=" * max(0, 50 - len(title))]
    for snap in snapshots:
        header = (
            f"core {snap['core']:<12} [{len(snap['complets'])} complets, "
            f"{snap['tracker_count']} trackers, "
            f"{snap['active_profiles']} profiles]"
        )
        lines.append(header)
        names = {name: True for name in snap.get("names", [])}
        if not snap["complets"]:
            lines.append("  (empty)")
        for complet in snap["complets"]:
            bound = ""
            if names:
                bound_names = [n for n in names if complet["id"].endswith(n)]
                if bound_names:
                    bound = f"  (bound: {', '.join(bound_names)})"
            lines.append(f"  - {complet['id']}{bound}")
        if snap.get("names"):
            lines.append(f"  names: {', '.join(snap['names'])}")
    return "\n".join(lines)


def render_references(complet_id: str, rows: list[dict]) -> str:
    """Render one complet's outgoing-reference table.

    ``rows`` come from the ``references`` admin operation.
    """
    lines = [f"references of {complet_id}:"]
    if not rows:
        lines.append("  (none)")
        return "\n".join(lines)
    lines.append(f"  {'target':<28} {'type':<10} {'invocations':>12} {'traffic':>10} local")
    for row in rows:
        lines.append(
            f"  {row['target']:<28} {row['type']:<10} "
            f"{row['invocations']:>12} {human_bytes(row['bytes']):>10} "
            f"{'yes' if row['local'] else 'no'}"
        )
    return "\n".join(lines)


#: Eight-level block characters for sparklines.
_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def render_sparkline(
    samples: list[tuple[float, float]] | list[float], *, width: int = 40
) -> str:
    """One-line chart of a profiling history (the viewer's mini-plots).

    Accepts the ``(time, value)`` pairs :meth:`Profiler.history` returns
    (times are ignored; samples are evenly spaced) or plain values.
    """
    values = [v[1] if isinstance(v, tuple) else float(v) for v in samples]
    if not values:
        return "(no samples)"
    values = values[-width:]
    low, high = min(values), max(values)
    span = high - low
    if span <= 0:
        body = _SPARK_LEVELS[4] * len(values)
    else:
        body = "".join(
            _SPARK_LEVELS[1 + int((v - low) / span * (len(_SPARK_LEVELS) - 2))]
            for v in values
        )
    return f"{body}  [{low:g} .. {high:g}]"


def render_events(events: list[str], *, limit: int = 20) -> str:
    """Render the tail of a live event feed."""
    tail = events[-limit:]
    if not tail:
        return "(no events)"
    return "\n".join(tail)
