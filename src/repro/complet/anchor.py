"""Anchors: the interface objects of complets.

A programmer defines a complet by subclassing :class:`Anchor` with a
trailing underscore in the class name (the paper's convention:
``Message_`` is the anchor class; the compiler emits a stub class called
``Message``).  The anchor's public methods are the complet's interface;
everything reachable from the anchor — without crossing a stub — is the
complet's closure and relocates with it.

Anchors may override the four movement callbacks of §3.3
(:meth:`pre_departure`, :meth:`pre_arrival`, :meth:`post_arrival`,
:meth:`post_departure`) and can reach the Core they are currently
executing on through :attr:`Anchor.core` (a dynamic context lookup, so
the attribute never pins a Core into the closure).
"""

from __future__ import annotations

import contextvars
from typing import TYPE_CHECKING

from repro.errors import CompletError
from repro.util.ids import CompletId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.core import Core

#: The Core currently executing complet code (set by the invocation unit
#: and the movement protocol around every entry into complet code).
_current_core: contextvars.ContextVar["Core | None"] = contextvars.ContextVar(
    "fargo_current_core", default=None
)
#: The complet whose method is currently executing (for application
#: profiling: attributing invocation rates to source complets).
_current_complet: contextvars.ContextVar[CompletId | None] = contextvars.ContextVar(
    "fargo_current_complet", default=None
)


def current_core() -> "Core | None":
    """The Core on whose behalf complet code is currently running."""
    return _current_core.get()


def current_complet() -> CompletId | None:
    """The complet whose method is currently executing, if any."""
    return _current_complet.get()


class execution_context:
    """Context manager installing the (core, complet) execution context."""

    def __init__(self, core: "Core | None", complet_id: CompletId | None) -> None:
        self._core = core
        self._complet_id = complet_id
        self._core_token: contextvars.Token | None = None
        self._complet_token: contextvars.Token | None = None

    def __enter__(self) -> "execution_context":
        self._core_token = _current_core.set(self._core)
        self._complet_token = _current_complet.set(self._complet_id)
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._core_token is not None and self._complet_token is not None
        _current_core.reset(self._core_token)
        _current_complet.reset(self._complet_token)


class Anchor:
    """Base class of every complet anchor.

    The underscore naming convention is enforced by the stub compiler,
    not here, so anchors can be unit-tested without a Core.
    """

    #: Set when the complet is installed at a Core; travels with the complet.
    _complet_id: CompletId | None = None

    #: Monotonic count of attribute writes, used by the clone-stream
    #: cache to detect state changes between marshals.  Nested-container
    #: mutations bypass ``__setattr__``, so the runtime also bumps this
    #: after every served invocation (see :func:`bump_state_version`).
    _fargo_state_version: int = 0

    def __setattr__(self, name: str, value: object) -> None:
        object.__setattr__(self, name, value)
        if name != "_fargo_state_version":
            object.__setattr__(
                self, "_fargo_state_version", self._fargo_state_version + 1
            )

    # -- identity -------------------------------------------------------------

    @property
    def complet_id(self) -> CompletId:
        """Global identity of this complet instance."""
        if self._complet_id is None:
            raise CompletError(
                f"{type(self).__name__} instance is not installed at any Core; "
                "instantiate complets through their stub class"
            )
        return self._complet_id

    @property
    def is_installed(self) -> bool:
        return self._complet_id is not None

    @property
    def core(self) -> "Core":
        """The Core this complet's code is currently executing on.

        Only valid while complet code runs (inside a method invocation,
        a movement callback, or a continuation); raises otherwise.  The
        value is looked up dynamically, so it is never captured into the
        complet's closure.
        """
        core = current_core()
        if core is None:
            raise CompletError(
                "Anchor.core is only available while complet code executes on a Core"
            )
        return core

    # -- movement callbacks (§3.3) ---------------------------------------------

    def pre_departure(self, destination: str) -> None:
        """Called at the sending Core before this complet is marshaled."""

    def abort_departure(self, destination: str) -> None:
        """Called at the sending Core when a move fails after ``pre_departure``.

        The move never committed: this complet stays hosted where it is,
        every tracker is untouched, and ``post_departure`` will *not*
        run.  Override to undo whatever ``pre_departure`` prepared
        (flush buffers reopened, leases re-acquired, ...)."""

    def pre_arrival(self) -> None:
        """Called at the receiving Core right after unmarshaling this anchor,
        before the complet is wired into the Core's repository."""

    def post_arrival(self) -> None:
        """Called at the receiving Core once the complet is fully installed."""

    def post_departure(self) -> None:
        """Called at the sending Core right before the old copy is released."""

    # -- display ----------------------------------------------------------------

    def __repr__(self) -> str:
        identity = str(self._complet_id) if self._complet_id else "uninstalled"
        return f"<{type(self).__name__} anchor {identity}>"


def bump_state_version(anchor: Anchor) -> None:
    """Mark ``anchor``'s state as changed (invalidates cached streams).

    Attribute writes bump the version automatically; the runtime calls
    this after every served invocation and movement callback to cover
    in-place mutations of nested containers, which ``__setattr__``
    cannot observe.
    """
    object.__setattr__(
        anchor, "_fargo_state_version", anchor._fargo_state_version + 1
    )


def anchor_type_name(anchor_cls: type) -> str:
    """User-facing complet type name: the anchor class minus the underscore."""
    name = anchor_cls.__name__
    return name[:-1] if name.endswith("_") else name


def qualified_class_ref(cls: type) -> str:
    """Stable ``module:qualname`` reference used in wire tokens."""
    return f"{cls.__module__}:{cls.__qualname__}"


def resolve_class_ref(ref: str) -> type:
    """Inverse of :func:`qualified_class_ref` (used by stamp resolution)."""
    import importlib

    module_name, _, qualname = ref.partition(":")
    obj: object = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not isinstance(obj, type):
        raise CompletError(f"class reference {ref!r} does not resolve to a class")
    return obj
