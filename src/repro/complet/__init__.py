"""The complet programming model: anchors, stubs, trackers, relocators.

A *complet* is FarGo's unit of composition and of relocation: a closure
of objects reached from a distinguished interface object, the *anchor*.
All inter-complet references go through compiler-generated *stubs*; each
stub delegates to the Core-local *tracker* for its target, and carries a
*meta reference* that reifies the reference's relocation semantics as a
pluggable :class:`~repro.complet.relocators.Relocator` (``link``,
``pull``, ``duplicate``, ``stamp``, or user-defined).
"""

from repro.complet.anchor import Anchor
from repro.complet.relocators import Duplicate, Link, Pull, Relocator, Stamp
from repro.complet.metaref import MetaRef
from repro.complet.stub import Stub, compile_complet
from repro.complet.tracker import Tracker, TrackerAddress
from repro.complet.closure import ClosureInfo, compute_closure
from repro.complet.continuation import Continuation

__all__ = [
    "Anchor",
    "Relocator",
    "Link",
    "Pull",
    "Duplicate",
    "Stamp",
    "MetaRef",
    "Stub",
    "compile_complet",
    "Tracker",
    "TrackerAddress",
    "ClosureInfo",
    "compute_closure",
    "Continuation",
]
