"""Stubs and the stub compiler.

The FarGo compiler accepts an anchor class (``Message_``) and generates
a stub class (``Message``) whose constructors and method signatures are
identical to the anchor's.  Programs hold and call stubs exactly as if
they were the anchor — the paper's syntactic transparency — while the
stub delegates every call to the Core-local tracker for its target.

:func:`compile_complet` is that compiler, run at import time instead of
offline.  The generated stub class:

- mirrors every public method of the anchor (same name, signature,
  docstring), each forwarding through the invocation unit;
- mirrors every public read property;
- constructs a *new complet* when instantiated: ``Message("hi")``
  instantiates the anchor on the current (or given) Core, installs it,
  and wires the stub — one statement, like Java's ``new``.
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING, TypeVar

from repro.complet.anchor import Anchor, anchor_type_name, current_core, qualified_class_ref
from repro.complet.metaref import MetaRef
from repro.complet.relocators import Link, Relocator
from repro.complet.tracker import Tracker
from repro.errors import (
    CompletError,
    NotAnAnchorError,
    SerializationError,
    StubGenerationError,
)
from repro.util.ids import CompletId
from repro.util.introspect import public_methods

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.core import Core

T = TypeVar("T")


class Stub:
    """Base class of every generated stub.

    All runtime attributes are ``_fargo``-prefixed so they can never
    collide with the mirrored anchor interface.
    """

    #: Anchor class this stub class was compiled from (set per subclass).
    _fargo_anchor_cls: type[Anchor] = Anchor

    _fargo_core: "Core | None"
    _fargo_tracker: Tracker
    _fargo_meta: MetaRef

    def __init__(self, *args, _core: "Core | None" = None, _at: str | None = None, **kwargs):
        """Instantiate a *new* complet and wire this stub to it.

        ``_core`` names the Core issuing the instantiation (defaults to
        the Core of the currently executing complet code); ``_at`` asks
        for remote instantiation on another Core.  All other arguments
        go to the anchor's constructor — by value if remote.
        """
        core = _core if _core is not None else current_core()
        if core is None:
            raise CompletError(
                f"cannot instantiate {type(self).__name__}: no Core in context; "
                "pass _core= or instantiate from within complet code"
            )
        anchor_cls = self._fargo_anchor_cls
        if _at is None or _at == core.name:
            # Constructor parameters obey the same passing semantics as
            # method parameters (§3.1): regular objects by value, complet
            # references by reference — re-materialized at the hosting
            # Core so the new complet never shares state with its creator.
            marshaler = core.invocation.marshaler
            args, kwargs = marshaler.loads(marshaler.dumps((args, kwargs)))  # type: ignore[misc]
            tracker = core.repository.install_new(anchor_cls, args, kwargs)
            self._fargo_wire_to(core, tracker, Link())
        else:
            token = core.instantiate_remote(anchor_cls, _at, args, kwargs)
            donor = core.references.materialize(token)
            self._fargo_wire_to(core, donor._fargo_tracker, donor._fargo_meta.get_relocator())

    # -- wiring ----------------------------------------------------------------

    def _fargo_wire_to(self, core: "Core | None", tracker: Tracker, relocator: Relocator) -> None:
        self._fargo_core = core
        self._fargo_tracker = tracker
        self._fargo_meta = MetaRef(self, relocator)
        tracker.attach_stub(self)

    @classmethod
    def _fargo_from_tracker(
        cls, core: "Core | None", tracker: Tracker, relocator: Relocator
    ) -> "Stub":
        """Materialize a stub for an existing complet (no construction)."""
        stub = object.__new__(cls)
        stub._fargo_wire_to(core, tracker, relocator)
        return stub

    # -- delegation ---------------------------------------------------------------

    def _fargo_invoke(self, method: str, args: tuple, kwargs: dict) -> object:
        core = self._fargo_core
        if core is None:
            raise CompletError(f"stub {self!r} is not wired to a Core")
        return core.invocation.invoke_stub(self, method, args, kwargs)

    @property
    def _fargo_target_id(self) -> CompletId:
        return self._fargo_tracker.target_id

    # -- safety ---------------------------------------------------------------------

    def __reduce__(self):
        # Stubs may only cross a Core boundary through the marshal hooks,
        # which divert them into reference tokens before pickle ever asks.
        raise SerializationError(
            f"stub {type(self).__name__} reached a serializer without complet-aware "
            "hooks; complet references cannot be pickled directly"
        )

    def __repr__(self) -> str:
        tracker = getattr(self, "_fargo_tracker", None)
        if tracker is None:
            return f"<{type(self).__name__} stub (unwired)>"
        return (
            f"<{type(self).__name__} stub -> {tracker.target_id} "
            f"({self._fargo_meta.type_name})>"
        )


# -- public accessors ------------------------------------------------------
#
# The runtime attributes of a stub are ``_fargo``-prefixed to keep the
# mirrored anchor interface collision-free, which makes them *private to
# this package*.  Other layers (cluster, scripts, apps) read them through
# these accessors instead of reaching into the prefix namespace.


def stub_core(stub: Stub) -> "Core | None":
    """The Core a reference is wired to (None for an unwired stub)."""
    _require_stub(stub, "stub_core")
    return stub._fargo_core


def stub_tracker(stub: Stub) -> Tracker:
    """The Core-local tracker a reference delegates to."""
    _require_stub(stub, "stub_tracker")
    return stub._fargo_tracker


def stub_meta(stub: Stub) -> MetaRef:
    """The meta reference (relocator, statistics) of a reference."""
    _require_stub(stub, "stub_meta")
    return stub._fargo_meta


def stub_target_id(stub: Stub) -> CompletId:
    """The complet id a reference points at."""
    _require_stub(stub, "stub_target_id")
    return stub._fargo_target_id


def _require_stub(value: object, accessor: str) -> None:
    if not isinstance(value, Stub):
        raise CompletError(
            f"{accessor} expects a complet reference, got {type(value).__name__}"
        )


_STUB_CACHE: dict[type[Anchor], type[Stub]] = {}


def compile_complet(anchor_cls: type) -> type[Stub]:
    """Generate (or fetch) the stub class for ``anchor_cls``.

    This is the runtime equivalent of the offline FarGo Compiler.  The
    anchor class name must end with an underscore (the paper's
    convention); the stub class drops it: ``Message_`` → ``Message``.
    """
    if not isinstance(anchor_cls, type) or not issubclass(anchor_cls, Anchor):
        raise NotAnAnchorError(
            f"{getattr(anchor_cls, '__name__', anchor_cls)!r} is not an Anchor subclass"
        )
    if anchor_cls is Anchor:
        raise StubGenerationError("cannot compile the Anchor base class itself")
    if not anchor_cls.__name__.endswith("_"):
        raise StubGenerationError(
            f"anchor class {anchor_cls.__name__!r} must end with an underscore "
            "(e.g. Message_); the stub class takes the name without it"
        )
    cached = _STUB_CACHE.get(anchor_cls)
    if cached is not None:
        return cached

    namespace: dict[str, object] = {
        "_fargo_anchor_cls": anchor_cls,
        "__doc__": f"Compiled stub for complet anchor {anchor_cls.__name__}.",
        "__module__": anchor_cls.__module__,
    }
    for name, func in public_methods(anchor_cls, stop_at=Anchor):
        namespace[name] = _make_stub_method(name, func)
    for name, prop in _public_properties(anchor_cls):
        namespace[name] = _make_stub_property(name, prop)

    stub_cls = type(anchor_type_name(anchor_cls), (Stub,), namespace)
    _STUB_CACHE[anchor_cls] = stub_cls
    return stub_cls


def stub_class_for(anchor_cls: type[Anchor]) -> type[Stub]:
    """Stub class for an anchor class, compiling on first use."""
    return compile_complet(anchor_cls)


def anchor_ref_of(anchor_cls: type[Anchor]) -> str:
    """Wire-format class reference of an anchor class."""
    return qualified_class_ref(anchor_cls)


def _make_stub_method(name: str, anchor_func) -> object:
    @functools.wraps(anchor_func)
    def stub_method(self: Stub, *args, **kwargs):
        return self._fargo_invoke(name, args, kwargs)

    return stub_method


def _make_stub_property(name: str, anchor_prop: property) -> property:
    def getter(self: Stub):
        return self._fargo_invoke(name, (), {})

    getter.__name__ = name
    getter.__doc__ = anchor_prop.__doc__
    return property(getter, doc=anchor_prop.__doc__)


def _public_properties(anchor_cls: type):
    seen: set[str] = set()
    for klass in anchor_cls.__mro__:
        if klass is object or klass is Anchor or not issubclass(klass, Anchor):
            continue
        for name, member in vars(klass).items():
            if name.startswith("_") or name in seen:
                continue
            if isinstance(member, property):
                seen.add(name)
                yield name, member
