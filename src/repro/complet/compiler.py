"""The FarGo Compiler as a command-line tool.

§5 lists "the compiler that generates complet stubs and trackers" among
FarGo's programming tools.  At runtime this reproduction compiles stubs
on demand (:func:`~repro.complet.stub.compile_complet`); this module is
the offline face of the same compiler: point it at a Python module and
it finds every anchor class, compiles its stub, and reports the complet
interfaces — the build-time check a FarGo developer would run::

    $ python -m repro.complet.compiler myapp.complets
    complet Message (from Message_)
      methods:
        print_message(self) -> str
    2 complets compiled, 0 errors

Exit status is non-zero when any anchor class fails to compile, so it
slots into a build pipeline.
"""

from __future__ import annotations

import importlib
import inspect
import sys

from repro.complet.anchor import Anchor, anchor_type_name
from repro.complet.stub import compile_complet
from repro.errors import FarGoError
from repro.util.introspect import public_methods


def find_anchor_classes(module) -> list[type[Anchor]]:
    """Anchor subclasses *defined in* ``module`` (imports excluded)."""
    found = []
    for _name, obj in inspect.getmembers(module, inspect.isclass):
        if (
            issubclass(obj, Anchor)
            and obj is not Anchor
            and obj.__module__ == module.__name__
        ):
            found.append(obj)
    found.sort(key=lambda cls: cls.__name__)
    return found


def describe_complet(anchor_cls: type[Anchor]) -> str:
    """Human-readable interface report for one compiled complet."""
    stub_cls = compile_complet(anchor_cls)
    lines = [f"complet {stub_cls.__name__} (from {anchor_cls.__name__})"]
    lines.append("  methods:")
    method_names = sorted(name for name, _fn in public_methods(anchor_cls, stop_at=Anchor))
    if not method_names:
        lines.append("    (none)")
    for name in method_names:
        func = getattr(anchor_cls, name)
        try:
            signature = str(inspect.signature(func))
        except (TypeError, ValueError):  # pragma: no cover - builtins
            signature = "(...)"
        lines.append(f"    {name}{signature}")
    properties = sorted(
        name
        for klass in anchor_cls.__mro__
        if klass not in (object, Anchor) and issubclass(klass, Anchor)
        for name, member in vars(klass).items()
        if isinstance(member, property) and not name.startswith("_")
    )
    if properties:
        lines.append("  properties:")
        for name in properties:
            lines.append(f"    {name}")
    return "\n".join(lines)


def compile_module(module_name: str, *, out=None) -> int:
    """Compile every anchor in ``module_name``; returns the error count."""
    if out is None:
        out = sys.stdout  # resolved at call time so redirection works
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        print(f"error: cannot import {module_name!r}: {exc}", file=out)
        return 1
    anchors = find_anchor_classes(module)
    if not anchors:
        print(f"no anchor classes found in {module_name!r}", file=out)
        return 0
    errors = 0
    compiled = 0
    for anchor_cls in anchors:
        try:
            print(describe_complet(anchor_cls), file=out)
            compiled += 1
        except FarGoError as exc:
            print(f"error: {anchor_cls.__name__}: {exc}", file=out)
            errors += 1
        print(file=out)
    print(f"{compiled} complets compiled, {errors} errors", file=out)
    return errors


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print("usage: python -m repro.complet.compiler <module> [<module> ...]")
        return 2
    total_errors = 0
    for module_name in args:
        total_errors += compile_module(module_name)
    return 1 if total_errors else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
