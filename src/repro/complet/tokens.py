"""Wire tokens: the serialized form of complet references.

When a complet reference (a stub) is reached during marshaling — either
while moving a complet or while passing parameters — the reference
itself is diverted out of the pickle stream and replaced by one of these
tokens.  The receiving Core's reference handler materializes each token
back into a stub wired to a Core-local tracker.  Which token a reference
produces is decided by its :class:`~repro.complet.relocators.Relocator`,
exactly the paper's pluggable per-type (un)marshaling routines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.complet.tracker import TrackerAddress
from repro.util.ids import CompletId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.complet.relocators import Relocator


@dataclass(frozen=True, slots=True)
class RefToken:
    """A reference to a complet that stays where it is.

    ``last_known`` is the address of a tracker that can (transitively)
    reach the target; the receiving Core wires its own tracker to it.
    """

    target_id: CompletId
    anchor_ref: str
    last_known: TrackerAddress
    relocator: "Relocator"


@dataclass(frozen=True, slots=True)
class InGroupToken:
    """A reference to a complet travelling in the same movement stream.

    The receiving Core wires the stub to the (new, local) tracker of the
    group member instead of going back over the network.
    """

    target_id: CompletId
    anchor_ref: str
    relocator: "Relocator"


@dataclass(frozen=True, slots=True)
class CloneToken:
    """A reference to a *copy* of the target carried in the stream.

    Produced by ``duplicate`` references: ``clone_id`` is the fresh
    identity assigned to the copy, whose closure travels as a group
    member of the same stream.
    """

    clone_id: CompletId
    anchor_ref: str
    relocator: "Relocator"


@dataclass(frozen=True, slots=True)
class StampToken:
    """A by-type reconnection request.

    The receiving Core looks up a local complet whose anchor is an
    instance of ``anchor_ref`` and wires the stub to it.  ``fallback``
    optionally carries a plain reference to the original target, used
    when the relocator was configured to degrade instead of fail.
    """

    anchor_ref: str
    relocator: "Relocator"
    fallback: RefToken | None = None
