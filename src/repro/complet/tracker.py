"""Trackers: the location-transparency half of a complet reference.

The paper splits the classic proxy into a *stub* (local, interface-
identical to the anchor) and a *tracker* (one per target complet per
Core) that knows where the target actually is.  A tracker either holds
the target's anchor directly (the complet is local) or points at the
tracker of the next Core along the target's migration path.  Chains of
trackers form as a complet hops between Cores and are shortened on the
return path of every invocation; trackers that end up pointed at by
nobody become garbage (§3.1).

Trackers are runtime objects and never cross the network; the wire form
is :class:`TrackerAddress`.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import CompletError
from repro.util.ids import CompletId, TrackerId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.complet.anchor import Anchor
    from repro.complet.stub import Stub


@dataclass(frozen=True, slots=True)
class TrackerAddress:
    """Wire-format address of a tracker: (hosting core, tracker id)."""

    core: str
    serial: int

    @property
    def tracker_id(self) -> TrackerId:
        return TrackerId(self.core, self.serial)

    def __str__(self) -> str:
        return f"{self.core}/t{self.serial}"


class Tracker:
    """One Core's view of where a target complet lives.

    Invariant: at any time a tracker is in exactly one of three states —

    - *local*: ``local_anchor`` is set, the complet lives on this Core;
    - *forwarding*: ``next_hop`` addresses the tracker of another Core;
    - *dangling*: the target was destroyed (invocations raise).
    """

    def __init__(
        self,
        tracker_id: TrackerId,
        target_id: CompletId,
        anchor_ref: str,
    ) -> None:
        self.tracker_id = tracker_id
        self.target_id = target_id
        #: ``module:qualname`` of the target's anchor class (for stub and
        #: stamp materialization without the live object).
        self.anchor_ref = anchor_ref
        self.local_anchor: "Anchor | None" = None
        self.next_hop: TrackerAddress | None = None
        #: Addresses of remote trackers known to forward to this tracker;
        #: maintained by the reference handler so unreferenced trackers
        #: can be collected.
        self.remote_pointers: set[TrackerAddress] = set()
        #: Live local stubs delegating to this tracker.
        self._stubs: "weakref.WeakSet[Stub]" = weakref.WeakSet()
        #: Invocations served locally / forwarded onward (for profiling).
        self.served_invocations = 0
        self.forwarded_invocations = 0

    # -- state ------------------------------------------------------------------

    @property
    def is_local(self) -> bool:
        return self.local_anchor is not None

    @property
    def is_forwarding(self) -> bool:
        return self.next_hop is not None

    @property
    def is_dangling(self) -> bool:
        return self.local_anchor is None and self.next_hop is None

    @property
    def address(self) -> TrackerAddress:
        return TrackerAddress(self.tracker_id.core, self.tracker_id.serial)

    def point_to_local(self, anchor: "Anchor") -> None:
        """The target complet now lives on this Core."""
        self.local_anchor = anchor
        self.next_hop = None

    def point_to(self, address: TrackerAddress) -> None:
        """The target complet is (believed to be) reachable via ``address``."""
        if address == self.address:
            raise CompletError(f"tracker {self.tracker_id} cannot forward to itself")
        self.local_anchor = None
        self.next_hop = address

    def mark_dangling(self) -> None:
        """The target complet was destroyed."""
        self.local_anchor = None
        self.next_hop = None

    # -- pointer bookkeeping -------------------------------------------------

    def attach_stub(self, stub: "Stub") -> None:
        self._stubs.add(stub)

    @property
    def live_stub_count(self) -> int:
        return len(self._stubs)

    @property
    def is_collectable(self) -> bool:
        """True when nothing points at this tracker any more.

        A tracker is garbage when it does not host the complet locally,
        no local stub delegates to it, and no remote tracker forwards to
        it — the condition the paper states for post-shortening cleanup.
        """
        return (
            not self.is_local
            and self.live_stub_count == 0
            and not self.remote_pointers
        )

    def __repr__(self) -> str:
        if self.is_local:
            where = "local"
        elif self.next_hop is not None:
            where = f"-> {self.next_hop}"
        else:
            where = "dangling"
        return f"<Tracker {self.tracker_id} for {self.target_id} {where}>"
