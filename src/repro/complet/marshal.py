"""Reference-aware marshaling: the mobility protocol's wire format (§3.3).

Two kinds of payload cross Core boundaries:

- **Movement payloads** carry a whole *movement group* — the moved
  complet plus every complet its ``pull`` references drag along and
  every copy its ``duplicate`` references spawn — in a single stream,
  which is why a group move is one inter-Core message (the paper's
  single-stream property).  Outgoing references at the group boundary
  are diverted into wire tokens chosen by their relocators.

- **Invocation payloads** carry method arguments and results.  Complet
  references (stubs, or a raw anchor passed by the complet itself, e.g.
  ``self``) become reference tokens degraded to ``link``; everything
  else is copied by value — §3.1's parameter-passing semantics.

Marshaling happens in two phases, mirroring the paper's protocol:
*planning* (:class:`MovementPlan`) walks closures and decides group
membership by consulting each reference's relocator, then *marshaling*
(:class:`MovementMarshaler`) produces the stream, with relocators again
choosing each boundary reference's token.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.complet.anchor import Anchor
from repro.complet.closure import compute_closure
from repro.complet.continuation import Continuation
from repro.complet.relocators import Link, Relocator, Stamp
from repro.complet.stub import Stub
from repro.complet.tokens import CloneToken, InGroupToken, RefToken, StampToken
from repro.complet.tracker import Tracker, TrackerAddress
from repro.errors import CompletBoundaryError, CompletError, SerializationError
from repro.net.serializer import Serializer
from repro.store.proxy import StoreProxy
from repro.util.ids import CompletId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.core import Core

#: Tag wrapping every diverted reference in the pickle stream.
_REF_TAG = "fargo-ref"

#: Invocation-payload prefix: the marshaled body follows inline.
_INLINE_PREFIX = b"\x00"
#: Invocation-payload prefix: a pickled StoreProxy for the body follows.
_OFFLOADED_PREFIX = b"\x01"


def _offload_stream(
    core: "Core", stream: bytes, kind: str
) -> "bytes | StoreProxy":
    """Substitute a store proxy for ``stream`` when the Core offloads."""
    client = getattr(core, "store_client", None)
    if client is None:
        return stream
    return client.offload(stream, kind=kind)


def _resolve_stream(core: "Core", obj: "bytes | StoreProxy") -> bytes:
    """Payload bytes for ``obj``, releasing the store reference if proxied."""
    if not isinstance(obj, StoreProxy):
        return obj
    client = getattr(core, "store_client", None)
    if client is not None:
        return client.resolve(obj, release=True)
    data = obj.fetch()
    obj.release()
    return data


@dataclass(frozen=True, slots=True)
class MemberInfo:
    """Metadata for one complet travelling in a movement payload.

    ``source_tracker`` is the sending Core's tracker for the member; the
    receiving Core pre-registers it as a remote pointer because the
    sender will re-point that tracker here the moment the move commits.
    """

    complet_id: CompletId
    anchor_ref: str
    source_tracker: "TrackerAddress | None" = None


@dataclass(frozen=True, slots=True)
class CloneEntry:
    """One duplicate copy travelling in a movement payload.

    The clone's closure is a nested stream so that two copies of the
    same original stay distinct objects at the destination.  The stream
    may travel as a :class:`~repro.store.StoreProxy` when the marshaling
    Core offloads large payloads.
    """

    clone_id: CompletId
    anchor_ref: str
    stream: "bytes | StoreProxy"


@dataclass(slots=True)
class MovementPayload:
    """Everything one MOVE_COMPLET message carries.

    With store offloading enabled, ``stream`` (and each clone entry's
    stream) travels as a :class:`~repro.store.StoreProxy` instead of the
    marshaled bytes, so a group move costs O(reference) transport bytes.
    """

    source_core: str
    members: list[MemberInfo]
    stream: "bytes | StoreProxy"
    clones: list[CloneEntry] = field(default_factory=list)

    @property
    def member_ids(self) -> list[CompletId]:
        return [m.complet_id for m in self.members]


class MovementPlan:
    """Phase one: compute the movement group for one move request.

    Walks the moved complet's closure; every outgoing reference's
    relocator gets a chance to extend the group (``pull`` recurses into
    local targets, ``duplicate`` registers a copy).  Pull targets that
    live on *other* Cores cannot join this stream; they are recorded so
    the movement unit can issue follow-up move requests to their hosts.
    """

    def __init__(self, core: "Core", root: Anchor) -> None:
        self.core = core
        #: Complets moving in this stream, in discovery order.
        self.movers: dict[CompletId, Anchor] = {}
        #: target complet id -> (fresh clone id, local anchor to copy).
        self.local_clones: dict[CompletId, tuple[CompletId, Anchor]] = {}
        #: Prefabricated clone entries fetched from remote hosts.
        self.remote_clones: list[CloneEntry] = []
        #: Pull references whose targets live on other Cores.
        self.remote_pulls: list[Stub] = []
        self._queue: list[Anchor] = [root]
        self._build()

    def _build(self) -> None:
        while self._queue:
            anchor = self._queue.pop(0)
            if anchor.complet_id in self.movers:
                continue
            self.movers[anchor.complet_id] = anchor
            for stub in compute_closure(anchor).outgoing:
                stub._fargo_meta.get_relocator().plan(stub, self)

    # -- GroupPlanner interface (called back by relocators) ---------------------

    def pull(self, stub: Stub) -> None:
        tracker = stub._fargo_tracker
        if tracker.is_local:
            assert tracker.local_anchor is not None
            self._queue.append(tracker.local_anchor)
        else:
            self.remote_pulls.append(stub)

    def duplicate(self, stub: Stub) -> None:
        target_id = stub._fargo_target_id
        if target_id in self.local_clones:
            return
        tracker = stub._fargo_tracker
        if tracker.is_local:
            assert tracker.local_anchor is not None
            clone_id = self.core.repository.new_complet_id(tracker.local_anchor)
            self.local_clones[target_id] = (clone_id, tracker.local_anchor)
        else:
            entry = self.core.movement.fetch_remote_clone(stub)
            self.remote_clones.append(entry)
            # Register the mapping so the reference can point at the copy.
            self.local_clones[target_id] = (entry.clone_id, None)  # type: ignore[assignment]

    @property
    def group_ids(self) -> set[CompletId]:
        ids = set(self.movers)
        ids.update(clone_id for clone_id, _ in self.local_clones.values())
        return ids


class MovementMarshaler:
    """Phase two: produce the single-stream movement payload."""

    def __init__(self, core: "Core", plan: MovementPlan) -> None:
        self.core = core
        self.plan = plan
        self._group_ids = plan.group_ids
        self._clone_ids = {
            target: clone_id for target, (clone_id, _) in plan.local_clones.items()
        }
        self._serializer = Serializer(encode_hook=self._encode)

    def payload(self, continuation: Continuation | None) -> MovementPayload:
        members = []
        for cid, anchor in self.plan.movers.items():
            ref = _anchor_ref(anchor)
            source = self.core.repository.tracker_for(cid, ref).address
            members.append(MemberInfo(cid, ref, source))
        stream = self._serializer.dumps((self.plan.movers, continuation))
        clones = list(self.plan.remote_clones)
        for target_id, (clone_id, anchor) in self.plan.local_clones.items():
            if anchor is None:
                continue  # remote clone, already prefabricated
            clones.append(marshal_clone(self.core, anchor, clone_id, offload=True))
        return MovementPayload(
            source_core=self.core.name,
            members=members,
            stream=_offload_stream(self.core, stream, "move"),
            clones=clones,
        )

    # -- pickle hook --------------------------------------------------------------

    def _encode(self, obj: object) -> object | None:
        if isinstance(obj, Stub):
            token = obj._fargo_meta.get_relocator().make_token(obj, self)
            return (_REF_TAG, token)
        if isinstance(obj, Anchor):
            if obj._complet_id is not None and obj._complet_id in self.plan.movers:
                return None  # a group member: serialize by value
            raise CompletBoundaryError(
                f"movement stream reached foreign anchor {obj!r} directly; "
                "inter-complet references must go through stubs"
            )
        _reject_runtime_object(obj)
        return None

    # -- TokenContext interface (called back by relocators) -------------------------

    def reference_token(self, stub: Stub, relocator: Relocator) -> object:
        target_id = stub._fargo_target_id
        tracker = stub._fargo_tracker
        if target_id in self._group_ids:
            return InGroupToken(target_id, tracker.anchor_ref, relocator)
        return RefToken(target_id, tracker.anchor_ref, _token_address(tracker), relocator)

    def clone_token(self, stub: Stub, relocator: Relocator) -> object:
        clone_id = self._clone_ids[stub._fargo_target_id]
        return CloneToken(clone_id, stub._fargo_tracker.anchor_ref, relocator)

    def stamp_token(self, stub: Stub, relocator: Relocator) -> object:
        fallback: RefToken | None = None
        if getattr(relocator, "fallback", "error") == "link":
            tracker = stub._fargo_tracker
            fallback = RefToken(
                stub._fargo_target_id, tracker.anchor_ref, _token_address(tracker), Link()
            )
        return StampToken(stub._fargo_tracker.anchor_ref, relocator, fallback)


class CloneStreamCache:
    """Memoized clone streams, keyed by ``(complet_id, preserve_stamps)``.

    A clone stream is independent of the clone id it is shipped under
    (the id is overwritten after unmarshaling), so repeated marshals of
    an *unchanged* complet — periodic checkpoints above all, but also
    repeated ``duplicate`` moves — can reuse the bytes instead of
    re-pickling the whole closure.

    An entry is reused only when it provably still matches what a fresh
    marshal would produce:

    - the cached anchor is the *same object* carrying the same
      ``_fargo_state_version`` (any attribute write, served invocation,
      or movement callback bumps the version);
    - every outgoing reference the stream encoded still resolves to the
      same relocator instance and the same wire address (retypes and
      chain shortening re-route tokens, so either invalidates).

    Entries hold only weak references to anchors and stubs, so caching
    never extends a complet's (or a tracker's) lifetime.
    """

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, anchor: Anchor, preserve_stamps: bool) -> bytes | None:
        """Return the cached stream for ``anchor``, or None when stale."""
        key = (anchor._complet_id, preserve_stamps)
        entry = self._entries.get(key)
        if entry is None or anchor._complet_id is None:
            self.misses += 1
            return None
        version, anchor_ref, stream, deps = entry
        if anchor_ref() is not anchor or anchor._fargo_state_version != version:
            self._entries.pop(key, None)
            self.misses += 1
            return None
        for stub_ref, relocator, address in deps:
            stub = stub_ref()
            if (
                stub is None
                or stub._fargo_meta.get_relocator() is not relocator
                or _token_address(stub._fargo_tracker) != address
            ):
                self._entries.pop(key, None)
                self.misses += 1
                return None
        self._entries.move_to_end(key)
        self.hits += 1
        return stream

    def store(
        self,
        anchor: Anchor,
        preserve_stamps: bool,
        stream: bytes,
        deps: list[tuple[Stub, Relocator, "TrackerAddress"]],
    ) -> None:
        if anchor._complet_id is None:
            return
        key = (anchor._complet_id, preserve_stamps)
        weak_deps = tuple(
            (weakref.ref(stub), relocator, address)
            for stub, relocator, address in deps
        )
        self._entries[key] = (
            anchor._fargo_state_version,
            weakref.ref(anchor),
            stream,
            weak_deps,
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


def marshal_clone(
    core: "Core",
    anchor: Anchor,
    clone_id: CompletId,
    *,
    preserve_stamps: bool = False,
    offload: bool = False,
) -> CloneEntry:
    """Marshal a *copy* of ``anchor``'s complet as a nested clone stream.

    The copy's outgoing references degrade to ``link`` (the same rule
    §3.1 applies to copied parameter graphs): the clone keeps pointing
    at the original targets, wherever they are.  With ``preserve_stamps``
    (used by persistence snapshots), ``stamp``-typed references keep
    their stamp semantics instead, so a restored complet re-resolves
    them against whatever the restore destination hosts.

    ``offload`` lets the Core's store client substitute a proxy for a
    large stream.  Only wire-bound entries (movement payloads, answered
    CLONE_REQUESTs) opt in; persistence snapshots stay self-contained
    bytes, valid long after any store entry would have been released.
    Offloading composes with the clone-stream cache: an unchanged complet
    re-marshals to the same bytes, hence the same content key, so repeat
    duplicates land on one store entry and repeat readers hit their
    resolve cache — and any state-version bump yields new bytes under a
    new key (version-stamped invalidation).
    """

    cache: CloneStreamCache | None = getattr(core, "marshal_cache", None)
    if cache is not None:
        cached = cache.lookup(anchor, preserve_stamps)
        if cached is not None:
            wire = _offload_stream(core, cached, "clone") if offload else cached
            return CloneEntry(clone_id, _anchor_ref(anchor.__class__), wire)

    deps: list[tuple[Stub, Relocator, TrackerAddress]] = []

    def encode(obj: object) -> object | None:
        if isinstance(obj, Stub):
            tracker = obj._fargo_tracker
            relocator = obj._fargo_meta.get_relocator()
            deps.append((obj, relocator, _token_address(tracker)))
            if preserve_stamps and isinstance(relocator, Stamp):
                fallback: RefToken | None = None
                if getattr(relocator, "fallback", "error") == "link":
                    fallback = RefToken(
                        obj._fargo_target_id,
                        tracker.anchor_ref,
                        _token_address(tracker),
                        Link(),
                    )
                return (_REF_TAG, StampToken(tracker.anchor_ref, relocator, fallback))
            token = RefToken(
                obj._fargo_target_id,
                tracker.anchor_ref,
                _token_address(tracker),
                relocator.degraded_for_parameter(),
            )
            return (_REF_TAG, token)
        if isinstance(obj, Anchor) and obj is not anchor:
            raise CompletBoundaryError(
                f"clone of {anchor!r} reaches foreign anchor {obj!r} directly"
            )
        _reject_runtime_object(obj)
        return None

    stream = Serializer(encode_hook=encode).dumps(anchor)
    if cache is not None:
        cache.store(anchor, preserve_stamps, stream, deps)
    wire = _offload_stream(core, stream, "clone") if offload else stream
    return CloneEntry(clone_id, _anchor_ref(anchor.__class__), wire)


def unmarshal_clone(core: "Core", entry: CloneEntry) -> Anchor:
    """Rebuild a clone stream into a live anchor carrying ``entry.clone_id``.

    Clone streams contain only plain reference tokens (marshal_clone
    degrades everything to ``link``), so no group trackers are needed.
    """
    memo: dict = {}

    def decode(wrapped: object) -> object:
        token = _unwrap(wrapped)
        if token not in memo:
            memo[token] = core.references.materialize(token)
        return memo[token]

    anchor = Serializer(decode_hook=decode).loads(_resolve_stream(core, entry.stream))
    if not isinstance(anchor, Anchor):
        raise SerializationError(
            f"clone stream for {entry.clone_id} did not contain an anchor"
        )
    anchor._complet_id = entry.clone_id
    return anchor


@dataclass(slots=True)
class UnmarshalResult:
    """What arrived in one movement payload, fully materialized."""

    movers: dict[CompletId, Anchor]
    clones: list[Anchor]
    continuation: Continuation | None


class MovementUnmarshaler:
    """Rebuild a movement group at the receiving Core.

    Trackers for every group member are claimed *before* the stream is
    decoded so that in-group references (mutual references between
    complets travelling together) wire up without any network traffic.
    """

    def __init__(self, core: "Core", payload: MovementPayload) -> None:
        self.core = core
        self.payload = payload
        # Equal tokens materialize to the same stub, preserving the
        # sharing structure of the original object graph.
        self._memo: dict = {}

    def load(self) -> UnmarshalResult:
        repository = self.core.repository
        for member in self.payload.members:
            repository.tracker_for(member.complet_id, member.anchor_ref)
        for entry in self.payload.clones:
            repository.tracker_for(entry.clone_id, entry.anchor_ref)

        serializer = Serializer(decode_hook=self._decode)
        stream = _resolve_stream(self.core, self.payload.stream)
        movers, continuation = serializer.loads(stream)  # type: ignore[misc]

        clones: list[Anchor] = []
        for entry in self.payload.clones:
            clone = Serializer(decode_hook=self._decode).loads(
                _resolve_stream(self.core, entry.stream)
            )
            if not isinstance(clone, Anchor):
                raise SerializationError(
                    f"clone stream for {entry.clone_id} did not contain an anchor"
                )
            clone._complet_id = entry.clone_id
            clones.append(clone)
        return UnmarshalResult(movers=movers, clones=clones, continuation=continuation)

    def _decode(self, wrapped: object) -> object:
        token = _unwrap(wrapped)
        if token not in self._memo:
            self._memo[token] = self.core.references.materialize(token)
        return self._memo[token]


class InvocationMarshaler:
    """By-value parameter/result marshaling with by-reference complets.

    One instance is bound to the Core doing the encoding or decoding.
    Used on both sides of every invocation — including invocations whose
    target happens to be colocated, because complets are "always
    considered remote to each other with respect to parameter passing".

    Every payload carries a one-byte prefix: inline bodies follow it
    directly; bodies above the Core's store ``offload_threshold`` are put
    into the object store and the prefix is followed by a pickled
    :class:`~repro.store.StoreProxy` instead, so a bulky argument or
    result crosses the transport as a reference.
    """

    def __init__(self, core: "Core") -> None:
        self.core = core
        self._encoder = Serializer(encode_hook=self._encode)

    def dumps(self, obj: object) -> bytes:
        data = self._encoder.dumps(obj)
        wire = _offload_stream(self.core, data, "invoke")
        if isinstance(wire, StoreProxy):
            import pickle

            return _OFFLOADED_PREFIX + pickle.dumps(wire)
        return _INLINE_PREFIX + data

    def loads(self, data: bytes) -> object:
        prefix, body = data[:1], data[1:]
        if prefix == _OFFLOADED_PREFIX:
            import pickle

            proxy = pickle.loads(body)
            if not isinstance(proxy, StoreProxy):
                raise SerializationError(
                    "offloaded invocation payload did not contain a store proxy"
                )
            body = _resolve_stream(self.core, proxy)
        elif prefix != _INLINE_PREFIX:
            raise SerializationError(
                f"invocation payload has unknown prefix {prefix!r}"
            )
        # Per-payload memo: equal tokens materialize to the same stub,
        # preserving the sharing structure of the argument graph.
        memo: dict = {}

        def decode(wrapped: object) -> object:
            token = _unwrap(wrapped)
            if token not in memo:
                memo[token] = self.core.references.materialize(token)
            return memo[token]

        return Serializer(decode_hook=decode).loads(body)

    def _encode(self, obj: object) -> object | None:
        if isinstance(obj, Stub):
            tracker = obj._fargo_tracker
            token = RefToken(
                obj._fargo_target_id,
                tracker.anchor_ref,
                _token_address(tracker),
                obj._fargo_meta.get_relocator().degraded_for_parameter(),
            )
            return (_REF_TAG, token)
        if isinstance(obj, Anchor):
            # A complet passing itself (or a colocated anchor) as a
            # parameter: pass by complet reference, default link type.
            if obj._complet_id is None:
                raise CompletError(
                    f"anchor {obj!r} is not installed at any Core and cannot be "
                    "passed as a complet reference"
                )
            tracker = self.core.repository.tracker_for(
                obj._complet_id, _anchor_ref(obj.__class__)
            )
            token = RefToken(obj._complet_id, tracker.anchor_ref, tracker.address, Link())
            return (_REF_TAG, token)
        _reject_runtime_object(obj)
        return None

def _unwrap(wrapped: object) -> object:
    if not (isinstance(wrapped, tuple) and len(wrapped) == 2 and wrapped[0] == _REF_TAG):
        raise SerializationError(f"unknown persistent token {wrapped!r}")
    return wrapped[1]


def _token_address(tracker: Tracker) -> "TrackerAddress":
    """The address a wire token should carry for this reference.

    A forwarding tracker's knowledge is its next hop — the moved stub
    must point *past* the Core it is leaving (whose local tracker it can
    no longer reach as a local object), exactly as FarGo serializes an
    outgoing reference as a remote reference to the next tracker.
    """
    if tracker.next_hop is not None:
        return tracker.next_hop
    return tracker.address


def _anchor_ref(anchor_or_cls: object) -> str:
    from repro.complet.anchor import qualified_class_ref

    cls = anchor_or_cls if isinstance(anchor_or_cls, type) else type(anchor_or_cls)
    return qualified_class_ref(cls)


def _reject_runtime_object(obj: object) -> None:
    """Refuse to serialize runtime infrastructure that must never travel."""
    if isinstance(obj, Tracker):
        raise SerializationError("a Tracker reached the wire; trackers never travel")
    # Cores are detected by duck type to avoid an import cycle.
    if obj.__class__.__name__ == "Core" and hasattr(obj, "repository"):
        raise SerializationError("a Core reached the wire; Cores are stationary")
