"""Continuations: resuming computation after a weak-mobility move (§3.3).

FarGo moves object state only (weak mobility) — the stack and program
counter stay behind.  To let a computation continue at the destination,
a move may carry a :class:`Continuation`: the name of a method of the
moved complet's anchor plus its arguments.  The receiving Core invokes
it once the complet is fully installed (after ``post_arrival``).  The
arguments travel in the same marshaled stream as the complet, so they
obey the usual parameter-passing semantics (complet references survive,
everything else is copied).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ContinuationError


@dataclass(slots=True)
class Continuation:
    """A ``(method, arguments)`` pair invoked at the destination Core."""

    method: str
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)

    def resolve(self, anchor: object):
        """Return the bound method on ``anchor``, validating it exists."""
        func = getattr(anchor, self.method, None)
        if func is None or not callable(func):
            raise ContinuationError(
                f"moved complet {type(anchor).__name__} has no continuation "
                f"method {self.method!r}"
            )
        return func
