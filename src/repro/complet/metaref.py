"""Meta references: reflection on complet references (§3.2).

Every complet reference owns a meta reference object that reifies the
reference without disturbing its use: the program keeps invoking the
stub with plain method-call syntax, while the meta reference exposes —
and lets the program *change* — the reference's relocation semantics,
and reports where the target currently is and how the reference has been
used.  Obtained through ``Core.get_meta_ref(stub)``, mirroring the
paper's ``Core.getMetaRef``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.complet.relocators import Link, Relocator
from repro.errors import ConfigurationError
from repro.util.ids import CompletId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.complet.stub import Stub


class MetaRef:
    """Reified view of one complet reference (one stub)."""

    def __init__(self, stub: "Stub", relocator: Relocator | None = None) -> None:
        self._stub = stub
        self._relocator: Relocator = relocator if relocator is not None else Link()
        #: Method invocations issued through this reference.
        self.invocation_count = 0
        #: Serialized argument + result bytes that crossed this reference.
        self.bytes_transferred = 0

    # -- relocation semantics ---------------------------------------------------

    def get_relocator(self) -> Relocator:
        """The object reifying this reference's relocation type."""
        return self._relocator

    def set_relocator(self, relocator: Relocator) -> None:
        """Change the reference's relocation type at runtime.

        Fires a ``referenceRetyped`` event on the hosting Core so
        monitors (and the graphical viewer) observe the change.
        """
        if not isinstance(relocator, Relocator):
            raise ConfigurationError(
                f"expected a Relocator, got {type(relocator).__name__}"
            )
        old, self._relocator = self._relocator, relocator
        core = self._stub._fargo_core
        if core is not None:
            if core.sanitizer is not None:
                core.sanitizer.record(
                    "retype",
                    f"ref:{self.get_target_id()}",
                    core=core,
                    detail=relocator.type_name,
                )
            core.events.publish(
                "referenceRetyped",
                target=str(self.get_target_id()),
                old_type=old.type_name,
                new_type=relocator.type_name,
            )

    @property
    def type_name(self) -> str:
        return self._relocator.type_name

    # -- target reflection --------------------------------------------------------

    def get_target_id(self) -> CompletId:
        """Global identity of the referenced complet."""
        return self._stub._fargo_tracker.target_id

    def get_target_type(self) -> str:
        """``module:qualname`` of the target's anchor class."""
        return self._stub._fargo_tracker.anchor_ref

    def get_target_location(self) -> str:
        """Name of the Core currently hosting the target.

        Resolving may walk the tracker chain over the network; as a side
        effect the local tracker is shortened to point at the answer.
        """
        core = self._stub._fargo_core
        if core is None:
            raise ConfigurationError("stub is not wired to a Core")
        return core.references.locate(self._stub._fargo_tracker)

    @property
    def is_local(self) -> bool:
        """True when the target complet is on the same Core as this reference."""
        return self._stub._fargo_tracker.is_local

    # -- accounting (fed by the invocation unit) -----------------------------------

    def record_invocation(self, nbytes: int) -> None:
        self.invocation_count += 1
        self.bytes_transferred += nbytes

    def __repr__(self) -> str:
        return (
            f"<MetaRef {self.type_name} -> {self.get_target_id()} "
            f"({self.invocation_count} invocations)>"
        )
