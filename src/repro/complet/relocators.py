"""Relocators: reified relocation semantics of complet references.

Each complet reference carries a Relocator object (reachable through the
reference's meta reference) that decides how the reference behaves when
its *source* complet moves:

- :class:`Link` — the default: keep tracking the target wherever it is.
- :class:`Pull` — the target moves along with the source.
- :class:`Duplicate` — a *copy* of the target moves along; the original
  stays put.
- :class:`Stamp` — reconnect at the destination to a local complet of an
  equivalent type (the paper's printer example).

New reference types are added by subclassing :class:`Relocator`
(possibly one of the built-ins) and overriding the two protocol hooks;
the movement protocol consults the hooks for every outgoing reference it
meets while traversing the moving complet's closure, which is exactly
the extension mechanism of §3.3.

Relocators must be picklable: they travel inside wire tokens so the
reference keeps its semantics after materialization at the destination.

Failure semantics: relocator hooks run during the *planning and
marshaling* phases of a move, before anything leaves the sending Core.
An exception raised from a hook — or a send failure afterwards — aborts
the move before commit: every planned mover (pulls and the root alike)
stays hosted where it was, duplicates registered during planning are
discarded unmaterialized, and the movement unit runs the anchors'
``abort_departure`` callbacks.  Hooks therefore never need their own
compensation logic for the in-group complets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.complet.stub import Stub


class GroupPlanner(Protocol):
    """What a relocator may ask of the movement planner (phase one).

    Implemented by :class:`repro.complet.marshal.MovementPlan`.
    """

    def pull(self, stub: "Stub") -> None:
        """Request that the stub's target complet move in the same stream."""

    def duplicate(self, stub: "Stub") -> None:
        """Request that a copy of the stub's target travel in the stream."""


class TokenContext(Protocol):
    """What a relocator may ask of the marshaler (phase two).

    Implemented by :class:`repro.complet.marshal.MovementMarshaler`.
    """

    def reference_token(self, stub: "Stub", relocator: "Relocator") -> object:
        """Token for a target that stays put (or travels, if in-group)."""

    def clone_token(self, stub: "Stub", relocator: "Relocator") -> object:
        """Token for the copy registered for this stub during planning."""

    def stamp_token(self, stub: "Stub", relocator: "Relocator") -> object:
        """Token requesting by-type reconnection at the destination."""


class Relocator:
    """Base class of all reference relocation semantics.

    The default behaviour is exactly :class:`Link`: subclasses override
    :meth:`plan` to influence which complets join the movement group and
    :meth:`make_token` to choose the wire token for the reference.
    """

    #: Display name used by the meta reference, the viewer and scripts.
    type_name = "relocator"

    def plan(self, stub: "Stub", planner: GroupPlanner) -> None:
        """Phase one: extend the movement group for this outgoing reference."""

    def make_token(self, stub: "Stub", ctx: TokenContext) -> object:
        """Phase two: produce the wire token replacing this reference."""
        return ctx.reference_token(stub, self)

    def degraded_for_parameter(self) -> "Relocator":
        """Relocator assigned when this reference is passed as a parameter.

        §3.1: a complet reference passed to another complet is conceptually
        part of the *receiving* complet from then on, so its type is
        degraded to the default ``link``.
        """
        return Link()

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and vars(self) == vars(other)

    def __hash__(self) -> int:
        return hash(type(self))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Link(Relocator):
    """Default semantics: a movement-tracking remote reference."""

    type_name = "link"


class Pull(Relocator):
    """The target complet moves along whenever the source complet moves."""

    type_name = "pull"

    def plan(self, stub: "Stub", planner: GroupPlanner) -> None:
        planner.pull(stub)


class Duplicate(Relocator):
    """A copy of the target complet moves along; the original stays."""

    type_name = "duplicate"

    def plan(self, stub: "Stub", planner: GroupPlanner) -> None:
        planner.duplicate(stub)

    def make_token(self, stub: "Stub", ctx: TokenContext) -> object:
        return ctx.clone_token(stub, self)


class Stamp(Relocator):
    """Reconnect by type at the destination (e.g. the local printer).

    ``fallback`` controls what happens when the destination hosts no
    complet of the stamped type: ``"error"`` (the default) raises
    :class:`~repro.errors.StampResolutionError` and aborts the move;
    ``"link"`` keeps a plain link to the original target instead — an
    extension beyond the paper, useful for devices that exist only at
    some sites.
    """

    type_name = "stamp"

    _FALLBACKS = ("error", "link")

    def __init__(self, fallback: str = "error") -> None:
        if fallback not in self._FALLBACKS:
            raise ConfigurationError(
                f"stamp fallback must be one of {self._FALLBACKS}, got {fallback!r}"
            )
        self.fallback = fallback

    def make_token(self, stub: "Stub", ctx: TokenContext) -> object:
        return ctx.stamp_token(stub, self)

    def __repr__(self) -> str:
        return f"Stamp(fallback={self.fallback!r})"


#: Registry used by the scripting language and the shell to retype
#: references by name (``retype $ref to pull``).
BUILTIN_RELOCATORS: dict[str, type[Relocator]] = {
    cls.type_name: cls for cls in (Link, Pull, Duplicate, Stamp)
}


def relocator_from_name(name: str) -> Relocator:
    """Instantiate a built-in relocator from its script-facing name."""
    try:
        return BUILTIN_RELOCATORS[name.lower()]()
    except KeyError:
        raise ConfigurationError(
            f"unknown reference type {name!r}; expected one of "
            f"{sorted(BUILTIN_RELOCATORS)}"
        ) from None
