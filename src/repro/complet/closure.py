"""Complet closure computation.

The closure of a complet is the directed graph of objects reachable from
its anchor, *stopping at stubs* (references to other complets).  The
scanner here discovers that graph the same way the movement protocol
will later serialize it — by driving a pickler with a diverting hook —
so what the scanner reports is exactly what would move.

The scanner also enforces the complet boundary: reaching another
complet's anchor directly (not through a stub) means two complets share
state and would be silently torn apart by a move, so it raises
:class:`~repro.errors.CompletBoundaryError` instead.
"""

from __future__ import annotations

import io
import pickle
from dataclasses import dataclass, field

from repro.complet.anchor import Anchor
from repro.complet.stub import Stub
from repro.errors import CompletBoundaryError, SerializationError


@dataclass(slots=True)
class ClosureInfo:
    """Result of scanning one complet's closure."""

    #: The anchor the scan started from.
    anchor: Anchor
    #: Serialized size of the closure in bytes (outgoing refs excluded).
    size_bytes: int = 0
    #: Approximate number of distinct objects in the closure.
    object_count: int = 0
    #: Outgoing complet references found at the boundary, in discovery
    #: order, de-duplicated by stub identity.
    outgoing: list[Stub] = field(default_factory=list)


class _ClosureScanner(pickle.Pickler):
    """Pickler that records boundary crossings instead of serializing them."""

    def __init__(self, buffer: io.BytesIO, root: Anchor) -> None:
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self._root = root
        self.outgoing: list[Stub] = []
        self._seen_stub_ids: set[int] = set()

    def persistent_id(self, obj: object) -> object | None:
        if obj is self._root:
            return None
        if isinstance(obj, Stub):
            if id(obj) not in self._seen_stub_ids:
                self._seen_stub_ids.add(id(obj))
                self.outgoing.append(obj)
            return ("closure-stub", len(self._seen_stub_ids))
        if isinstance(obj, Anchor):
            raise CompletBoundaryError(
                f"closure of {self._root!r} reaches the anchor of another complet "
                f"({obj!r}) without going through a stub; inter-complet references "
                "must be complet references"
            )
        return None


def compute_closure(anchor: Anchor) -> ClosureInfo:
    """Scan ``anchor``'s complet closure and return what was found.

    Raises :class:`CompletBoundaryError` for boundary violations and
    :class:`SerializationError` when the closure holds an object the
    wire format cannot carry (open files, sockets, threads, ...).
    """
    buffer = io.BytesIO()
    scanner = _ClosureScanner(buffer, anchor)
    try:
        scanner.dump(anchor)
    except CompletBoundaryError:
        raise
    except Exception as exc:  # noqa: BLE001 - pickle raises many types
        raise SerializationError(
            f"closure of {anchor!r} cannot be marshaled: {exc}"
        ) from exc
    info = ClosureInfo(anchor=anchor)
    info.size_bytes = buffer.tell()
    # The pickle memo holds every memoized object the traversal visited;
    # it slightly undercounts (small immutables are not memoized) but is
    # a stable, cheap proxy for closure population.
    info.object_count = len(scanner.memo.copy())
    info.outgoing = scanner.outgoing
    return info
