"""The bench runner: execute areas, persist baselines, check regressions.

Baselines live at the repository root as ``BENCH_<area>.json``::

    {
      "area": "marshal",
      "schema": 1,
      "targeted_metric": "serializer_bytes_out",
      "entries": [
        {"label": "pre-fix",  "metrics": {...}},
        {"label": "post-fix", "metrics": {...}}
      ]
    }

Entries are ordered oldest-first; the *last* entry is the committed
baseline that ``--check`` compares a fresh run against.  Every metric is
virtual-clock-deterministic except ``wall_seconds``, which is recorded
for context and never compared.  A metric more than
:data:`REGRESSION_TOLERANCE` worse than the baseline fails the check.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass
from pathlib import Path

from repro.sim.clock import forbid_real_clocks

from .scenarios import SCENARIOS

SCHEMA_VERSION = 1

#: Fractional worsening tolerated before ``--check`` fails (the policy
#: from docs/BENCHMARKS.md; deterministic runs normally diff by 0).
REGRESSION_TOLERANCE = 0.15

#: Metrics recorded for context only, never compared (wall-derived).
#: The ``_wall_seconds`` suffix marks further wall-derived metrics from
#: real-clock areas (e.g. the supervision area's restart MTTR).
UNCOMPARED_METRICS = frozenset({"wall_seconds", "sanitizer_overhead_pct"})
UNCOMPARED_SUFFIX = "_wall_seconds"


def is_uncompared(name: str) -> bool:
    return name in UNCOMPARED_METRICS or name.endswith(UNCOMPARED_SUFFIX)

#: Metric names where a larger value is an improvement.
_HIGHER_BETTER_SUFFIXES = ("_per_vsec",)


def metric_direction(name: str) -> str:
    """``"higher"`` if a bigger value is better for ``name``, else ``"lower"``."""
    if name.endswith(_HIGHER_BETTER_SUFFIXES):
        return "higher"
    return "lower"


def run_area(area: str) -> dict:
    """Execute one scenario under the real-clock ban; return its metrics.

    ``real_clock`` areas (real OS processes, e.g. supervision) are the
    exception: they run without the ban, and their timing metrics use
    the ``_wall_seconds`` suffix so they are never compared.
    """
    scenario = SCENARIOS[area]
    started = time.perf_counter()
    if scenario.real_clock:
        metrics = scenario.fn()
    else:
        with forbid_real_clocks():
            metrics = scenario.fn()
    metrics["wall_seconds"] = round(time.perf_counter() - started, 4)
    return metrics


def baseline_path(root: Path, area: str) -> Path:
    return root / f"BENCH_{area}.json"


def load_baseline(root: Path, area: str) -> dict | None:
    path = baseline_path(root, area)
    if not path.exists():
        return None
    return json.loads(path.read_text())


def record_entry(root: Path, area: str, label: str, metrics: dict) -> dict:
    """Append (or replace, by label) an entry in the area's BENCH file."""
    baseline = load_baseline(root, area)
    if baseline is None:
        baseline = {
            "area": area,
            "schema": SCHEMA_VERSION,
            "targeted_metric": SCENARIOS[area].targeted_metric,
            "entries": [],
        }
    entries = [entry for entry in baseline["entries"] if entry["label"] != label]
    entries.append({"label": label, "metrics": metrics})
    baseline["entries"] = entries
    baseline_path(root, area).write_text(json.dumps(baseline, indent=2) + "\n")
    return baseline


@dataclass
class MetricDelta:
    """One compared metric of one area."""

    area: str
    metric: str
    baseline: float
    current: float
    #: Fractional change, sign-normalised so positive means *worse*.
    worsening: float
    regressed: bool

    def to_json(self) -> dict:
        return {
            "area": self.area,
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "worsening": round(self.worsening, 6),
            "regressed": self.regressed,
        }


def compare_metrics(area: str, baseline: dict, current: dict) -> list[MetricDelta]:
    """Diff a fresh run against a committed entry, metric by metric.

    Metrics present on only one side are skipped (adding a metric must
    not break an older baseline); ``wall_seconds`` is never compared.
    """
    deltas = []
    for name, base_value in baseline.items():
        if is_uncompared(name) or name not in current:
            continue
        current_value = float(current[name])
        base = float(base_value)
        if base == 0.0:
            worsening = 0.0 if current_value == 0.0 else float("inf")
            if metric_direction(name) == "higher":
                worsening = 0.0  # can only improve from zero
        else:
            change = (current_value - base) / abs(base)
            worsening = -change if metric_direction(name) == "higher" else change
        deltas.append(
            MetricDelta(
                area=area,
                metric=name,
                baseline=base,
                current=current_value,
                worsening=worsening,
                regressed=worsening > REGRESSION_TOLERANCE,
            )
        )
    return deltas


def check_area(root: Path, area: str) -> tuple[list[MetricDelta], str | None]:
    """Run ``area`` fresh and compare it against its committed baseline.

    Returns ``(deltas, error)`` where ``error`` describes a missing or
    unusable baseline (itself a check failure).
    """
    baseline = load_baseline(root, area)
    if baseline is None:
        return [], f"no committed baseline {baseline_path(root, area).name}"
    if not baseline.get("entries"):
        return [], f"baseline {baseline_path(root, area).name} has no entries"
    current = run_area(area)
    last = baseline["entries"][-1]
    return compare_metrics(area, last["metrics"], current), None


def _parse_areas(spec: str | None) -> list[str]:
    if spec is None:
        return list(SCENARIOS)
    areas = [area.strip() for area in spec.split(",") if area.strip()]
    unknown = [area for area in areas if area not in SCENARIOS]
    if unknown:
        raise SystemExit(
            f"unknown bench area(s): {', '.join(unknown)}; "
            f"known: {', '.join(SCENARIOS)}"
        )
    return areas


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Deterministic bench runner over the virtual clock.",
    )
    parser.add_argument(
        "--areas",
        help="comma-separated areas (default: all)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare a fresh run against the committed BENCH_*.json baselines "
        f"and fail on >{REGRESSION_TOLERANCE:.0%} regression",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="write the run into BENCH_<area>.json under --label",
    )
    parser.add_argument(
        "--label",
        default="baseline",
        help="entry label for --update (default: baseline)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path.cwd(),
        help="directory holding the BENCH_*.json files (default: cwd)",
    )
    parser.add_argument(
        "--deltas-out",
        type=Path,
        help="with --check: write the per-metric deltas to this JSON file",
    )
    parser.add_argument(
        "--list", action="store_true", help="list known areas and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, scenario in SCENARIOS.items():
            target = (
                f" [targets {scenario.targeted_metric}]"
                if scenario.targeted_metric
                else ""
            )
            print(f"{name:16s} {scenario.description}{target}")
        return 0

    areas = _parse_areas(args.areas)

    if args.check:
        failed = False
        all_deltas: list[MetricDelta] = []
        for area in areas:
            deltas, error = check_area(args.root, area)
            if error is not None:
                print(f"FAIL {area}: {error}")
                failed = True
                continue
            regressions = [delta for delta in deltas if delta.regressed]
            all_deltas.extend(deltas)
            if regressions:
                failed = True
                print(f"FAIL {area}:")
                for delta in regressions:
                    print(
                        f"  {delta.metric}: {delta.baseline} -> {delta.current} "
                        f"({delta.worsening:+.1%} worse)"
                    )
            else:
                print(f"ok   {area} ({len(deltas)} metrics within tolerance)")
        if args.deltas_out is not None:
            args.deltas_out.write_text(
                json.dumps([delta.to_json() for delta in all_deltas], indent=2)
                + "\n"
            )
        return 1 if failed else 0

    for area in areas:
        metrics = run_area(area)
        if args.update:
            record_entry(args.root, area, args.label, metrics)
            print(f"{area}: recorded entry {args.label!r}")
        else:
            print(f"{area}:")
        for name in sorted(metrics):
            print(f"  {name} = {metrics[name]}")
    return 0
