"""Deterministic bench scenarios, one per ``benchmarks/bench_*.py`` area.

Every scenario drives a freshly built cluster entirely on the virtual
clock and returns a flat ``{metric: number}`` dict.  All quantities are
simulation-derived (virtual seconds, network bytes/messages, serializer
and fan-out counters), so two runs of the same code produce the same
numbers on any machine — the property ``python -m repro.bench --check``
relies on.  Wall-clock time is measured by the runner, reported for
context, and never compared.

The scenarios deliberately mirror the shapes of the pytest-benchmark
files (chains built with ``move_via_host``, pull groups hung off an
anchor attribute, watch-driven monitoring) so a regression caught here
points straight at the corresponding ``benchmarks/bench_<area>.py``.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.core import events as core_events
from repro.monitor import profiler as monitor_profiler
from repro.net import serializer


@dataclass(frozen=True)
class Scenario:
    """One runnable bench area."""

    name: str
    fn: Callable[[], dict]
    description: str
    #: The metric this area's hot-path fix targets (compared in the
    #: BENCH file's pre-fix/post-fix entries); None for coverage areas.
    targeted_metric: str | None = None
    #: Areas that drive real OS processes run outside the real-clock
    #: ban; their timing metrics must use the ``_wall_seconds`` suffix
    #: so the runner never compares them across machines.
    real_clock: bool = False


def _reset_counters(cluster: Cluster | None = None) -> None:
    serializer.STATS.reset()
    core_events.DISPATCH_STATS.reset()
    monitor_profiler.LISTENER_STATS.reset()
    if cluster is not None:
        cluster.reset_stats()


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


def _collect(
    cluster: Cluster | None,
    *,
    ops: int,
    virtual_seconds: float,
    latencies: list[float] | None = None,
) -> dict:
    metrics: dict = {
        "ops": ops,
        "virtual_seconds": round(virtual_seconds, 9),
        "serializer_dumps": serializer.STATS.dumps_calls,
        "serializer_bytes_out": serializer.STATS.bytes_out,
        "serializer_buffers": serializer.STATS.buffers_allocated,
        "event_snapshots_built": core_events.DISPATCH_STATS.snapshots_built,
        "sampler_snapshots_built": monitor_profiler.LISTENER_STATS.snapshots_built,
    }
    if cluster is not None:
        metrics["net_bytes"] = cluster.stats.bytes
        metrics["net_messages"] = cluster.stats.messages
        metrics["net_seconds"] = round(cluster.stats.seconds, 9)
    if virtual_seconds > 0:
        metrics["ops_per_vsec"] = round(ops / virtual_seconds, 6)
    if latencies:
        metrics["latency_p50_vs"] = round(_percentile(latencies, 0.50), 9)
        metrics["latency_p99_vs"] = round(_percentile(latencies, 0.99), 9)
    return metrics


# -- the four fix-targeted areas -------------------------------------------------------


def marshal() -> dict:
    """Repeated checkpoints of unchanged complets (the memoization case)."""
    from repro.core.persistence import snapshot

    cluster = Cluster(["a", "b"])
    from repro.cluster.workload import DataSource

    sources = [DataSource(2_000, _core=cluster["a"]) for _ in range(8)]
    _reset_counters(cluster)
    t0 = cluster.now
    ops = 0
    for _ in range(25):
        for source in sources:
            snapshot(cluster["a"], source)
            ops += 1
        cluster.advance(0.5)
    return _collect(cluster, ops=ops, virtual_seconds=cluster.now - t0)


def tracker_chains() -> dict:
    """A bulk payload invoked through a 5-hop tracker chain."""
    from repro.cluster.workload import Echo

    cluster = Cluster(["n0", "n1", "n2", "n3", "n4", "n5"])
    echo = Echo("tag", _core=cluster["n0"])
    for dest in ("n1", "n2", "n3", "n4", "n5"):
        cluster.move_via_host(echo, dest)
    payload = "x" * 8_192
    _reset_counters(cluster)
    t0 = cluster.now
    latencies = []
    for _ in range(4):
        start = cluster.now
        echo.echo(payload)
        latencies.append(cluster.now - start)
    return _collect(
        cluster, ops=4, virtual_seconds=cluster.now - t0, latencies=latencies
    )


def invocation() -> dict:
    """Small remote calls in a tight loop (framing overhead dominates)."""
    from repro.cluster.workload import Counter

    cluster = Cluster(["a", "b"])
    counter = Counter(0, _core=cluster["a"])
    cluster.move(counter, "b")
    _reset_counters(cluster)
    t0 = cluster.now
    latencies = []
    for _ in range(200):
        start = cluster.now
        counter.increment()
        latencies.append(cluster.now - start)
    metrics = _collect(
        cluster, ops=200, virtual_seconds=cluster.now - t0, latencies=latencies
    )

    # Bulk-argument segment: a 256 KiB payload echoed through a remote
    # call, inline vs offloaded to the object store.
    from repro.cluster.workload import Echo

    bulk = {}
    payload = "y" * 262_144
    for label, kwargs in (("bulk_eager", {}), ("bulk_store", {"store": "memory"})):
        bulk_cluster = Cluster(["a", "b"], **kwargs)
        echo = Echo("bulk", _core=bulk_cluster["a"])
        bulk_cluster.move(echo, "b")
        _reset_counters(bulk_cluster)
        assert echo.echo(payload) == payload
        bulk[f"{label}_net_bytes"] = bulk_cluster.stats.bytes
        bulk_cluster.close()
    bulk["bulk_store_pct_of_eager"] = round(
        100.0 * bulk["bulk_store_net_bytes"] / bulk["bulk_eager_net_bytes"], 6
    )
    metrics.update(bulk)
    return metrics


def monitoring() -> dict:
    """Event fan-out under load plus watch-driven sampling."""
    from repro.cluster.workload import Echo

    cluster = Cluster(["a", "b"])
    core = cluster["a"]
    seen: list = []
    for _ in range(2):
        core.events.subscribe("*", seen.append)
    for _ in range(3):
        core.events.subscribe("tick", seen.append)
    listener = Echo("listener", _core=cluster["a"])
    core.events.subscribe_complet("tick", listener, "echo")
    core.monitor.watch("completLoad", ">", 0.0, interval=0.5, repeat=True)
    core.monitor.watch("trackerLoad", ">=", 0.0, interval=0.5, repeat=True)
    _reset_counters(cluster)
    t0 = cluster.now
    for sequence in range(300):
        core.events.publish("tick", seq=sequence)
        if sequence % 25 == 24:
            cluster.advance(0.5)
    return _collect(cluster, ops=300, virtual_seconds=cluster.now - t0)


# -- coverage areas (one per remaining bench file) --------------------------------------


def movement() -> dict:
    """A pull group of nine complets ping-ponged between two Cores."""
    from repro.complet.relocators import Pull
    from repro.core.core import Core
    from repro.cluster.workload import DataSource, Echo

    cluster = Cluster(["a", "b"])
    head = Echo("head", _core=cluster["a"])
    anchor = cluster["a"].repository.get(head._fargo_target_id)
    anchor.members = [DataSource(512, _core=cluster["a"]) for _ in range(8)]
    for stub in anchor.members:
        Core.get_meta_ref(stub).set_relocator(Pull())
    _reset_counters(cluster)
    t0 = cluster.now
    for destination in ("b", "a", "b", "a", "b", "a"):
        cluster.move(head, destination)
    metrics = _collect(cluster, ops=6, virtual_seconds=cluster.now - t0)

    # Heavy-move segment: a 1 MiB complet shipped eagerly vs offloaded
    # through the object store (repro.store) — the payload crosses the
    # link as a content-keyed proxy instead of inline bytes.
    heavy = {}
    for label, kwargs in (("heavy_eager", {}), ("heavy_store", {"store": "memory"})):
        heavy_cluster = Cluster(["a", "b"], **kwargs)
        source = DataSource(1_048_576, _core=heavy_cluster["a"])
        _reset_counters(heavy_cluster)
        heavy_cluster.move(source, "b")
        heavy[f"{label}_net_bytes"] = heavy_cluster.stats.bytes
        heavy[f"{label}_net_messages"] = heavy_cluster.stats.messages
        heavy_cluster.close()
    heavy["heavy_store_pct_of_eager"] = round(
        100.0 * heavy["heavy_store_net_bytes"] / heavy["heavy_eager_net_bytes"], 6
    )
    metrics.update(heavy)
    return metrics


def tracking_modes() -> dict:
    """Chain-following vs location-registry resolution, side by side."""
    from repro.cluster.workload import Counter

    results = {}
    for label, use_registry in (("chain", False), ("registry", True)):
        cluster = Cluster(
            ["a", "b", "c", "d"], use_location_registry=use_registry
        )
        counter = Counter(0, _core=cluster["a"])
        for dest in ("b", "c", "d"):
            cluster.move_via_host(counter, dest)
        _reset_counters(cluster)
        for _ in range(3):
            counter.increment()
        results[f"{label}_messages"] = cluster.stats.messages
        results[f"{label}_bytes"] = cluster.stats.bytes
    results["ops"] = 6
    return results


def recovery() -> dict:
    """Crash-to-verdict detection latency on the virtual clock."""
    from repro.cluster.failures import FailureInjector
    from repro.core.events import CORE_FAILED
    from repro.recovery import DetectorConfig

    cluster = Cluster(["a", "b", "c"])
    cluster.enable_recovery(
        detector=DetectorConfig(interval=0.5, suspect_after=0.75, fail_after=1.5),
        auto_recover=False,
    )
    verdicts: list[float] = []
    cluster["b"].events.subscribe(
        CORE_FAILED, lambda event: verdicts.append(cluster.now)
    )
    _reset_counters(cluster)
    t0 = cluster.now
    crash_at = 2.0
    FailureInjector(cluster).crash_core_at(crash_at, "a")
    cluster.advance(crash_at + 1.5 + 1.1)
    metrics = _collect(cluster, ops=1, virtual_seconds=cluster.now - t0)
    metrics["detection_latency_vs"] = (
        round(verdicts[0] - crash_at, 9) if verdicts else -1.0
    )
    return metrics


def runtime_ops() -> dict:
    """Instantiation, naming, and checkpoint/restore round trips."""
    from repro.core.persistence import restore, snapshot
    from repro.cluster.workload import Echo, Echo_

    cluster = Cluster(["a", "b"])
    _reset_counters(cluster)
    t0 = cluster.now
    ops = 0
    for _ in range(20):
        cluster["a"].instantiate(Echo_, "tag")
        ops += 1
    for _ in range(10):
        cluster["a"].instantiate(Echo_, "tag", at="b")
        ops += 1
    service = Echo("svc", _core=cluster["a"])
    cluster["a"].bind("svc", service)
    for _ in range(10):
        cluster["b"].naming.lookup_at("a", "svc")
        ops += 1
    for _ in range(5):
        restore(cluster["a"], snapshot(cluster["a"], service))
        ops += 1
    return _collect(cluster, ops=ops, virtual_seconds=cluster.now - t0)


def tracing() -> dict:
    """Remote calls with full span recording enabled."""
    from repro.cluster.workload import Counter

    cluster = Cluster(["n1", "n2"], tracing=True)
    counter = Counter(0, _core=cluster["n1"])
    cluster.move(counter, "n2")
    _reset_counters(cluster)
    t0 = cluster.now
    for _ in range(50):
        counter.increment()
    return _collect(cluster, ops=50, virtual_seconds=cluster.now - t0)


def analysis() -> dict:
    """Static checking: scripts, an app module, interactions, and plans.

    ``sanitizer_overhead_pct`` is the wall-clock cost of running the
    move workload with ``Cluster(sanitize=True)`` relative to the same
    workload without it; wall-derived, so recorded for context only.
    """
    import inspect
    import time

    from repro.analysis import (
        MovePlan,
        PlannedMove,
        check_complet_source,
        check_interaction,
        check_plan,
        check_script,
    )
    from repro.cluster import workload
    from repro.cluster.workload import Counter

    script = "\n".join(
        f'on completArrived listenAt [core{i}] do move c{i} to "sink{i}" end'
        for i in range(100)
    )
    diagnostics = 0
    for _ in range(3):
        diagnostics += len(check_script(script))
    diagnostics += len(check_complet_source(inspect.getsource(workload)))

    # Interaction checking over a whole installed set (FG401-FG404).
    racy = "\n".join(
        f'on completArrived do move "c{i % 10}" to "sink{i % 7}" end'
        for i in range(40)
    )
    interaction_diagnostics = len(
        check_interaction([(script, "<a>"), (racy, "<b>")])
    )

    # Plan checking throughput: one 200-step batch, three passes.
    plan = MovePlan(
        [PlannedMove(f"c{i}", f"sink{i % 7}") for i in range(200)],
        name="<bench-plan>",
        locations={f"c{i}": "origin" for i in range(200)},
    )
    plan_ops = 0
    plan_diagnostics = 0
    for _ in range(3):
        plan_diagnostics += len(check_plan(plan))
        plan_ops += len(plan.moves)

    def _move_workload(sanitize: bool) -> float:
        cluster = Cluster(["a", "b"], sanitize=sanitize)
        counter = Counter(0, _core=cluster["a"])
        started = time.perf_counter()
        for _ in range(25):
            cluster.move(counter, "b")
            cluster.move(counter, "a")
        return time.perf_counter() - started

    plain = min(_move_workload(False) for _ in range(3))
    sanitized = min(_move_workload(True) for _ in range(3))
    overhead = 100.0 * (sanitized - plain) / plain if plain > 0 else 0.0

    _reset_counters()
    return {
        "ops": 4,
        "diagnostics_total": diagnostics,
        "interaction_diagnostics_total": interaction_diagnostics,
        "plan_ops": plan_ops,
        "plan_diagnostics_total": plan_diagnostics,
        "sanitizer_overhead_pct": round(overhead, 2),
    }


def adaptive_layout() -> dict:
    """Script-driven colocation under a two-phase affinity workload."""
    from repro.script.interpreter import ScriptEngine
    from repro.cluster.workload import Client, Server

    cluster = Cluster(["site1", "site2"], bandwidth=100_000.0, latency=0.02)
    server1 = Server(reply_size=4_096, _core=cluster["site1"], _at="site1")
    server2 = Server(reply_size=4_096, _core=cluster["site2"], _at="site2")
    client = Client(server1, request_size=2_048, _core=cluster["site1"], _at="site1")
    engine = ScriptEngine(cluster, home="site1")
    engine._globals.update({"c": client, "s1": server1, "s2": server2})
    engine.run(
        "on methodInvokeRate(2) from $c to $s1 do move $c to coreOf $s1 end\n"
        "on methodInvokeRate(2) from $c to $s2 do move $c to coreOf $s2 end"
    )
    _reset_counters(cluster)
    t0 = cluster.now
    ops = 0
    for _ in range(4):
        cluster.stub_at(cluster.locate(client), client).run(4)
        cluster.advance(1.0)
        ops += 4
    host = cluster.core(cluster.locate(client))
    host.repository.get(client._fargo_target_id).server = cluster.stub_at(
        host.name, server2
    )
    for _ in range(4):
        cluster.stub_at(cluster.locate(client), client).run(4)
        cluster.advance(1.0)
        ops += 4
    return _collect(cluster, ops=ops, virtual_seconds=cluster.now - t0)


def pipeline() -> dict:
    """Items through a three-stage pipeline spread over three Cores."""
    from repro.cluster.workload import Stage

    cluster = Cluster(["a", "b", "c"], bandwidth=250_000.0, latency=0.02)
    last = Stage(None, cost_bytes=256, _core=cluster["c"], _at="c")
    middle = Stage(last, cost_bytes=256, _core=cluster["b"], _at="b")
    first = Stage(middle, cost_bytes=256, _core=cluster["a"], _at="a")
    driver = cluster.stub_at("a", first)
    item = b"x" * 512
    _reset_counters(cluster)
    t0 = cluster.now
    latencies = []
    for _ in range(10):
        start = cluster.now
        driver.process(item)
        latencies.append(cluster.now - start)
    return _collect(
        cluster, ops=10, virtual_seconds=cluster.now - t0, latencies=latencies
    )


def script() -> dict:
    """Parse throughput plus rule firing on the event path."""
    from repro.script.interpreter import ScriptEngine
    from repro.script.parser import parse
    from repro.cluster.workload import Counter

    source = "\n".join(
        f'on completArrived listenAt [core{i}] do log "rule{i}" end'
        for i in range(50)
    )
    cluster = Cluster(["a", "b"])
    engine = ScriptEngine(cluster, home="a")
    engine.run('on completArrived listenAt [a] do log "seen" end')
    counter = Counter(0, _core=cluster["a"])
    _reset_counters(cluster)
    t0 = cluster.now
    ops = 0
    for _ in range(20):
        parse(source)
        ops += 1
    for _ in range(5):
        cluster.move(counter, "b")
        cluster.move(counter, "a")
        ops += 2
    return _collect(cluster, ops=ops, virtual_seconds=cluster.now - t0)


def transport() -> dict:
    """SimTransport round-trips vs the TCP codec's per-message overhead.

    The first half drives envelopes through the simulated transport (the
    default backend); the second encodes the very same envelopes with
    the length-prefixed TCP framing and decodes them back, so the area
    pins both the simulated per-message accounting and the wire codec's
    byte overhead.  Everything is counted, nothing timed: deterministic
    on any machine.
    """
    from repro.net import Envelope, MessageKind, SimTransport
    from repro.net import framing
    from repro.sim.clock import VirtualClock
    from repro.sim.scheduler import Scheduler

    scheduler = Scheduler(VirtualClock())
    net = SimTransport(
        scheduler, default_bandwidth=1_000_000.0, default_latency=0.01
    )
    net.register("a", lambda env: b"\x00" + env.payload)
    net.register("b", lambda env: b"\x00")
    payloads = [b"p" * (64 + 16 * i) for i in range(50)]
    _reset_counters()
    t0 = scheduler.clock.now()
    for payload in payloads:
        net.send(
            Envelope(src="b", dst="a", kind=MessageKind.INVOKE, payload=payload)
        )
    metrics = {
        "ops": len(payloads),
        "virtual_seconds": round(scheduler.clock.now() - t0, 9),
        "sim_bytes": net.stats.bytes,
        "sim_messages": net.stats.messages,
    }

    decoder = framing.FrameDecoder()
    frame_bytes = 0
    payload_bytes = 0
    frames_decoded = 0
    for request_id, payload in enumerate(payloads, start=1):
        envelope = Envelope(
            src="b", dst="a", kind=MessageKind.INVOKE, payload=payload
        )
        encoded = framing.encode_request(envelope, request_id)
        encoded += framing.encode_reply(request_id, b"\x00" + payload)
        frame_bytes += len(encoded)
        payload_bytes += 2 * len(payload) + 1
        frames_decoded += len(decoder.feed(encoded))
    metrics["frame_bytes"] = frame_bytes
    metrics["frame_overhead_bytes"] = frame_bytes - payload_bytes
    metrics["frame_overhead_per_msg"] = round(
        (frame_bytes - payload_bytes) / frames_decoded, 6
    )
    metrics["frames_decoded"] = frames_decoded
    metrics["decoder_residue_bytes"] = decoder.pending_bytes

    # Batching segment: the same one-way burst raw vs coalesced through
    # a BatchingTransport (repro.net.batching) — message count drops to
    # ceil(N / max_messages) while every envelope still arrives.
    from repro.net.batching import BatchingTransport, BatchPolicy

    oneway = [
        Envelope(src="b", dst="a", kind=MessageKind.EVENT_NOTIFY, payload=b"e" * 96)
        for _ in range(64)
    ]
    raw_net = SimTransport(
        Scheduler(VirtualClock()), default_bandwidth=1_000_000.0, default_latency=0.01
    )
    raw_net.register("a", lambda env: b"")
    raw_net.register("b", lambda env: b"")
    for envelope in oneway:
        raw_net.post(envelope)
    metrics["oneway_unbatched_messages"] = raw_net.stats.messages

    batch_scheduler = Scheduler(VirtualClock())
    batched = BatchingTransport(
        SimTransport(
            batch_scheduler, default_bandwidth=1_000_000.0, default_latency=0.01
        ),
        BatchPolicy(max_messages=16, max_delay=0.005),
    )
    delivered = []

    def _deliver(env) -> bytes:
        delivered.append(env)
        return b""

    batched.register("a", _deliver)
    batched.register("b", lambda env: b"")
    for envelope in oneway:
        batched.post(envelope)
    batch_scheduler.advance(0.1)  # drain deadline timers and deliveries
    assert len(delivered) == len(oneway)
    metrics["oneway_batched_messages"] = batched.stats.messages
    metrics["batch_mean_occupancy_inv"] = round(
        1.0 / max(batched.batch_stats.mean_occupancy, 1.0), 6
    )
    return metrics


def store() -> dict:
    """Large-payload offloading through the object store (repro.store).

    Three segments, all virtual-clock deterministic:

    - a 1 MiB complet moved eagerly vs offloaded (the headline
      transport-byte reduction; ``store_move_pct_of_eager`` is the
      targeted metric, lower is better);
    - the same unchanged complet ping-ponged with the store on —
      content keying makes every re-ship the same digest, so repeat
      destinations resolve from their local cache (copy-on-first-read);
    - a burst of large remote calls where arguments and replies cross
      as proxies.
    """
    from repro.cluster.workload import DataSource, Echo

    metrics: dict = {"ops": 0}

    # Segment 1: one heavy move, eager vs store.
    for label, kwargs in (("eager_move", {}), ("store_move", {"store": "memory"})):
        cluster = Cluster(["a", "b"], **kwargs)
        source = DataSource(1_048_576, _core=cluster["a"])
        _reset_counters(cluster)
        cluster.move(source, "b")
        metrics[f"{label}_net_bytes"] = cluster.stats.bytes
        metrics[f"{label}_net_messages"] = cluster.stats.messages
        metrics["ops"] += 1
        cluster.close()
    metrics["store_move_pct_of_eager"] = round(
        100.0 * metrics["store_move_net_bytes"] / metrics["eager_move_net_bytes"], 6
    )

    # Segment 2: copy-on-first-read.  Four holders each duplicate the
    # *same* unchanged 256 KiB original when moved; the serving Core's
    # clone cache re-marshals identical bytes, content keying maps them
    # to one store entry (dedup puts), and the destination resolves the
    # repeats from its local cache instead of re-reading the store.
    from repro.complet.relocators import Duplicate
    from repro.core.core import Core

    cluster = Cluster(["a", "b", "c"], store="memory")
    original = DataSource(262_144, _core=cluster["a"], _at="c")
    holders = []
    for index in range(4):
        holder = Echo(f"holder{index}", _core=cluster["a"])
        anchor = cluster["a"].repository.get(holder._fargo_target_id)
        anchor.payload_ref = cluster.stub_at("a", original)
        Core.get_meta_ref(anchor.payload_ref).set_relocator(Duplicate())
        holders.append(holder)
    _reset_counters(cluster)
    for holder in holders:
        cluster.move(holder, "b")
        metrics["ops"] += 1
    metrics["pingpong_net_bytes"] = cluster.stats.bytes
    snap = cluster.store_snapshot()
    clients = [view["client"] for view in snap["cores"].values() if view["enabled"]]
    metrics["pingpong_cache_hits"] = sum(c["cache_hits"] for c in clients)
    metrics["pingpong_store_hits"] = sum(c["store_hits"] for c in clients)
    metrics["pingpong_resolve_misses"] = sum(c["misses"] for c in clients)
    metrics["pingpong_bytes_saved"] = sum(c["bytes_saved"] for c in clients)
    metrics["pingpong_dedup_puts"] = snap["store"]["stats"]["dedup_puts"]
    cluster.close()

    # Segment 3: bulk remote calls, argument and reply both offloaded.
    cluster = Cluster(["a", "b"], store="memory")
    echo = Echo("bulk", _core=cluster["a"])
    cluster.move(echo, "b")
    payload = "z" * 131_072
    _reset_counters(cluster)
    t0 = cluster.now
    for _ in range(8):
        assert echo.echo(payload) == payload
        metrics["ops"] += 1
    metrics["bulk_invoke_net_bytes"] = cluster.stats.bytes
    metrics["bulk_invoke_net_messages"] = cluster.stats.messages
    metrics["virtual_seconds"] = round(cluster.now - t0, 9)
    store_backend = cluster.store_snapshot()["store"]["stats"]
    metrics["store_puts"] = store_backend["puts"]
    metrics["store_dedup_puts"] = store_backend["dedup_puts"]
    metrics["store_misses"] = store_backend["misses"]
    cluster.close()
    return metrics


def taskfarm() -> dict:
    """The adaptive task farm application, static placement."""
    from repro.apps.taskfarm import Farm

    cluster = Cluster(["hub", "edge1", "edge2"], bandwidth=500_000.0, latency=0.01)
    farm = Farm(cluster, "hub", ["edge1", "edge2"], batch=4)
    farm.submit(payload_size=4_096, count=12)
    _reset_counters(cluster)
    t0 = cluster.now
    makespan = farm.run_until_drained()
    metrics = _collect(cluster, ops=12, virtual_seconds=cluster.now - t0)
    metrics["makespan_vs"] = round(makespan, 9)
    return metrics


def supervision() -> dict:
    """SIGKILL-to-healed restart of a real child process (MTTR).

    The only real-clock area: it spawns OS processes, kills one, and
    times the supervisor's detect → respawn → restore → repair cycle.
    Timing metrics carry the ``_wall_seconds`` suffix (recorded for
    context, never compared across machines); the counts — restarts,
    restored identities, completed post-rebirth invocations — are
    deterministic and regression-checked.
    """
    import os
    import shutil
    import signal as signal_module
    import tempfile
    import time as real_time

    from repro.cluster import CoreProcesses, Supervisor
    from repro.cluster.workload import Counter as WorkCounter

    checkpoint_dir = tempfile.mkdtemp(prefix="repro-bench-supervision-")
    metrics: dict = {}
    try:
        with CoreProcesses(
            ["w1", "w2"], checkpoint_dir=checkpoint_dir, checkpoint_interval=0.1
        ) as procs:
            with Supervisor(procs, poll_interval=0.02) as supervisor:
                counter = WorkCounter(0, _core=procs.driver, _at="w1")
                for _ in range(5):
                    counter.increment()
                original_id = str(counter._fargo_target_id)
                from repro.recovery import FileCheckpointStore

                store = FileCheckpointStore(checkpoint_dir)
                deadline = real_time.monotonic() + 20.0
                while not store.hosted_at("w1") and real_time.monotonic() < deadline:
                    real_time.sleep(0.02)
                killed_at = real_time.monotonic()
                os.kill(procs.processes["w1"].pid, signal_module.SIGKILL)
                deadline = real_time.monotonic() + 30.0
                while real_time.monotonic() < deadline:
                    child = supervisor.state()["children"]["w1"]
                    if child["restarts"] >= 1 and child["status"] == "running":
                        break
                    real_time.sleep(0.02)
                healed_at = real_time.monotonic()
                child = supervisor.state()["children"]["w1"]
                post_value = counter.read()  # pre-kill stub, reborn host
                metrics["supervisor_restarts"] = child["restarts"]
                metrics["identity_preserved"] = int(
                    original_id in procs.driver.admin("w1", "complets")
                )
                metrics["post_rebirth_reads"] = int(post_value >= 0)
                metrics["kill_to_healed_wall_seconds"] = round(
                    healed_at - killed_at, 4
                )
                mttr = child["last_mttr"]
                metrics["mttr_wall_seconds"] = round(mttr, 4) if mttr else 0.0
    finally:
        shutil.rmtree(checkpoint_dir, ignore_errors=True)
    return metrics


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "marshal",
            marshal,
            "repeated checkpoints of unchanged complets",
            targeted_metric="serializer_bytes_out",
        ),
        Scenario(
            "tracker_chains",
            tracker_chains,
            "bulk payload invoked through a 5-hop tracker chain",
            targeted_metric="net_bytes",
        ),
        Scenario(
            "invocation",
            invocation,
            "small remote calls in a tight loop",
            targeted_metric="net_bytes",
        ),
        Scenario(
            "monitoring",
            monitoring,
            "event fan-out plus watch-driven sampling",
            targeted_metric="event_snapshots_built",
        ),
        Scenario("movement", movement, "pull-group ping-pong between two Cores"),
        Scenario(
            "tracking_modes",
            tracking_modes,
            "chain-following vs location-registry resolution",
        ),
        Scenario("recovery", recovery, "crash-to-verdict detection latency"),
        Scenario(
            "runtime_ops", runtime_ops, "instantiation, naming, checkpoint/restore"
        ),
        Scenario("tracing", tracing, "remote calls with span recording on"),
        Scenario("analysis", analysis, "static checks of scripts and complet source"),
        Scenario(
            "adaptive_layout",
            adaptive_layout,
            "script-driven colocation under shifting affinity",
        ),
        Scenario("pipeline", pipeline, "items through a spread three-stage pipeline"),
        Scenario("script", script, "parse throughput and rule firing"),
        Scenario(
            "transport",
            transport,
            "simulated transport accounting vs TCP framing overhead",
            targeted_metric="frame_overhead_per_msg",
        ),
        Scenario(
            "store",
            store,
            "large-payload offloading and content-keyed dedup",
            targeted_metric="store_move_pct_of_eager",
        ),
        Scenario("taskfarm", taskfarm, "the task-farm application end to end"),
        Scenario(
            "supervision",
            supervision,
            "SIGKILL-to-healed restart of a real child process (MTTR)",
            real_clock=True,
        ),
    )
}
