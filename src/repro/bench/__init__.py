"""Deterministic benchmark runner and regression gate (``repro.bench``).

Usage::

    python -m repro.bench --areas marshal,invocation        # run + print
    python -m repro.bench --update --label post-fix         # persist entries
    python -m repro.bench --check                           # regression gate

See docs/BENCHMARKS.md for the baseline format and regression policy.
"""

from .runner import (
    REGRESSION_TOLERANCE,
    MetricDelta,
    check_area,
    compare_metrics,
    load_baseline,
    main,
    metric_direction,
    record_entry,
    run_area,
)
from .scenarios import SCENARIOS, Scenario

__all__ = [
    "REGRESSION_TOLERANCE",
    "MetricDelta",
    "SCENARIOS",
    "Scenario",
    "check_area",
    "compare_metrics",
    "load_baseline",
    "main",
    "metric_direction",
    "record_entry",
    "run_area",
]
