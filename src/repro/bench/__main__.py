"""Entry point: ``python -m repro.bench``."""

from .runner import main

raise SystemExit(main())
