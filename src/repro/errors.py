"""Exception hierarchy for the FarGo reproduction.

Every error raised by this library derives from :class:`FarGoError`, so
applications can catch the whole family with one clause while still being
able to discriminate the precise failure.  The hierarchy mirrors the
subsystems of the runtime: the complet programming model, the Core, the
network substrate, monitoring, and the layout scripting language.
"""

from __future__ import annotations


class FarGoError(Exception):
    """Base class of every error raised by the FarGo runtime."""


class ConfigurationError(FarGoError):
    """A runtime component was configured with invalid parameters."""


# ---------------------------------------------------------------------------
# Complet programming model
# ---------------------------------------------------------------------------


class CompletError(FarGoError):
    """Base class for errors in the complet programming model."""


class NotAnAnchorError(CompletError):
    """An object that is not a complet anchor was used where one is required."""


class NotAStubError(CompletError):
    """An object that is not a complet stub was used where one is required."""


class StubGenerationError(CompletError):
    """The stub compiler could not generate a stub class for an anchor class."""


class CompletBoundaryError(CompletError):
    """A raw anchor object was reached by graph traversal without a stub.

    The FarGo model requires every inter-complet reference to go through a
    stub; a direct reference to another complet's anchor (or to any object
    in another complet's closure) violates the complet boundary and would
    silently break relocation.  The closure and marshaling code detect the
    situation and raise this error instead.
    """


class DanglingReferenceError(CompletError):
    """A complet reference points at a target that no longer exists."""


# ---------------------------------------------------------------------------
# Relocation / movement
# ---------------------------------------------------------------------------


class RelocationError(FarGoError):
    """Base class for errors raised while moving complets."""


class MovementDeniedError(RelocationError):
    """A movement request was rejected (e.g. the complet is anchored)."""


class StampResolutionError(RelocationError):
    """No complet of the required type exists at the destination Core.

    Raised when a ``stamp`` reference is unmarshaled at a Core that hosts
    no complet of (or assignable to) the stamped type.
    """


class ContinuationError(RelocationError):
    """A movement continuation method could not be resolved or invoked."""


# ---------------------------------------------------------------------------
# Core runtime
# ---------------------------------------------------------------------------


class CoreError(FarGoError):
    """Base class for errors concerning Core lifecycle and identity."""


class CoreNotFoundError(CoreError):
    """The named Core is not known to the cluster."""


class CoreDownError(CoreError):
    """The target Core has been shut down."""


class CoreUnreachableError(CoreError):
    """The target Core cannot be reached (link down or network partition)."""


class DeadlineExceededError(CoreError):
    """A cross-Core call did not complete within its timeout.

    Raised by :meth:`repro.net.rpc.RpcEndpoint.call` when the round trip
    took longer (in virtual time) than the deadline configured for the
    message kind.  The reply — if one eventually arrived — is discarded,
    exactly as a timed-out RMI call discards a late answer.  Note that
    the remote handler may still have executed: retrying a call after
    this error gives at-least-once semantics.  Movement commit traffic
    (``MOVE_COMPLET``) is sent deadline-exempt so this indeterminacy can
    never split a move between a committed arrival and an aborted
    departure.
    """


class DuplicateCoreError(CoreError):
    """A Core with the same name is already registered in the cluster."""


# ---------------------------------------------------------------------------
# Naming service
# ---------------------------------------------------------------------------


class NamingError(FarGoError):
    """Base class for naming-service errors."""


class NameNotFoundError(NamingError):
    """No complet is bound under the requested logical name."""


class NameAlreadyBoundError(NamingError):
    """The logical name is already bound to a complet."""


# ---------------------------------------------------------------------------
# Invocation
# ---------------------------------------------------------------------------


class InvocationError(FarGoError):
    """Base class for method-invocation errors."""


class RemoteInvocationError(InvocationError):
    """A remote invocation failed inside the target complet.

    The original exception (re-raised at the caller, by value) is carried
    in ``__cause__`` whenever it can itself be serialized.
    """


class NoSuchMethodError(InvocationError):
    """The invoked method does not exist on the target anchor."""


# ---------------------------------------------------------------------------
# Serialization / network substrate
# ---------------------------------------------------------------------------


class SerializationError(FarGoError):
    """An object graph could not be (de)serialized across a Core boundary."""


class TransportError(FarGoError):
    """Low-level failure in the network transport (simulated or real)."""


class TransportCapabilityError(TransportError):
    """A transport was asked for a knob it does not model.

    Raised by the default :class:`repro.net.transport.Transport` chaos
    hooks: e.g. bandwidth shaping is meaningful on the simulated network
    but not on a real TCP link, so ``TcpTransport.set_link(bandwidth=...)``
    raises this instead of silently doing nothing.  Callers that want to
    degrade gracefully check ``transport.supports(capability)`` first.
    """


# ---------------------------------------------------------------------------
# Object store
# ---------------------------------------------------------------------------


class StoreError(FarGoError):
    """Base class for object-store errors (see :mod:`repro.store`)."""


class StoreMissError(StoreError):
    """A store key could not be resolved to its payload bytes.

    Raised when a :class:`repro.store.StoreProxy` arrives at a Core whose
    store (or the proxy's own locator) no longer holds the entry — it was
    evicted, or the backing store is gone.  The movement and invocation
    layers surface this to the caller rather than silently shipping a
    stale payload.
    """


# ---------------------------------------------------------------------------
# Monitoring
# ---------------------------------------------------------------------------


class MonitoringError(FarGoError):
    """Base class for profiling and monitor-event errors."""


class UnknownServiceError(MonitoringError):
    """The requested profiling service is not registered at this Core."""


class ProfilingNotStartedError(MonitoringError):
    """``get`` was called for a continuous profile that was never started."""


# ---------------------------------------------------------------------------
# Scripting
# ---------------------------------------------------------------------------


class ScriptError(FarGoError):
    """Base class for layout-script errors."""


class ScriptSyntaxError(ScriptError):
    """The script source failed to lex or parse.

    Carries the 1-based ``line`` and ``column`` of the offending token so
    administrators can pinpoint the error in their script.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class ScriptRuntimeError(ScriptError):
    """A script rule failed while executing its action part."""


class UnknownActionError(ScriptRuntimeError):
    """A script invoked an action that is neither built in nor registered."""
