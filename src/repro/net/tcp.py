"""Real asyncio/TCP transport: Cores as separate OS processes.

One :class:`TcpTransport` is a *hub* for the Cores of one process —
usually exactly one.  Each registered node gets its own listener socket;
remote peers are named in an address book (:meth:`add_peer`).  The wire
format is the length-prefixed framing of :mod:`repro.net.framing`, with
the RPC payload bytes (struct-framed INVOKE, 1-byte status-prefix
replies) passed through untouched, so application-level encoding is
byte-identical with the simulated backend.

Threading model: a private asyncio event loop runs on a daemon thread
and only moves bytes; incoming frames are handed to a dispatcher thread
pool, where node handlers (and any nested synchronous calls they make
back across the network) execute.  The synchronous
:meth:`TcpTransport.send` blocks its calling thread on the reply, which
is exactly the RMI-style semantics the RPC layer expects.

Failure semantics mirror the simulated network's types: a refused or
lost connection raises :class:`~repro.errors.CoreUnreachableError`, a
node administratively marked down answers (or refuses) with
:class:`~repro.errors.CoreDownError`, and an expired round-trip budget
raises :class:`~repro.errors.DeadlineExceededError`.  Outgoing
connections reconnect per peer under a
:class:`~repro.net.retry.RetryPolicy`.  Chaos hooks support node
crash/revive, link cuts, injected latency, and partitions; bandwidth
shaping is simnet-only and raises
:class:`~repro.errors.TransportCapabilityError`.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING

from repro.errors import (
    ConfigurationError,
    CoreDownError,
    CoreError,
    CoreUnreachableError,
    DeadlineExceededError,
    DuplicateCoreError,
    TransportError,
)
from repro.net import framing
from repro.net.messages import Envelope
from repro.net.retry import RetryPolicy
from repro.net.transport import (
    CAP_LATENCY,
    CAP_LINK_STATE,
    CAP_NODE_DOWN,
    CAP_PARTITION,
    LinkStats,
    NetworkStats,
    NodeHandler,
    TraceLog,
    Transport,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.scheduler import Scheduler

logger = logging.getLogger(__name__)

#: Address of one node: (host, port).
Address = tuple[str, int]

#: Reconnect schedule applied per peer when a connection cannot be
#: established; real-time sleeps on the event loop.
DEFAULT_RECONNECT = RetryPolicy(max_attempts=4, base_delay=0.05, multiplier=2.0, max_delay=0.5)

_READ_CHUNK = 1 << 16


class _Connection:
    """One established outgoing connection, multiplexing requests.

    Lives entirely on the event loop thread: replies are matched to
    pending futures by request id, so many blocked senders share one
    socket per peer.
    """

    def __init__(
        self,
        peer: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        self.peer = peer
        self.reader = reader
        self.writer = writer
        self.loop = loop
        self.closed = False
        self.pending: dict[int, asyncio.Future] = {}
        self.reader_task = loop.create_task(self._read_loop())

    async def request(self, request_id: int, data: bytes) -> framing.Frame:
        future: asyncio.Future = self.loop.create_future()
        self.pending[request_id] = future
        try:
            self.writer.write(data)
            await self.writer.drain()
            return await future
        finally:
            self.pending.pop(request_id, None)

    async def post(self, data: bytes) -> None:
        self.writer.write(data)
        await self.writer.drain()

    async def _read_loop(self) -> None:
        decoder = framing.FrameDecoder()
        error: BaseException = ConnectionResetError(f"connection to {self.peer!r} lost")
        try:
            while True:
                chunk = await self.reader.read(_READ_CHUNK)
                if not chunk:
                    break
                for frame in decoder.feed(chunk):
                    future = self.pending.get(frame.request_id)
                    if future is not None and not future.done():
                        future.set_result(frame)
        except Exception as exc:  # noqa: BLE001 - socket teardown races
            error = exc
        finally:
            self.closed = True
            for future in list(self.pending.values()):
                if not future.done():
                    future.set_exception(error)
            self.writer.close()

    def close(self) -> None:
        self.closed = True
        self.reader_task.cancel()
        self.writer.close()


class TcpTransport(Transport):
    """Asyncio TCP hub implementing the :class:`Transport` protocol."""

    CAPABILITIES = frozenset({CAP_NODE_DOWN, CAP_LINK_STATE, CAP_LATENCY, CAP_PARTITION})

    def __init__(
        self,
        scheduler: "Scheduler | None" = None,
        *,
        host: str = "127.0.0.1",
        ports: dict[str, int] | None = None,
        reconnect: RetryPolicy = DEFAULT_RECONNECT,
        request_timeout: float = 30.0,
        connect_timeout: float = 10.0,
        trace_capacity: int = 256,
        max_dispatch_threads: int = 32,
    ) -> None:
        if scheduler is None:
            from repro.sim.clock import RealClock
            from repro.sim.scheduler import Scheduler

            scheduler = Scheduler(RealClock())
        if request_timeout <= 0.0 or connect_timeout <= 0.0:
            raise ConfigurationError("timeouts must be positive")
        self.scheduler = scheduler
        self.stats = NetworkStats()
        self.trace = TraceLog(trace_capacity)
        self._host = host
        self._ports = dict(ports or {})
        self._reconnect = reconnect
        self._request_timeout = request_timeout
        self._connect_timeout = connect_timeout
        self._handlers: dict[str, NodeHandler] = {}
        self._servers: dict[str, asyncio.AbstractServer] = {}
        self._peers: dict[str, Address] = {}
        self._down: set[str] = set()
        self._blocked: set[tuple[str, str]] = set()
        self._latency: dict[tuple[str, str], float] = {}
        self._partition_of: dict[str, int] = {}
        self._link_stats: dict[tuple[str, str], LinkStats] = {}
        self._stats_lock = threading.Lock()
        self._request_ids = itertools.count(1)
        self._msg_ids = itertools.count(1)
        self._connections: dict[str, _Connection] = {}
        self._closed = False
        self._executor = ThreadPoolExecutor(
            max_workers=max_dispatch_threads, thread_name_prefix="fargo-tcp-dispatch"
        )
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._loop.run_forever, name="fargo-tcp-loop", daemon=True
        )
        self._loop_thread.start()

    # -- event loop plumbing -------------------------------------------------

    def _run(self, coro, timeout: float | None):
        """Run ``coro`` on the loop thread; block for its result."""
        if self._closed:
            raise TransportError("transport is closed")
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout)

    # -- attachment ----------------------------------------------------------

    def register(self, name: str, handler: NodeHandler) -> None:
        """Attach a local node: starts its listener socket immediately.

        The port comes from the ``ports`` map given at construction
        (fixed ports for multi-process deployments) or is ephemeral.
        """
        if name in self._handlers:
            raise DuplicateCoreError(f"node {name!r} is already registered")
        port = self._ports.get(name, 0)
        server = self._run(
            self._start_server(port), timeout=self._connect_timeout
        )
        bound = server.sockets[0].getsockname()
        self._servers[name] = server
        self._handlers[name] = handler
        self._peers[name] = (self._host, bound[1])
        self._down.discard(name)

    async def _start_server(self, port: int) -> asyncio.AbstractServer:
        return await asyncio.start_server(self._serve_connection, self._host, port)

    def deregister(self, name: str) -> None:
        """Detach a local node: close its listener, refuse its traffic."""
        server = self._servers.pop(name, None)
        if server is not None:
            self._loop.call_soon_threadsafe(server.close)
        self._handlers.pop(name, None)
        self._down.add(name)

    def add_peer(self, name: str, address: Address) -> None:
        """Record (or update) the address of a remote node."""
        self._peers[name] = (address[0], int(address[1]))
        # A re-announced peer may have restarted: drop any stale connection.
        self._loop.call_soon_threadsafe(self._invalidate, name)

    def local_address(self, name: str) -> Address:
        """The (host, port) a registered local node is listening on."""
        if name not in self._servers:
            raise TransportError(f"node {name!r} is not served by this transport")
        return self._peers[name]

    def known_peers(self) -> dict[str, Address]:
        """Every known node address (local and remote)."""
        return dict(self._peers)

    # -- addressing / reachability -------------------------------------------

    def nodes(self) -> list[str]:
        return sorted(self._peers)

    def is_up(self, name: str) -> bool:
        return name in self._peers and name not in self._down

    def can_reach(self, src: str, dst: str) -> bool:
        return self._refusal(src, dst) is None

    def _refusal(self, src: str, dst: str) -> CoreError | None:
        """The typed error delivery from src to dst would hit, if any.

        Covers what this hub can know locally: administrative down marks,
        cut links, and partitions.  A remote crash this hub was never
        told about surfaces later, as a connection failure.
        """
        for name in (src, dst):
            if name not in self._peers:
                return CoreUnreachableError(f"node {name!r} is not on the network")
            if name in self._down:
                return CoreDownError(f"node {name!r} is down")
        if src == dst:
            return None
        if (src, dst) in self._blocked:
            return CoreUnreachableError(f"link {src!r} -> {dst!r} is down")
        if self._partition_of:
            if self._partition_of.get(src) != self._partition_of.get(dst):
                return CoreUnreachableError(
                    f"nodes {src!r} and {dst!r} are in different partitions"
                )
        return None

    def _check(self, src: str, dst: str) -> None:
        error = self._refusal(src, dst)
        if error is not None:
            raise error

    # -- accounting ----------------------------------------------------------

    def link_stats(self, src: str, dst: str) -> LinkStats:
        key = (src, dst)
        stats = self._link_stats.get(key)
        if stats is None:
            stats = self._link_stats.setdefault(key, LinkStats())
        return stats

    def transfer_time(self, src: str, dst: str, nbytes: int) -> float:
        """Injected latency only; real wire time is measured, not modelled."""
        if src == dst:
            return 0.0
        return self._latency.get((src, dst), 0.0)

    def _charge(self, src: str, dst: str, kind, nbytes: int, seconds: float) -> None:
        with self._stats_lock:
            self.stats.record(kind, nbytes, seconds)
            if src != dst:
                self.link_stats(src, dst).record(nbytes, seconds)

    # -- delivery: sending side ----------------------------------------------

    def send(self, envelope: Envelope, timeout: float | None = None) -> bytes:
        """Request/reply over the socket; blocks the calling thread."""
        self._check(envelope.src, envelope.dst)
        self._sleep_injected_latency(envelope.src, envelope.dst)
        envelope.msg_id = next(self._msg_ids)
        self.trace.append(envelope)
        request_id = next(self._request_ids)
        data = framing.encode_request(envelope, request_id)
        limit = self._effective_timeout(timeout)
        started = time.monotonic()
        try:
            frame = self._run(
                self._request(envelope.dst, request_id, data, limit), timeout=None
            )
        except asyncio.TimeoutError:
            raise DeadlineExceededError(
                f"{envelope.kind.value!r} call from {envelope.src!r} to "
                f"{envelope.dst!r} exceeded its {limit:.3f}s transport deadline"
            ) from None
        elapsed = time.monotonic() - started
        self._charge(envelope.src, envelope.dst, envelope.kind, len(envelope.payload), elapsed)
        if frame.type == framing.ERROR:
            raise self._remote_refusal(envelope.dst, frame)
        self._charge(envelope.dst, envelope.src, envelope.kind, len(frame.payload), 0.0)
        return frame.payload

    def post(self, envelope: Envelope) -> None:
        """Fire-and-forget: blocks only until the frame is on the wire."""
        self._check(envelope.src, envelope.dst)
        self._sleep_injected_latency(envelope.src, envelope.dst)
        envelope.msg_id = next(self._msg_ids)
        self.trace.append(envelope)
        request_id = next(self._request_ids)
        data = framing.encode_request(envelope, request_id, oneway=True)
        started = time.monotonic()
        self._run(self._post(envelope.dst, data), timeout=None)
        self._charge(
            envelope.src, envelope.dst, envelope.kind,
            len(envelope.payload), time.monotonic() - started,
        )

    def _effective_timeout(self, timeout: float | None) -> float:
        """The per-request wall-clock budget; the backstop bounds hangs."""
        if timeout is None or timeout == float("inf"):
            return self._request_timeout
        return timeout

    def _sleep_injected_latency(self, src: str, dst: str) -> None:
        delay = self._latency.get((src, dst), 0.0)
        if delay > 0.0:
            time.sleep(delay)

    @staticmethod
    def _remote_refusal(dst: str, frame: framing.Frame) -> BaseException:
        error = framing.decode_error(frame.payload)
        if isinstance(error, (CoreError, TransportError)):
            return error
        return TransportError(f"transport-level failure at {dst!r}: {error!r}")

    async def _request(
        self, dst: str, request_id: int, data: bytes, limit: float
    ) -> framing.Frame:
        return await asyncio.wait_for(
            self._request_once(dst, request_id, data), timeout=limit
        )

    async def _request_once(self, dst: str, request_id: int, data: bytes) -> framing.Frame:
        connection = await self._acquire(dst)
        try:
            return await connection.request(request_id, data)
        except (ConnectionError, OSError, asyncio.IncompleteReadError) as exc:
            self._invalidate(dst)
            raise CoreUnreachableError(
                f"connection to node {dst!r} failed mid-request: {exc!r}"
            ) from exc

    async def _post(self, dst: str, data: bytes) -> None:
        connection = await self._acquire(dst)
        try:
            await connection.post(data)
        except (ConnectionError, OSError) as exc:
            self._invalidate(dst)
            raise CoreUnreachableError(
                f"connection to node {dst!r} failed while posting: {exc!r}"
            ) from exc

    async def _acquire(self, dst: str) -> _Connection:
        """Cached connection to ``dst``, reconnecting under the RetryPolicy."""
        connection = self._connections.get(dst)
        if connection is not None and not connection.closed:
            return connection
        address = self._peers.get(dst)
        if address is None:
            raise CoreUnreachableError(f"node {dst!r} is not on the network")
        policy = self._reconnect
        attempt = 1
        while True:
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(address[0], address[1]),
                    timeout=self._connect_timeout,
                )
                connection = _Connection(dst, reader, writer, self._loop)
                self._connections[dst] = connection
                return connection
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                if attempt >= policy.max_attempts:
                    raise CoreUnreachableError(
                        f"cannot connect to node {dst!r} at "
                        f"{address[0]}:{address[1]} after {attempt} attempts: {exc!r}"
                    ) from exc
                await asyncio.sleep(policy.backoff(attempt))
                attempt += 1

    def _invalidate(self, dst: str) -> None:
        connection = self._connections.pop(dst, None)
        if connection is not None:
            connection.close()

    def probe(self, dst: str, timeout: float | None = None) -> bool:
        """Try to establish (or reuse) a connection to ``dst``.

        Readiness check for process bring-up: True once the peer's
        listener accepts.  Never raises on ordinary connection failure.
        """
        try:
            self._run(self._acquire(dst), timeout=timeout or self._connect_timeout)
        except (CoreError, TransportError, TimeoutError, OSError):
            return False
        return True

    # -- delivery: receiving side --------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = framing.FrameDecoder()
        try:
            while True:
                chunk = await reader.read(_READ_CHUNK)
                if not chunk:
                    break
                try:
                    frames = decoder.feed(chunk)
                except framing.FramingError:
                    logger.warning("undecodable stream from peer; dropping connection",
                                   exc_info=True)
                    break
                for frame in frames:
                    self._executor.submit(self._dispatch_frame, frame, writer)
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - teardown race
                pass

    def _dispatch_frame(self, frame: framing.Frame, writer: asyncio.StreamWriter) -> None:
        """Run one incoming frame through its node handler (executor thread)."""
        oneway = frame.type == framing.ONEWAY

        def respond(data: bytes) -> None:
            if not oneway:
                self._loop.call_soon_threadsafe(self._write_reply, writer, data)

        error = self._refusal(frame.src, frame.dst)
        if error is None and frame.dst not in self._handlers:
            error = CoreUnreachableError(
                f"node {frame.dst!r} is not served by this transport"
            )
        if error is not None:
            respond(framing.encode_error(frame.request_id, error))
            return
        envelope = frame.to_envelope()
        envelope.msg_id = next(self._msg_ids)
        self.trace.append(envelope)
        handler = self._handlers[frame.dst]
        try:
            reply = handler(envelope)
        except BaseException as exc:  # noqa: BLE001 - crossing by value
            # Node handlers (RpcEndpoint._dispatch) serialize their own
            # failures; anything escaping is a transport-level fault.
            if oneway:
                logger.warning("one-way %s handler at %r failed",
                               frame.kind, frame.dst, exc_info=True)
                return
            respond(framing.encode_error(frame.request_id, exc))
            return
        if oneway:
            return
        if not isinstance(reply, bytes):
            respond(framing.encode_error(
                frame.request_id,
                TransportError(
                    f"handler at {frame.dst!r} returned "
                    f"{type(reply).__name__}, expected bytes"
                ),
            ))
            return
        respond(framing.encode_reply(frame.request_id, reply))

    def _write_reply(self, writer: asyncio.StreamWriter, data: bytes) -> None:
        if not writer.is_closing():
            writer.write(data)

    # -- chaos hooks -----------------------------------------------------------

    def set_node_down(self, name: str, down: bool = True) -> None:
        """Crash (or revive) a node as seen from this hub.

        For a local node this refuses incoming requests with
        :class:`~repro.errors.CoreDownError`; for a remote one it blocks
        outgoing traffic at the sender (a cluster-level injector
        broadcasts the mark to every hub).
        """
        if down:
            self._down.add(name)
        else:
            self._down.discard(name)

    def set_link(
        self,
        a: str,
        b: str,
        *,
        bandwidth: float | None = None,
        latency: float | None = None,
        up: bool | None = None,
        symmetric: bool = True,
    ) -> None:
        if bandwidth is not None:
            self._require("bandwidth", "bandwidth shaping")
        if latency is not None and latency < 0:
            raise ConfigurationError(f"latency must be non-negative, got {latency}")
        directions = [(a, b), (b, a)] if symmetric else [(a, b)]
        for key in directions:
            if latency is not None:
                self._latency[key] = latency
            if up is True:
                self._blocked.discard(key)
            elif up is False:
                self._blocked.add(key)

    def partition(self, *groups: set[str]) -> None:
        partition_of: dict[str, int] = {}
        for index, group in enumerate(groups):
            for name in group:
                if name in partition_of:
                    raise ConfigurationError(f"node {name!r} appears in two partitions")
                partition_of[name] = index
        self._partition_of = partition_of

    def heal_partition(self) -> None:
        self._partition_of = {}

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Stop listeners, drop connections, and join the loop thread."""
        if self._closed:
            return
        self._closed = True
        try:
            future = asyncio.run_coroutine_threadsafe(self._shutdown(), self._loop)
            future.result(self._connect_timeout)
        except Exception:  # noqa: BLE001 - best-effort teardown
            logger.warning("TcpTransport shutdown was not clean", exc_info=True)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._loop_thread.join(timeout=self._connect_timeout)
        if not self._loop.is_running():
            self._loop.close()
        self._executor.shutdown(wait=False, cancel_futures=True)
        self._handlers.clear()

    async def _shutdown(self) -> None:
        for server in self._servers.values():
            server.close()
        for connection in list(self._connections.values()):
            connection.close()
        self._connections.clear()
        self._servers.clear()
        current = asyncio.current_task()
        for task in asyncio.all_tasks(self._loop):
            if task is not current:
                task.cancel()

    def __repr__(self) -> str:
        local = sorted(self._servers)
        return f"<TcpTransport host={self._host} local={local} peers={len(self._peers)}>"
