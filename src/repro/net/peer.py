"""The Peer Interface: the Core's port for low-level Core-to-Core traffic.

This is the bottom box of Figure 1.  It wraps the RPC endpoint with
object-level convenience calls, letting each interaction choose its own
serializer — control traffic uses the plain serializer, while invocation
and movement payloads are encoded by the complet-aware marshalers before
they reach this layer.
"""

from __future__ import annotations

from repro.net.messages import MessageKind
from repro.net.retry import RetryPolicy
from repro.net.rpc import RpcEndpoint, RpcHandler
from repro.net.serializer import PLAIN, Serializer
from repro.net.transport import LinkStats, Transport


class PeerInterface:
    """Typed facade over one Core's RPC endpoint.

    Works against any :class:`Transport`; passing a bare
    :class:`~repro.net.simnet.SimNetwork` still works through a
    deprecation adapter.  Besides the messaging calls this facade also
    exposes the protocol-level topology accessors (:meth:`peers`,
    :meth:`is_peer_up`, :meth:`can_reach`, :meth:`link_stats`) so the
    layers above never have to reach into the transport themselves.
    """

    def __init__(self, core_name: str, transport: Transport) -> None:
        self.core_name = core_name
        self.endpoint = RpcEndpoint(core_name, transport)
        self.transport = self.endpoint.transport

    @property
    def network(self) -> Transport:
        """Deprecated alias for :attr:`transport` (pre-protocol name)."""
        return self.transport

    # -- topology -------------------------------------------------------------

    def peers(self) -> list[str]:
        """Every node name known to the transport, this Core included."""
        return self.transport.nodes()

    def is_peer_up(self, name: str) -> bool:
        """Whether ``name`` is attached and not administratively down."""
        return self.transport.is_up(name)

    def can_reach(self, dst: str) -> bool:
        """Whether traffic from this Core can currently reach ``dst``."""
        return self.transport.can_reach(self.core_name, dst)

    def link_stats(self, dst: str) -> LinkStats:
        """Directed traffic counters from this Core towards ``dst``."""
        return self.transport.link_stats(self.core_name, dst)

    def link_bytes(self, peer: str) -> int:
        """Total bytes exchanged with ``peer`` (both directions)."""
        outgoing = self.transport.link_stats(self.core_name, peer)
        incoming = self.transport.link_stats(peer, self.core_name)
        return outgoing.bytes + incoming.bytes

    # -- fault-tolerance configuration ----------------------------------------

    def configure_retry(
        self, policy: RetryPolicy | None, kind: MessageKind | None = None
    ) -> None:
        """Retry policy for outgoing requests of ``kind`` (default: all)."""
        self.endpoint.set_retry_policy(policy, kind)

    def configure_timeout(
        self, seconds: float | None, kind: MessageKind | None = None
    ) -> None:
        """Round-trip deadline for outgoing requests of ``kind`` (default: all)."""
        self.endpoint.set_timeout(seconds, kind)

    # -- outgoing -------------------------------------------------------------

    def request(
        self,
        dst: str,
        kind: MessageKind,
        body: object,
        *,
        serializer: Serializer = PLAIN,
        reply_serializer: Serializer | None = None,
        timeout: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> object:
        """Serialize ``body``, send it, and deserialize the reply.

        ``serializer`` encodes the request; ``reply_serializer`` (default:
        the same) decodes the reply.  Movement and invocation use
        asymmetric pairs because tokens are resolved against different
        Cores on each side.  ``timeout`` and ``retry`` override the
        endpoint's per-kind configuration for this one request.
        """
        payload = serializer.dumps(body)
        reply = self.endpoint.call(dst, kind, payload, timeout=timeout, retry=retry)
        decoder = reply_serializer if reply_serializer is not None else serializer
        return decoder.loads(reply)

    def request_raw(
        self,
        dst: str,
        kind: MessageKind,
        payload: bytes,
        *,
        timeout: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> bytes:
        """Send pre-encoded bytes and return raw reply bytes."""
        return self.endpoint.call(dst, kind, payload, timeout=timeout, retry=retry)

    def notify(
        self,
        dst: str,
        kind: MessageKind,
        body: object,
        *,
        serializer: Serializer = PLAIN,
    ) -> None:
        """One-way message (event notifications, shutdown broadcasts)."""
        self.endpoint.post(dst, kind, serializer.dumps(body))

    # -- incoming -------------------------------------------------------------

    def register_raw(self, kind: MessageKind, handler: RpcHandler) -> None:
        """Install a raw bytes-level handler (used by movement/invocation)."""
        self.endpoint.register(kind, handler)

    def register(self, kind: MessageKind, handler, *, serializer: Serializer = PLAIN) -> None:
        """Install an object-level handler: ``handler(src, body) -> reply``."""

        def raw_handler(src: str, payload: bytes) -> bytes:
            body = serializer.loads(payload)
            reply = handler(src, body)
            return serializer.dumps(reply)

        self.endpoint.register(kind, raw_handler)

    def close(self) -> None:
        self.endpoint.close()
