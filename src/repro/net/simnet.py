"""Simulated wide-area network connecting Cores.

Each pair of nodes is joined by a :class:`Link` with a bandwidth
(bytes/second) and a latency (seconds); both are mutable at runtime,
which is how experiments reproduce the paper's premise of "dynamically
changing transfer rates".  Every transfer charges virtual time
``latency + size / bandwidth`` to the scheduler's clock and is recorded
in per-link and global accounting, which the monitoring layer and the
benchmarks read.

Failure injection covers the cases the paper's layout policies react to:
individual links can go down, nodes can be stopped (Core shutdown), and
the network can be split into partitions.
"""

from __future__ import annotations

import itertools
import logging
from collections import Counter, deque
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import (
    ConfigurationError,
    CoreDownError,
    CoreError,
    CoreUnreachableError,
    DuplicateCoreError,
    TransportError,
)
from repro.net.messages import Envelope, MessageKind
from repro.sim.scheduler import Scheduler

logger = logging.getLogger(__name__)

#: Handler installed by each node: consumes an envelope, returns reply bytes.
NodeHandler = Callable[[Envelope], bytes]

#: Bandwidth meaning "effectively infinite" (loopback, un-modelled links).
UNLIMITED = float("inf")


@dataclass(slots=True)
class Link:
    """State of one directed link between two nodes."""

    bandwidth: float = 1_000_000.0  # bytes per second
    latency: float = 0.01           # seconds, one way
    up: bool = True

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` across this link."""
        if self.bandwidth <= 0:
            raise ConfigurationError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.bandwidth == UNLIMITED:
            return self.latency
        return self.latency + nbytes / self.bandwidth


@dataclass(slots=True)
class LinkStats:
    """Cumulative accounting for one directed link."""

    messages: int = 0
    bytes: int = 0
    seconds: float = 0.0

    def record(self, nbytes: int, seconds: float) -> None:
        self.messages += 1
        self.bytes += nbytes
        self.seconds += seconds


@dataclass(slots=True)
class NetworkStats:
    """Global accounting across the whole network."""

    messages: int = 0
    bytes: int = 0
    seconds: float = 0.0
    by_kind: Counter = field(default_factory=Counter)

    def record(self, kind: MessageKind, nbytes: int, seconds: float) -> None:
        self.messages += 1
        self.bytes += nbytes
        self.seconds += seconds
        self.by_kind[kind] += 1


class TraceLog:
    """Bounded log of recent envelopes, formatted lazily.

    Appending stores a small tuple; the human-readable line (the hot-path
    cost of string formatting per message) is only built when someone
    actually iterates the log.
    """

    __slots__ = ("_entries",)

    def __init__(self, capacity: int) -> None:
        self._entries: deque[tuple[int, str, str, str, int]] = deque(maxlen=capacity)

    def append(self, envelope: Envelope) -> None:
        self._entries.append(
            (envelope.msg_id, envelope.src, envelope.dst,
             envelope.kind.value, len(envelope.payload))
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        for msg_id, src, dst, kind, nbytes in self._entries:
            yield f"[{msg_id}] {src} -> {dst} {kind} ({nbytes}B)"

    def clear(self) -> None:
        self._entries.clear()


class SimNetwork:
    """A set of named nodes joined by configurable links.

    The network is synchronous: :meth:`send` delivers the envelope to the
    destination handler and returns its reply, charging virtual time for
    both directions.  :meth:`post` is fire-and-forget (one direction).
    """

    def __init__(
        self,
        scheduler: Scheduler,
        *,
        default_bandwidth: float = 1_000_000.0,
        default_latency: float = 0.01,
        trace_capacity: int = 256,
    ) -> None:
        self.scheduler = scheduler
        self._default_bandwidth = default_bandwidth
        self._default_latency = default_latency
        self._handlers: dict[str, NodeHandler] = {}
        self._down: set[str] = set()
        self._links: dict[tuple[str, str], Link] = {}
        self._link_stats: dict[tuple[str, str], LinkStats] = {}
        self._partition_of: dict[str, int] = {}
        self._msg_ids = itertools.count(1)
        self.stats = NetworkStats()
        self.trace = TraceLog(trace_capacity)

    # -- topology -----------------------------------------------------------

    def register(self, name: str, handler: NodeHandler) -> None:
        """Attach a node (a Core) to the network."""
        if name in self._handlers:
            raise DuplicateCoreError(f"node {name!r} is already registered")
        self._handlers[name] = handler
        self._down.discard(name)

    def deregister(self, name: str) -> None:
        """Detach a node permanently (Core shutdown completed)."""
        self._handlers.pop(name, None)
        self._down.add(name)

    def nodes(self) -> list[str]:
        return sorted(self._handlers)

    def is_up(self, name: str) -> bool:
        return name in self._handlers and name not in self._down

    def set_node_down(self, name: str, down: bool = True) -> None:
        """Crash (or revive) a node without deregistering it."""
        if down:
            self._down.add(name)
        else:
            self._down.discard(name)

    def can_reach(self, src: str, dst: str) -> bool:
        """Would a message from ``src`` to ``dst`` be deliverable right now?

        Accounts for crashed nodes, downed links, and partitions — the
        same checks :meth:`send` applies — without sending anything.
        """
        try:
            self._check_reachable(src, dst)
        except CoreError:
            return False
        return True

    def link(self, src: str, dst: str) -> Link:
        """The directed link src→dst, created with defaults on first use."""
        key = (src, dst)
        if key not in self._links:
            self._links[key] = Link(self._default_bandwidth, self._default_latency)
        return self._links[key]

    def set_link(
        self,
        a: str,
        b: str,
        *,
        bandwidth: float | None = None,
        latency: float | None = None,
        up: bool | None = None,
        symmetric: bool = True,
    ) -> None:
        """Reconfigure the a→b link (and b→a unless ``symmetric=False``)."""
        directions = [(a, b), (b, a)] if symmetric else [(a, b)]
        for src, dst in directions:
            link = self.link(src, dst)
            if bandwidth is not None:
                if bandwidth <= 0:
                    raise ConfigurationError(f"bandwidth must be positive, got {bandwidth}")
                link.bandwidth = bandwidth
            if latency is not None:
                if latency < 0:
                    raise ConfigurationError(f"latency must be non-negative, got {latency}")
                link.latency = latency
            if up is not None:
                link.up = up

    def partition(self, *groups: set[str]) -> None:
        """Split the network: traffic flows only within each group.

        Nodes *not* listed in any group form an implicit group of their
        own: they can still reach each other, but not any grouped node.
        (Think of the groups as islands that broke off the mainland —
        whatever was not named stays on the mainland together.)
        """
        self._partition_of = {}
        for index, group in enumerate(groups):
            for name in group:
                if name in self._partition_of:
                    raise ConfigurationError(f"node {name!r} appears in two partitions")
                self._partition_of[name] = index

    def heal_partition(self) -> None:
        """Remove any partition; link up/down state is unaffected."""
        self._partition_of = {}

    def link_stats(self, src: str, dst: str) -> LinkStats:
        key = (src, dst)
        if key not in self._link_stats:
            self._link_stats[key] = LinkStats()
        return self._link_stats[key]

    def transfer_time(self, src: str, dst: str, nbytes: int) -> float:
        """Predicted one-way transfer time for ``nbytes`` from src to dst."""
        if src == dst:
            return 0.0
        return self.link(src, dst).transfer_time(nbytes)

    # -- delivery -------------------------------------------------------------

    def send(self, envelope: Envelope) -> bytes:
        """Deliver ``envelope`` and return the destination's reply bytes."""
        self._deliver(envelope)
        handler = self._handlers[envelope.dst]
        reply = handler(envelope)
        if not isinstance(reply, bytes):
            raise TransportError(
                f"handler at {envelope.dst!r} returned {type(reply).__name__}, expected bytes"
            )
        self._charge(envelope.dst, envelope.src, envelope.kind, len(reply))
        return reply

    def post(self, envelope: Envelope) -> None:
        """Deliver ``envelope`` one-way; any reply bytes are discarded.

        One-way means one-way: an exception inside the *receiving*
        handler is caught at the receiving boundary and logged — the
        sender already moved on, so nothing propagates back to it.
        Reachability failures (raised before delivery) still surface at
        the sender, exactly like a failed network write.
        """
        self._deliver(envelope)
        try:
            self._handlers[envelope.dst](envelope)
        except Exception:  # noqa: BLE001 - receiving-boundary isolation
            logger.warning(
                "one-way %s handler at %r failed", envelope.kind.value, envelope.dst,
                exc_info=True,
            )

    def _deliver(self, envelope: Envelope) -> None:
        envelope.msg_id = next(self._msg_ids)
        self._check_reachable(envelope.src, envelope.dst)
        self.trace.append(envelope)
        self._charge(envelope.src, envelope.dst, envelope.kind, len(envelope.payload))

    def _check_reachable(self, src: str, dst: str) -> None:
        for name in (src, dst):
            if name not in self._handlers:
                raise CoreUnreachableError(f"node {name!r} is not on the network")
            if name in self._down:
                raise CoreDownError(f"node {name!r} is down")
        if src == dst:
            return
        if not self.link(src, dst).up:
            raise CoreUnreachableError(f"link {src!r} -> {dst!r} is down")
        if self._partition_of:
            src_group = self._partition_of.get(src)
            dst_group = self._partition_of.get(dst)
            if src_group != dst_group:
                raise CoreUnreachableError(
                    f"nodes {src!r} and {dst!r} are in different partitions"
                )

    def _charge(self, src: str, dst: str, kind: MessageKind, nbytes: int) -> None:
        seconds = self.transfer_time(src, dst, nbytes)
        self.stats.record(kind, nbytes, seconds)
        if src != dst:
            self.link_stats(src, dst).record(nbytes, seconds)
        if seconds > 0.0:
            # Quiet: transfer time moves the clock but never fires timers
            # mid-protocol; due work runs at the next explicit advance.
            self.scheduler.advance_quiet(seconds)
