"""Simulated wide-area network connecting Cores.

Each pair of nodes is joined by a :class:`Link` with a bandwidth
(bytes/second) and a latency (seconds); both are mutable at runtime,
which is how experiments reproduce the paper's premise of "dynamically
changing transfer rates".  Every transfer charges virtual time
``latency + size / bandwidth`` to the scheduler's clock and is recorded
in per-link and global accounting, which the monitoring layer and the
benchmarks read.

Failure injection covers the cases the paper's layout policies react to:
individual links can go down, nodes can be stopped (Core shutdown), and
the network can be split into partitions.
"""

from __future__ import annotations

import itertools
import logging
from dataclasses import dataclass

from repro.errors import (
    ConfigurationError,
    CoreDownError,
    CoreError,
    CoreUnreachableError,
    DuplicateCoreError,
    TransportError,
)
from repro.net.messages import Envelope, MessageKind
from repro.net.transport import (
    CAP_BANDWIDTH,
    CAP_LATENCY,
    CAP_LINK_STATE,
    CAP_NODE_DOWN,
    CAP_PARTITION,
    CAP_VIRTUAL_TIME,
    UNLIMITED,
    LinkStats,
    NetworkStats,
    NodeHandler,
    TraceLog,
    Transport,
)
from repro.sim.scheduler import Scheduler

logger = logging.getLogger(__name__)

__all__ = [
    "Link",
    "LinkStats",
    "NetworkStats",
    "NodeHandler",
    "SimNetwork",
    "SimTransport",
    "TraceLog",
    "UNLIMITED",
    "as_transport",
]


@dataclass(slots=True)
class Link:
    """State of one directed link between two nodes."""

    bandwidth: float = 1_000_000.0  # bytes per second
    latency: float = 0.01           # seconds, one way
    up: bool = True

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` across this link."""
        if self.bandwidth <= 0:
            raise ConfigurationError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.bandwidth == UNLIMITED:
            return self.latency
        return self.latency + nbytes / self.bandwidth


class SimNetwork:
    """A set of named nodes joined by configurable links.

    The network is synchronous: :meth:`send` delivers the envelope to the
    destination handler and returns its reply, charging virtual time for
    both directions.  :meth:`post` is fire-and-forget (one direction).
    """

    def __init__(
        self,
        scheduler: Scheduler,
        *,
        default_bandwidth: float = 1_000_000.0,
        default_latency: float = 0.01,
        trace_capacity: int = 256,
    ) -> None:
        self.scheduler = scheduler
        self._default_bandwidth = default_bandwidth
        self._default_latency = default_latency
        self._handlers: dict[str, NodeHandler] = {}
        self._down: set[str] = set()
        self._links: dict[tuple[str, str], Link] = {}
        self._link_stats: dict[tuple[str, str], LinkStats] = {}
        self._partition_of: dict[str, int] = {}
        self._msg_ids = itertools.count(1)
        self.stats = NetworkStats()
        self.trace = TraceLog(trace_capacity)

    # -- topology -----------------------------------------------------------

    def register(self, name: str, handler: NodeHandler) -> None:
        """Attach a node (a Core) to the network."""
        if name in self._handlers:
            raise DuplicateCoreError(f"node {name!r} is already registered")
        self._handlers[name] = handler
        self._down.discard(name)

    def deregister(self, name: str) -> None:
        """Detach a node permanently (Core shutdown completed)."""
        self._handlers.pop(name, None)
        self._down.add(name)

    def nodes(self) -> list[str]:
        return sorted(self._handlers)

    def is_up(self, name: str) -> bool:
        return name in self._handlers and name not in self._down

    def set_node_down(self, name: str, down: bool = True) -> None:
        """Crash (or revive) a node without deregistering it."""
        if down:
            self._down.add(name)
        else:
            self._down.discard(name)

    def can_reach(self, src: str, dst: str) -> bool:
        """Would a message from ``src`` to ``dst`` be deliverable right now?

        Accounts for crashed nodes, downed links, and partitions — the
        same checks :meth:`send` applies — without sending anything.
        """
        try:
            self._check_reachable(src, dst)
        except CoreError:
            return False
        return True

    def link(self, src: str, dst: str) -> Link:
        """The directed link src→dst, created with defaults on first use."""
        key = (src, dst)
        if key not in self._links:
            self._links[key] = Link(self._default_bandwidth, self._default_latency)
        return self._links[key]

    def set_link(
        self,
        a: str,
        b: str,
        *,
        bandwidth: float | None = None,
        latency: float | None = None,
        up: bool | None = None,
        symmetric: bool = True,
    ) -> None:
        """Reconfigure the a→b link (and b→a unless ``symmetric=False``)."""
        directions = [(a, b), (b, a)] if symmetric else [(a, b)]
        for src, dst in directions:
            link = self.link(src, dst)
            if bandwidth is not None:
                if bandwidth <= 0:
                    raise ConfigurationError(f"bandwidth must be positive, got {bandwidth}")
                link.bandwidth = bandwidth
            if latency is not None:
                if latency < 0:
                    raise ConfigurationError(f"latency must be non-negative, got {latency}")
                link.latency = latency
            if up is not None:
                link.up = up

    def partition(self, *groups: set[str]) -> None:
        """Split the network: traffic flows only within each group.

        Nodes *not* listed in any group form an implicit group of their
        own: they can still reach each other, but not any grouped node.
        (Think of the groups as islands that broke off the mainland —
        whatever was not named stays on the mainland together.)
        """
        self._partition_of = {}
        for index, group in enumerate(groups):
            for name in group:
                if name in self._partition_of:
                    raise ConfigurationError(f"node {name!r} appears in two partitions")
                self._partition_of[name] = index

    def heal_partition(self) -> None:
        """Remove any partition; link up/down state is unaffected."""
        self._partition_of = {}

    def link_stats(self, src: str, dst: str) -> LinkStats:
        key = (src, dst)
        if key not in self._link_stats:
            self._link_stats[key] = LinkStats()
        return self._link_stats[key]

    def transfer_time(self, src: str, dst: str, nbytes: int) -> float:
        """Predicted one-way transfer time for ``nbytes`` from src to dst."""
        if src == dst:
            return 0.0
        return self.link(src, dst).transfer_time(nbytes)

    # -- delivery -------------------------------------------------------------

    def send(self, envelope: Envelope, timeout: float | None = None) -> bytes:
        """Deliver ``envelope`` and return the destination's reply bytes.

        ``timeout`` is accepted for :class:`~repro.net.transport.Transport`
        signature parity and ignored: the simulated network is synchronous
        in virtual time, so deadlines are enforced after the fact by the
        RPC layer against the virtual clock.
        """
        self._deliver(envelope)
        handler = self._handlers[envelope.dst]
        reply = handler(envelope)
        if not isinstance(reply, bytes):
            raise TransportError(
                f"handler at {envelope.dst!r} returned {type(reply).__name__}, expected bytes"
            )
        self._charge(envelope.dst, envelope.src, envelope.kind, len(reply))
        return reply

    def post(self, envelope: Envelope) -> None:
        """Deliver ``envelope`` one-way; any reply bytes are discarded.

        One-way means one-way: an exception inside the *receiving*
        handler is caught at the receiving boundary and logged — the
        sender already moved on, so nothing propagates back to it.
        Reachability failures (raised before delivery) still surface at
        the sender, exactly like a failed network write.
        """
        self._deliver(envelope)
        try:
            self._handlers[envelope.dst](envelope)
        except Exception:  # noqa: BLE001 - receiving-boundary isolation
            logger.warning(
                "one-way %s handler at %r failed", envelope.kind.value, envelope.dst,
                exc_info=True,
            )

    def _deliver(self, envelope: Envelope) -> None:
        envelope.msg_id = next(self._msg_ids)
        self._check_reachable(envelope.src, envelope.dst)
        self.trace.append(envelope)
        self._charge(envelope.src, envelope.dst, envelope.kind, len(envelope.payload))

    def _check_reachable(self, src: str, dst: str) -> None:
        for name in (src, dst):
            if name not in self._handlers:
                raise CoreUnreachableError(f"node {name!r} is not on the network")
            if name in self._down:
                raise CoreDownError(f"node {name!r} is down")
        if src == dst:
            return
        if not self.link(src, dst).up:
            raise CoreUnreachableError(f"link {src!r} -> {dst!r} is down")
        if self._partition_of:
            src_group = self._partition_of.get(src)
            dst_group = self._partition_of.get(dst)
            if src_group != dst_group:
                raise CoreUnreachableError(
                    f"nodes {src!r} and {dst!r} are in different partitions"
                )

    def _charge(self, src: str, dst: str, kind: MessageKind, nbytes: int) -> None:
        seconds = self.transfer_time(src, dst, nbytes)
        self.stats.record(kind, nbytes, seconds)
        if src != dst:
            self.link_stats(src, dst).record(nbytes, seconds)
        if seconds > 0.0:
            # Quiet: transfer time moves the clock but never fires timers
            # mid-protocol; due work runs at the next explicit advance.
            self.scheduler.advance_quiet(seconds)


class SimTransport(SimNetwork, Transport):
    """The simulated network as a :class:`~repro.net.transport.Transport`.

    This is the deterministic default backend: every chaos capability is
    supported and every delivery charges virtual time, so a failure
    scenario replays identically on any machine.  It *is* a
    :class:`SimNetwork` — same links, partitions, and accounting — with
    the protocol surface (capabilities, ``close``) added on top.
    """

    CAPABILITIES = frozenset(
        {
            CAP_NODE_DOWN,
            CAP_LINK_STATE,
            CAP_LATENCY,
            CAP_BANDWIDTH,
            CAP_PARTITION,
            CAP_VIRTUAL_TIME,
        }
    )

    def close(self) -> None:
        """Detach every node; the simulated fabric itself has no resources."""
        for name in list(self._handlers):
            self.deregister(name)


class _SimNetworkAdapter(Transport):
    """Thin adapter presenting a bare :class:`SimNetwork` as a Transport.

    Kept for compatibility with the pre-transport API where
    ``PeerInterface``/``RpcEndpoint`` took a ``SimNetwork`` positionally;
    new code should construct a :class:`SimTransport` (or any other
    :class:`~repro.net.transport.Transport`) directly.
    """

    CAPABILITIES = SimTransport.CAPABILITIES

    def __init__(self, network: SimNetwork) -> None:
        self.network = network
        self.scheduler = network.scheduler

    @property
    def stats(self) -> NetworkStats:  # type: ignore[override]
        return self.network.stats

    @property
    def trace(self) -> TraceLog:  # type: ignore[override]
        return self.network.trace

    def register(self, name: str, handler: NodeHandler) -> None:
        self.network.register(name, handler)

    def deregister(self, name: str) -> None:
        self.network.deregister(name)

    def send(self, envelope: Envelope, timeout: float | None = None) -> bytes:
        return self.network.send(envelope, timeout)

    def post(self, envelope: Envelope) -> None:
        self.network.post(envelope)

    def nodes(self) -> list[str]:
        return self.network.nodes()

    def is_up(self, name: str) -> bool:
        return self.network.is_up(name)

    def can_reach(self, src: str, dst: str) -> bool:
        return self.network.can_reach(src, dst)

    def link_stats(self, src: str, dst: str) -> LinkStats:
        return self.network.link_stats(src, dst)

    def transfer_time(self, src: str, dst: str, nbytes: int) -> float:
        return self.network.transfer_time(src, dst, nbytes)

    def reset_stats(self) -> None:
        self.network.stats = NetworkStats()

    def set_node_down(self, name: str, down: bool = True) -> None:
        self.network.set_node_down(name, down)

    def set_link(self, a: str, b: str, **kwargs) -> None:
        self.network.set_link(a, b, **kwargs)

    def partition(self, *groups: set[str]) -> None:
        self.network.partition(*groups)

    def heal_partition(self) -> None:
        self.network.heal_partition()


def as_transport(substrate: "Transport | SimNetwork") -> Transport:
    """Coerce the pre-redesign positional ``SimNetwork`` into a Transport.

    Passing a bare :class:`SimNetwork` (rather than a
    :class:`SimTransport` or other :class:`~repro.net.transport.Transport`)
    is deprecated; the adapter keeps the old call sites working while
    they migrate (see docs/API.md).
    """
    if isinstance(substrate, Transport):
        return substrate
    if isinstance(substrate, SimNetwork):
        import warnings

        warnings.warn(
            "passing a bare SimNetwork is deprecated; construct a "
            "SimTransport (repro.net.SimTransport) or any Transport instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return _SimNetworkAdapter(substrate)
    raise TransportError(
        f"expected a Transport (or legacy SimNetwork), got {type(substrate).__name__}"
    )
