"""Retry policies for cross-Core interactions.

A :class:`RetryPolicy` bounds how stubbornly one cross-Core call fights a
degrading environment: at most ``max_attempts`` tries, exponentially
backed off, optionally under a total virtual-time ``deadline``.  Backoff
is *jitter-free* and sleeps on the simulation scheduler, so a failure
scenario replays deterministically — and, crucially, the backoff sweep
fires due timers, which is how a retry can observe an injected link heal
or Core revival scheduled by :class:`repro.cluster.failures.FailureInjector`.

Only *reachability* errors are retried by default
(:class:`~repro.errors.CoreUnreachableError`,
:class:`~repro.errors.CoreDownError`): those are raised before the
destination handler ran, so a retry is always safe.
:class:`~repro.errors.DeadlineExceededError` is raised *after* the
handler executed — retrying it means at-least-once semantics — so it is
only retried when explicitly listed in ``retry_on``.

Caveat: a retry that begins *inside* a timer callback cannot observe
other timers firing — the scheduler extends the outer sweep instead of
recursing — so only the passage of time is visible there.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, CoreDownError, CoreUnreachableError
from repro.sim.scheduler import Scheduler

#: Errors raised before the remote handler ran; always safe to retry.
REACHABILITY_ERRORS: tuple[type[BaseException], ...] = (
    CoreUnreachableError,
    CoreDownError,
)

#: ``on_retry(attempt, delay, error)`` — notified before each backoff sleep.
RetryObserver = Callable[[int, float, BaseException], None]


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic bounded-retry policy for one cross-Core call.

    ``max_attempts`` counts the first try; ``base_delay`` is the backoff
    before the second attempt, multiplied by ``multiplier`` per further
    attempt and capped at ``max_delay``.  ``deadline`` bounds the total
    virtual time spent (measured from the first attempt); a retry whose
    backoff would overshoot the deadline is not taken.  ``retry_on``
    lists the exception types worth retrying.
    """

    max_attempts: int = 3
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    deadline: float | None = None
    retry_on: tuple[type[BaseException], ...] = field(default=REACHABILITY_ERRORS)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.base_delay < 0.0:
            raise ConfigurationError(
                f"base_delay must be non-negative, got {self.base_delay}"
            )
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be at least 1, got {self.multiplier}"
            )
        if self.max_delay < 0.0:
            raise ConfigurationError(
                f"max_delay must be non-negative, got {self.max_delay}"
            )
        if self.deadline is not None and self.deadline <= 0.0:
            raise ConfigurationError(
                f"deadline must be positive, got {self.deadline}"
            )

    def backoff(self, retry_index: int) -> float:
        """Seconds to wait before retry number ``retry_index`` (1-based)."""
        return min(self.base_delay * self.multiplier ** (retry_index - 1), self.max_delay)

    def delays(self) -> list[float]:
        """The full jitter-free backoff schedule (``max_attempts - 1`` sleeps)."""
        return [self.backoff(i) for i in range(1, self.max_attempts)]

    def run(
        self,
        scheduler: Scheduler,
        fn: Callable[[], object],
        *,
        on_retry: RetryObserver | None = None,
    ) -> object:
        """Call ``fn`` under this policy; re-raise its last error when spent.

        Between attempts the scheduler sweeps virtual time forward by the
        backoff delay, firing due timers — injected heals and revivals
        included — so the environment the retry sees is the environment
        at the retried instant.
        """
        clock = scheduler.clock
        started = clock.now()
        attempt = 1
        while True:
            try:
                return fn()
            except self.retry_on as exc:
                if attempt >= self.max_attempts:
                    raise
                delay = self.backoff(attempt)
                if (
                    self.deadline is not None
                    and clock.now() + delay - started > self.deadline
                ):
                    raise
                if on_retry is not None:
                    on_retry(attempt, delay, exc)
                self._sleep(scheduler, delay)
                attempt += 1

    @staticmethod
    def _sleep(scheduler: Scheduler, delay: float) -> None:
        if delay <= 0.0:
            return
        if scheduler.clock.is_virtual:
            scheduler.advance(delay)
        else:  # pragma: no cover - real-clock deployments
            time.sleep(delay)
            scheduler.fire_due()


#: Single-attempt policy: the pre-retry behaviour, spelled explicitly.
NO_RETRY = RetryPolicy(max_attempts=1)
