"""Length-prefixed wire framing for stream transports (TCP).

The simulated network hands :class:`~repro.net.messages.Envelope`
objects across a function call; a byte stream needs explicit frames.
One frame is::

    <u32 length> <u8 version> <u8 type> <u64 request-id> <body>

where ``length`` counts everything after itself.  REQUEST/ONEWAY bodies
carry the envelope coordinates (src, dst, kind as length-prefixed UTF-8,
then the header dict) followed by the payload; REPLY bodies are raw
reply bytes; ERROR bodies are a pickled transport-level exception that
the sender re-raises (reachability failures such as "destination down"
must surface as the same typed errors the simulated network raises).

The payload itself is passed through *untouched*: it is whatever the
RPC layer already produced — the struct-framed INVOKE encoding and the
1-byte status-prefix reply frames — so the per-message overhead of the
codec is exactly the header above, and the application-level encoding
is byte-identical on both backends.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass, field

from repro.errors import TransportError
from repro.net.messages import Envelope, MessageKind

#: Frame types.
REQUEST = 1
REPLY = 2
ONEWAY = 3
ERROR = 4

#: Protocol version byte; bumped on incompatible frame-layout changes.
VERSION = 1

#: Hard ceiling on one frame (guards a corrupted length prefix from
#: allocating gigabytes); generous enough for any marshaled pull group.
MAX_FRAME_BYTES = 1 << 30

_LENGTH = struct.Struct("<I")
_HEAD = struct.Struct("<BBQ")       # version, type, request id
_SHORT = struct.Struct("<H")        # length of one UTF-8 field / count
_TYPES = frozenset({REQUEST, REPLY, ONEWAY, ERROR})


class FramingError(TransportError):
    """The byte stream does not decode as a valid frame."""


@dataclass(slots=True)
class Frame:
    """One decoded wire frame."""

    type: int
    request_id: int
    payload: bytes
    src: str = ""
    dst: str = ""
    kind: str = ""
    headers: dict[str, str] = field(default_factory=dict)

    def to_envelope(self) -> Envelope:
        """Rebuild the envelope of a REQUEST/ONEWAY frame."""
        return Envelope(
            src=self.src,
            dst=self.dst,
            kind=MessageKind(self.kind),
            payload=self.payload,
            headers=dict(self.headers),
        )


def _pack_str(text: str) -> bytes:
    data = text.encode("utf-8")
    if len(data) > 0xFFFF:
        raise FramingError(f"string field too long to frame ({len(data)} bytes)")
    return _SHORT.pack(len(data)) + data


def encode_request(envelope: Envelope, request_id: int, *, oneway: bool = False) -> bytes:
    """Frame an outgoing envelope (REQUEST, or ONEWAY when ``oneway``)."""
    parts = [
        _HEAD.pack(VERSION, ONEWAY if oneway else REQUEST, request_id),
        _pack_str(envelope.src),
        _pack_str(envelope.dst),
        _pack_str(envelope.kind.value),
        _SHORT.pack(len(envelope.headers)),
    ]
    for key, value in envelope.headers.items():
        parts.append(_pack_str(key))
        parts.append(_pack_str(value))
    parts.append(envelope.payload)
    body = b"".join(parts)
    return _LENGTH.pack(len(body)) + body


def encode_reply(request_id: int, payload: bytes) -> bytes:
    """Frame the reply bytes for request ``request_id``."""
    body = _HEAD.pack(VERSION, REPLY, request_id) + payload
    return _LENGTH.pack(len(body)) + body


def encode_error(request_id: int, error: BaseException) -> bytes:
    """Frame a transport-level failure (re-raised at the sender)."""
    try:
        body = pickle.dumps(error, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:  # noqa: BLE001 - exotic exception state
        body = pickle.dumps(TransportError(repr(error)))
    frame = _HEAD.pack(VERSION, ERROR, request_id) + body
    return _LENGTH.pack(len(frame)) + frame


def decode_error(payload: bytes) -> BaseException:
    """Recover the exception carried by an ERROR frame."""
    try:
        error = pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 - corrupted peer frame
        raise FramingError(f"undecodable ERROR frame: {exc!r}") from exc
    if not isinstance(error, BaseException):
        raise FramingError(f"ERROR frame carried {type(error).__name__}, not an exception")
    return error


def _decode_body(body: bytes) -> Frame:
    version, frame_type, request_id = _HEAD.unpack_from(body)
    if version != VERSION:
        raise FramingError(f"unsupported frame version {version} (expected {VERSION})")
    if frame_type not in _TYPES:
        raise FramingError(f"unknown frame type {frame_type}")
    offset = _HEAD.size
    if frame_type in (REPLY, ERROR):
        return Frame(type=frame_type, request_id=request_id, payload=body[offset:])

    def take_str() -> str:
        nonlocal offset
        (length,) = _SHORT.unpack_from(body, offset)
        offset += _SHORT.size
        if offset + length > len(body):
            raise FramingError("truncated string field inside frame")
        text = body[offset:offset + length].decode("utf-8")
        offset += length
        return text

    src = take_str()
    dst = take_str()
    kind = take_str()
    (header_count,) = _SHORT.unpack_from(body, offset)
    offset += _SHORT.size
    headers: dict[str, str] = {}
    for _ in range(header_count):
        key = take_str()
        headers[key] = take_str()
    return Frame(
        type=frame_type,
        request_id=request_id,
        payload=body[offset:],
        src=src,
        dst=dst,
        kind=kind,
        headers=headers,
    )


class FrameDecoder:
    """Incremental decoder: feed stream chunks, take out whole frames.

    Handles arbitrary fragmentation — a frame split across reads, or
    several frames arriving in one read — which is exactly what a TCP
    stream does and what the unit tests exercise byte by byte.
    """

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[Frame]:
        """Append ``data``; return every frame completed by it."""
        self._buffer.extend(data)
        frames: list[Frame] = []
        while True:
            frame = self._next()
            if frame is None:
                return frames
            frames.append(frame)

    def _next(self) -> Frame | None:
        if len(self._buffer) < _LENGTH.size:
            return None
        (length,) = _LENGTH.unpack_from(self._buffer)
        if length > MAX_FRAME_BYTES:
            raise FramingError(f"frame of {length} bytes exceeds MAX_FRAME_BYTES")
        if length < _HEAD.size:
            raise FramingError(f"frame of {length} bytes is shorter than its header")
        end = _LENGTH.size + length
        if len(self._buffer) < end:
            return None
        body = bytes(self._buffer[_LENGTH.size:end])
        del self._buffer[:end]
        return _decode_body(body)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards an incomplete frame."""
        return len(self._buffer)
