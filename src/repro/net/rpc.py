"""Synchronous request/reply over the simulated network (the RMI analogue).

Each Core owns one :class:`RpcEndpoint`.  Handlers are registered per
:class:`~repro.net.messages.MessageKind` and receive the raw payload
bytes (the Core layer decides how each payload is serialized, because
invocation and movement payloads need complet-aware hooks).  Exceptions
raised by a handler are serialized into the reply frame and re-raised
*by value* at the caller — the same semantics a remote exception has in
RMI — chained to a :class:`~repro.errors.RemoteInvocationError` naming
the remote Core so the remote/local boundary stays visible.

Fault tolerance: every call may carry a per-kind (or per-call) timeout —
a round trip whose virtual time exceeds it raises
:class:`~repro.errors.DeadlineExceededError` — and a per-kind (or
per-call) :class:`~repro.net.retry.RetryPolicy` that re-sends after
reachability failures, backing off on the simulation scheduler.  One-way
messages are genuinely one-way: a receiving handler's failure is caught
at the receiving boundary, logged, and reported through
:attr:`RpcEndpoint.on_oneway_error` instead of travelling back.

Observability: the endpoint carries an optional
:class:`~repro.trace.tracer.Tracer` and
:class:`~repro.metrics.registry.MetricsRegistry` (the owning Core
attaches its own).  With tracing enabled, every request opens a client
span, injects the trace context into the envelope headers, and the
receiving endpoint opens a matching server span parented on it — which
is how one logical operation becomes one span tree across Cores.  The
registry records per-kind call counts, retries, and round-trip virtual
durations regardless of tracing.
"""

from __future__ import annotations

import logging
import pickle
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.errors import DeadlineExceededError, RemoteInvocationError, TransportError
from repro.net.messages import Envelope, MessageKind
from repro.net.retry import RetryObserver, RetryPolicy
from repro.net.simnet import as_transport
from repro.net.transport import Transport
from repro.trace.tracer import context_from_headers

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.registry import MetricsRegistry
    from repro.trace.tracer import Tracer

logger = logging.getLogger(__name__)

#: A handler consumes (source core name, payload bytes) and returns reply bytes.
RpcHandler = Callable[[str, bytes], bytes]

#: Envelope header marking fire-and-forget traffic.
ONEWAY_HEADER = "oneway"

#: Pass as ``timeout=`` to exempt one call from any configured deadline.
#: Commit traffic (``MOVE_COMPLET``) uses this: in the synchronous
#: network a reply in hand means the destination already committed, so a
#: deadline firing after the fact could only produce inconsistent
#: outcomes, never cancel the remote effect.
NO_DEADLINE = float("inf")


#: Reply frames are a one-byte status prefix followed by the body — no
#: pickling of an (status, body) tuple around every reply.  OK bodies are
#: raw handler bytes; error bodies are a pickled exception (or repr).
_OK_PREFIX = b"\x00"
_ERROR_PREFIX = b"\x01"
_OK_EMPTY = _OK_PREFIX


def _ok_frame(body: bytes) -> bytes:
    return _OK_PREFIX + body


def _err_frame(body: object) -> bytes:
    return _ERROR_PREFIX + pickle.dumps(body, protocol=pickle.HIGHEST_PROTOCOL)


class RpcEndpoint:
    """One node's request/reply port on a :class:`Transport`.

    Any transport implementation works — the deterministic simulated
    network for tests, real TCP for multi-process deployments.  Passing
    a bare :class:`~repro.net.simnet.SimNetwork` still works through a
    deprecation adapter; new code should construct a
    :class:`~repro.net.simnet.SimTransport`.
    """

    def __init__(self, name: str, transport: Transport) -> None:
        self.name = name
        self.transport = as_transport(transport)
        #: Observability hooks, attached by the owning Core (optional).
        self.tracer: "Tracer | None" = None
        self.metrics: "MetricsRegistry | None" = None
        #: Per-kind (calls counter, duration histogram), bound lazily so
        #: the per-call cost is one dict lookup.
        self._instruments: dict[MessageKind, tuple] = {}
        self._handlers: dict[MessageKind, RpcHandler] = {}
        #: Round-trip deadline per kind, overriding :attr:`default_timeout`.
        self._timeouts: dict[MessageKind, float] = {}
        #: Retry policy per kind, overriding :attr:`default_retry`.
        self._retries: dict[MessageKind, RetryPolicy] = {}
        self.default_timeout: float | None = None
        self.default_retry: RetryPolicy | None = None
        #: Called as ``(envelope, error)`` when a one-way handler fails here.
        self.on_oneway_error: Callable[[Envelope, BaseException], None] | None = None
        #: Called as ``(dst, kind, attempt, delay, error)`` before a retry sleep.
        self.on_retry: Callable[[str, MessageKind, int, float, BaseException], None] | None = None
        self.transport.register(name, self._dispatch)

    @property
    def network(self) -> Transport:
        """Deprecated alias for :attr:`transport` (pre-protocol name)."""
        return self.transport

    # -- configuration --------------------------------------------------------

    def set_timeout(self, seconds: float | None, kind: MessageKind | None = None) -> None:
        """Set the round-trip deadline for ``kind`` (or the default)."""
        if seconds is not None and seconds <= 0.0:
            raise TransportError(f"timeout must be positive, got {seconds}")
        if kind is None:
            self.default_timeout = seconds
        elif seconds is None:
            self._timeouts.pop(kind, None)
        else:
            self._timeouts[kind] = seconds

    def set_retry_policy(
        self, policy: RetryPolicy | None, kind: MessageKind | None = None
    ) -> None:
        """Set the retry policy for ``kind`` (or the default for all kinds)."""
        if kind is None:
            self.default_retry = policy
        elif policy is None:
            self._retries.pop(kind, None)
        else:
            self._retries[kind] = policy

    def timeout_for(self, kind: MessageKind) -> float | None:
        return self._timeouts.get(kind, self.default_timeout)

    def retry_for(self, kind: MessageKind) -> RetryPolicy | None:
        return self._retries.get(kind, self.default_retry)

    # -- sending --------------------------------------------------------------

    def register(self, kind: MessageKind, handler: RpcHandler) -> None:
        """Install the handler for ``kind``; one handler per kind."""
        if kind in self._handlers:
            raise TransportError(f"{self.name!r} already handles {kind.value!r}")
        self._handlers[kind] = handler

    def call(
        self,
        dst: str,
        kind: MessageKind,
        payload: bytes,
        *,
        timeout: float | None = None,
        retry: RetryPolicy | None = None,
    ) -> bytes:
        """Send a request and return the reply payload.

        Remote handler exceptions are re-raised here, chained to a
        :class:`RemoteInvocationError` naming the remote Core.  An
        exception that cannot itself be serialized arrives as a bare
        :class:`RemoteInvocationError` carrying its repr.  ``timeout``
        and ``retry`` override the per-kind configuration for this call.
        """
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            with tracer.span(f"rpc:{kind.value}", category="rpc", dst=dst):
                return self._call(dst, kind, payload, timeout=timeout, retry=retry)
        return self._call(dst, kind, payload, timeout=timeout, retry=retry)

    def _call(
        self,
        dst: str,
        kind: MessageKind,
        payload: bytes,
        *,
        timeout: float | None,
        retry: RetryPolicy | None,
    ) -> bytes:
        limit = timeout if timeout is not None else self.timeout_for(kind)
        policy = retry if retry is not None else self.retry_for(kind)
        started = self.transport.scheduler.clock.now()
        if policy is None or policy.max_attempts <= 1:
            frame = self._attempt(dst, kind, payload, limit)
        else:
            frame = policy.run(
                self.transport.scheduler,
                lambda: self._attempt(dst, kind, payload, limit),
                on_retry=self._retry_observer(dst, kind),
            )
        if self.metrics is not None:
            calls, durations = self._instruments_for(kind)
            calls.inc()
            durations.observe(self.transport.scheduler.clock.now() - started)
        assert isinstance(frame, bytes)
        if frame[:1] == _OK_PREFIX:
            return frame[1:]
        body = pickle.loads(frame[1:])
        if isinstance(body, BaseException):
            raise body from RemoteInvocationError(
                f"raised remotely at Core {dst!r} handling {kind.value!r}"
            )
        raise RemoteInvocationError(f"remote error at {dst!r}: {body}")

    def _instruments_for(self, kind: MessageKind) -> tuple:
        pair = self._instruments.get(kind)
        if pair is None:
            assert self.metrics is not None
            pair = (
                self.metrics.counter("rpc.calls", kind=kind.value),
                self.metrics.histogram("rpc.duration", kind=kind.value),
            )
            self._instruments[kind] = pair
        return pair

    def _attempt(
        self, dst: str, kind: MessageKind, payload: bytes, limit: float | None
    ) -> bytes:
        envelope = Envelope(src=self.name, dst=dst, kind=kind, payload=payload)
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            envelope.headers.update(tracer.context_headers())
        clock = self.transport.scheduler.clock
        started = clock.now()
        frame = self.transport.send(envelope, timeout=limit)
        elapsed = clock.now() - started
        if limit is not None and elapsed > limit:
            raise DeadlineExceededError(
                f"{kind.value!r} call from {self.name!r} to {dst!r} took "
                f"{elapsed:.3f}s, deadline was {limit:.3f}s"
            )
        return frame

    def _retry_observer(self, dst: str, kind: MessageKind) -> RetryObserver | None:
        hook = self.on_retry
        tracer = self.tracer
        metrics = self.metrics
        if hook is None and metrics is None and (tracer is None or not tracer.enabled):
            return None

        def observe(attempt: int, delay: float, error: BaseException) -> None:
            if metrics is not None:
                metrics.counter("rpc.retries", kind=kind.value).inc()
            if tracer is not None and tracer.enabled:
                current = tracer.current
                if current is not None:
                    current.set_attribute("attempt", attempt)
                    current.set_attribute("retry_error", repr(error))
            if hook is not None:
                hook(dst, kind, attempt, delay, error)

        return observe

    def post(self, dst: str, kind: MessageKind, payload: bytes) -> None:
        """Send a one-way message; the handler's reply (if any) is dropped.

        One-way means one-way: failures inside the *receiving* handler
        never propagate back here (they are logged and reported at the
        receiving boundary).  Reachability failures still raise, because
        they happen on the sending side.
        """
        headers = {ONEWAY_HEADER: "1"}
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            headers.update(tracer.context_headers())
        envelope = Envelope(
            src=self.name, dst=dst, kind=kind, payload=payload, headers=headers
        )
        if self.metrics is not None:
            self.metrics.counter("rpc.posts", kind=kind.value).inc()
        self.transport.post(envelope)

    def close(self) -> None:
        """Detach from the network (no further traffic in or out)."""
        self.transport.deregister(self.name)

    # -- receiving ------------------------------------------------------------

    def _dispatch(self, envelope: Envelope) -> bytes:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            parent = context_from_headers(envelope.headers)
            if parent is not None:
                with tracer.span(
                    f"recv:{envelope.kind.value}",
                    category="recv",
                    parent=parent,
                    src=envelope.src,
                ):
                    return self._handle(envelope)
        return self._handle(envelope)

    def _handle(self, envelope: Envelope) -> bytes:
        handler = self._handlers.get(envelope.kind)
        if handler is None:
            error = TransportError(
                f"node {self.name!r} has no handler for {envelope.kind.value!r}"
            )
            return self._error_frame(envelope, error)
        try:
            reply = handler(envelope.src, envelope.payload)
        except BaseException as exc:  # noqa: BLE001 - crossing by value
            return self._error_frame(envelope, exc)
        if not isinstance(reply, bytes):
            error = TransportError(
                f"handler for {envelope.kind.value!r} at {self.name!r} returned "
                f"{type(reply).__name__}, expected bytes"
            )
            return self._error_frame(envelope, error)
        if envelope.headers.get(ONEWAY_HEADER) == "1":
            # The sender dropped the reply before it was built; a bare
            # status byte acknowledges delivery without framing work.
            return _OK_EMPTY
        return _ok_frame(reply)

    def _error_frame(self, envelope: Envelope, exc: BaseException) -> bytes:
        if envelope.headers.get(ONEWAY_HEADER) == "1":
            # The sender is not listening; absorb the failure here.
            logger.warning(
                "one-way %s from %r failed at %r: %r",
                envelope.kind.value,
                envelope.src,
                self.name,
                exc,
            )
            if self.on_oneway_error is not None:
                self.on_oneway_error(envelope, exc)
            return _OK_EMPTY
        return _err_frame(_portable_exception(exc))


def _portable_exception(exc: BaseException) -> object:
    """Return ``exc`` if it survives serialization, else its repr."""
    try:
        pickle.loads(pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # noqa: BLE001
        return repr(exc)
    return exc
