"""Synchronous request/reply over the simulated network (the RMI analogue).

Each Core owns one :class:`RpcEndpoint`.  Handlers are registered per
:class:`~repro.net.messages.MessageKind` and receive the raw payload
bytes (the Core layer decides how each payload is serialized, because
invocation and movement payloads need complet-aware hooks).  Exceptions
raised by a handler are serialized into the reply frame and re-raised
*by value* at the caller — the same semantics a remote exception has in
RMI.
"""

from __future__ import annotations

import pickle
from collections.abc import Callable

from repro.errors import RemoteInvocationError, TransportError
from repro.net.messages import STATUS_ERROR, STATUS_OK, Envelope, MessageKind
from repro.net.simnet import SimNetwork

#: A handler consumes (source core name, payload bytes) and returns reply bytes.
RpcHandler = Callable[[str, bytes], bytes]


def _encode_frame(status: str, body: object) -> bytes:
    return pickle.dumps((status, body), protocol=pickle.HIGHEST_PROTOCOL)


def _decode_frame(data: bytes) -> tuple[str, object]:
    status, body = pickle.loads(data)
    return status, body


class RpcEndpoint:
    """One node's request/reply port on the simulated network."""

    def __init__(self, name: str, network: SimNetwork) -> None:
        self.name = name
        self.network = network
        self._handlers: dict[MessageKind, RpcHandler] = {}
        network.register(name, self._dispatch)

    def register(self, kind: MessageKind, handler: RpcHandler) -> None:
        """Install the handler for ``kind``; one handler per kind."""
        if kind in self._handlers:
            raise TransportError(f"{self.name!r} already handles {kind.value!r}")
        self._handlers[kind] = handler

    def call(self, dst: str, kind: MessageKind, payload: bytes) -> bytes:
        """Send a request and return the reply payload.

        Remote handler exceptions are re-raised here.  An exception that
        cannot itself be serialized arrives as :class:`RemoteInvocationError`
        carrying its repr.
        """
        envelope = Envelope(src=self.name, dst=dst, kind=kind, payload=payload)
        frame = self.network.send(envelope)
        status, body = _decode_frame(frame)
        if status == STATUS_OK:
            assert isinstance(body, bytes)
            return body
        if isinstance(body, BaseException):
            raise body
        raise RemoteInvocationError(f"remote error at {dst!r}: {body}")

    def post(self, dst: str, kind: MessageKind, payload: bytes) -> None:
        """Send a one-way message; the handler's reply (if any) is dropped."""
        envelope = Envelope(src=self.name, dst=dst, kind=kind, payload=payload)
        self.network.post(envelope)

    def close(self) -> None:
        """Detach from the network (no further traffic in or out)."""
        self.network.deregister(self.name)

    # -- receiving ------------------------------------------------------------

    def _dispatch(self, envelope: Envelope) -> bytes:
        handler = self._handlers.get(envelope.kind)
        if handler is None:
            error = TransportError(
                f"node {self.name!r} has no handler for {envelope.kind.value!r}"
            )
            return _encode_frame(STATUS_ERROR, error)
        try:
            reply = handler(envelope.src, envelope.payload)
        except BaseException as exc:  # noqa: BLE001 - crossing by value
            return _encode_frame(STATUS_ERROR, _portable_exception(exc))
        if not isinstance(reply, bytes):
            error = TransportError(
                f"handler for {envelope.kind.value!r} at {self.name!r} returned "
                f"{type(reply).__name__}, expected bytes"
            )
            return _encode_frame(STATUS_ERROR, error)
        return _encode_frame(STATUS_OK, reply)


def _portable_exception(exc: BaseException) -> object:
    """Return ``exc`` if it survives serialization, else its repr."""
    try:
        pickle.loads(pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # noqa: BLE001
        return repr(exc)
    return exc
