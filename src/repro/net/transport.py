"""The abstract Transport protocol: the pluggable substrate below RPC.

The paper runs Core-to-Core traffic on Java RMI over real sockets; this
reproduction historically ran everything over one in-process simulated
network.  This module is the seam that makes the substrate
interchangeable: :class:`Transport` names exactly the surface the
:class:`~repro.net.rpc.RpcEndpoint` and
:class:`~repro.net.peer.PeerInterface` depend on, and everything above
(invocation, movement, recovery, chaos) goes through it.

Two implementations ship:

- :class:`~repro.net.simnet.SimTransport` — the deterministic simulated
  network (virtual clock, configurable links, partitions).  Default
  backend for tests and benchmarks.
- :class:`~repro.net.tcp.TcpTransport` — real asyncio TCP sockets with
  length-prefixed framing, so Cores run as separate OS processes on one
  or many hosts (see :mod:`repro.cluster.launch`).

A transport is a *hub*: one instance can carry several local nodes
(simnet carries the whole cluster; a TCP hub usually carries the one
Core of its process plus an address book of remote peers).  Failure
injection goes through the capability-gated chaos hooks — a knob a
backend does not model raises
:class:`~repro.errors.TransportCapabilityError` instead of silently
doing nothing, and callers that want to degrade gracefully check
:meth:`Transport.supports` first.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter, deque
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import TransportCapabilityError, TransportError
from repro.net.messages import Envelope, MessageKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.scheduler import Scheduler

#: Handler installed by each node: consumes an envelope, returns reply bytes.
NodeHandler = Callable[[Envelope], bytes]

#: Bandwidth meaning "effectively infinite" (loopback, un-modelled links).
UNLIMITED = float("inf")


# -- capability names ---------------------------------------------------------

#: Crash/revive a node without deregistering it (``set_node_down``).
CAP_NODE_DOWN = "node_down"
#: Cut and restore individual links (``set_link(up=...)``).
CAP_LINK_STATE = "link_state"
#: Inject per-link delivery delay (``set_link(latency=...)``).
CAP_LATENCY = "latency"
#: Model finite link bandwidth (``set_link(bandwidth=...)``).
CAP_BANDWIDTH = "bandwidth"
#: Split the node set into isolated groups (``partition``).
CAP_PARTITION = "partition"
#: Deliveries charge deterministic virtual time to the scheduler.
CAP_VIRTUAL_TIME = "virtual_time"


@dataclass(slots=True)
class LinkStats:
    """Cumulative accounting for one directed link."""

    messages: int = 0
    bytes: int = 0
    seconds: float = 0.0

    def record(self, nbytes: int, seconds: float) -> None:
        self.messages += 1
        self.bytes += nbytes
        self.seconds += seconds


@dataclass(slots=True)
class NetworkStats:
    """Global accounting across one transport."""

    messages: int = 0
    bytes: int = 0
    seconds: float = 0.0
    by_kind: Counter = field(default_factory=Counter)

    def record(self, kind: MessageKind, nbytes: int, seconds: float) -> None:
        self.messages += 1
        self.bytes += nbytes
        self.seconds += seconds
        self.by_kind[kind] += 1


class TraceLog:
    """Bounded log of recent envelopes, formatted lazily.

    Appending stores a small tuple; the human-readable line (the hot-path
    cost of string formatting per message) is only built when someone
    actually iterates the log.
    """

    __slots__ = ("_entries",)

    def __init__(self, capacity: int) -> None:
        self._entries: deque[tuple[int, str, str, str, int]] = deque(maxlen=capacity)

    def append(self, envelope: Envelope) -> None:
        self._entries.append(
            (envelope.msg_id, envelope.src, envelope.dst,
             envelope.kind.value, len(envelope.payload))
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        for msg_id, src, dst, kind, nbytes in self._entries:
            yield f"[{msg_id}] {src} -> {dst} {kind} ({nbytes}B)"

    def clear(self) -> None:
        self._entries.clear()


class Transport(ABC):
    """Abstract Core-to-Core message substrate (connect/listen/send/close).

    Concrete transports provide three things:

    - **attachment**: local nodes :meth:`register` a handler (this is the
      "listen" side; a TCP hub opens a listener socket per node, simnet
      adds a dispatch entry);
    - **delivery**: :meth:`send` is synchronous request/reply returning
      the destination handler's bytes, :meth:`post` is fire-and-forget;
    - **introspection**: peer addressing (:meth:`nodes`, :meth:`is_up`,
      :meth:`can_reach`) and accounting (:attr:`stats`,
      :meth:`link_stats`, :attr:`trace`) with identical meaning on every
      backend, so envelope spans and link counters work the same over
      simnet and TCP.

    The chaos hooks (:meth:`set_node_down`, :meth:`set_link`,
    :meth:`partition`, :meth:`heal_partition`) have capability-gated
    default implementations raising
    :class:`~repro.errors.TransportCapabilityError`; backends override
    the ones they model and advertise them in :attr:`CAPABILITIES`.
    """

    #: Chaos/modelling knobs this backend implements (see ``CAP_*``).
    CAPABILITIES: frozenset[str] = frozenset()

    #: Timer scheduler whose clock stamps durations (virtual for simnet,
    #: real for TCP).  Set by concrete ``__init__``.
    scheduler: "Scheduler"
    #: Global accounting for traffic through this hub.
    stats: NetworkStats
    #: Bounded log of recent envelopes.
    trace: TraceLog

    # -- attachment ---------------------------------------------------------

    @abstractmethod
    def register(self, name: str, handler: NodeHandler) -> None:
        """Attach a local node (a Core) and start listening for it."""

    @abstractmethod
    def deregister(self, name: str) -> None:
        """Detach a node permanently (Core shutdown completed)."""

    # -- delivery -----------------------------------------------------------

    @abstractmethod
    def send(self, envelope: Envelope, timeout: float | None = None) -> bytes:
        """Deliver ``envelope`` and return the destination's reply bytes.

        ``timeout`` bounds the round trip in *real* seconds where the
        backend can enforce it (TCP); the simulated network ignores it
        because virtual-time deadlines are checked by the RPC layer.
        """

    @abstractmethod
    def post(self, envelope: Envelope) -> None:
        """Deliver ``envelope`` one-way; any reply bytes are discarded."""

    # -- addressing / reachability ------------------------------------------

    @abstractmethod
    def nodes(self) -> list[str]:
        """Sorted names of every node this hub can address."""

    @abstractmethod
    def is_up(self, name: str) -> bool:
        """Whether ``name`` is attached and not known to be down."""

    @abstractmethod
    def can_reach(self, src: str, dst: str) -> bool:
        """Would a message from ``src`` to ``dst`` be deliverable now?"""

    # -- accounting ---------------------------------------------------------

    @abstractmethod
    def link_stats(self, src: str, dst: str) -> LinkStats:
        """Cumulative accounting for the directed link ``src`` → ``dst``."""

    def transfer_time(self, src: str, dst: str, nbytes: int) -> float:
        """Predicted one-way transfer seconds (0.0 when not modelled)."""
        return 0.0

    def reset_stats(self) -> None:
        """Zero the global accounting (per-experiment measurement)."""
        self.stats = NetworkStats()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Shut the whole transport down (listeners, connections, threads)."""

    # -- chaos hooks (capability-gated) -------------------------------------

    def capabilities(self) -> frozenset[str]:
        return self.CAPABILITIES

    def supports(self, capability: str) -> bool:
        return capability in self.capabilities()

    def _require(self, capability: str, knob: str) -> None:
        if capability not in self.capabilities():
            raise TransportCapabilityError(
                f"{type(self).__name__} does not support {knob} "
                f"(capability {capability!r}; available: "
                f"{sorted(self.capabilities()) or 'none'})"
            )

    def set_node_down(self, name: str, down: bool = True) -> None:
        """Crash (or revive) a node without deregistering it."""
        self._require(CAP_NODE_DOWN, "crashing nodes")
        raise NotImplementedError  # pragma: no cover - capability mismatch

    def set_link(
        self,
        a: str,
        b: str,
        *,
        bandwidth: float | None = None,
        latency: float | None = None,
        up: bool | None = None,
        symmetric: bool = True,
    ) -> None:
        """Reconfigure the a→b link (and b→a unless ``symmetric=False``)."""
        if bandwidth is not None:
            self._require(CAP_BANDWIDTH, "bandwidth shaping")
        if latency is not None:
            self._require(CAP_LATENCY, "latency injection")
        if up is not None:
            self._require(CAP_LINK_STATE, "cutting links")
        raise NotImplementedError  # pragma: no cover - capability mismatch

    def partition(self, *groups: set[str]) -> None:
        """Split the network: traffic flows only within each group."""
        self._require(CAP_PARTITION, "partitions")
        raise NotImplementedError  # pragma: no cover - capability mismatch

    def heal_partition(self) -> None:
        """Remove any partition; link up/down state is unaffected."""
        self._require(CAP_PARTITION, "partitions")
        raise NotImplementedError  # pragma: no cover - capability mismatch


class TransportGroup(Transport):
    """Several per-node transports presented as one cluster-wide view.

    When every Core of a cluster runs its own hub (the TCP backend:
    one listener per Core), cluster-level code still wants one object to
    query reachability, aggregate accounting, and broadcast chaos to.
    The group routes :meth:`send`/:meth:`post` through the *source*
    node's hub, answers queries from the owning hub, and fans chaos
    hooks out to every member.
    """

    def __init__(self, members: dict[str, Transport]) -> None:
        if not members:
            raise TransportError("TransportGroup needs at least one member")
        #: node name -> the hub that owns (locally hosts) it.
        self._members = dict(members)
        first = next(iter(self._members.values()))
        self.scheduler = first.scheduler
        self.trace = first.trace

    def _owner(self, name: str) -> Transport:
        try:
            return self._members[name]
        except KeyError:
            raise TransportError(f"no transport in the group owns node {name!r}") from None

    def transports(self) -> list[Transport]:
        """The distinct member hubs (insertion order, deduplicated)."""
        seen: list[Transport] = []
        for transport in self._members.values():
            if all(transport is not other for other in seen):
                seen.append(transport)
        return seen

    # -- attachment: nodes attach to their own hub, not to the group --------

    def register(self, name: str, handler: NodeHandler) -> None:
        raise TransportError("register nodes on their own hub, not on the group")

    def deregister(self, name: str) -> None:
        self._owner(name).deregister(name)

    # -- delivery: route through the source's hub ---------------------------

    def send(self, envelope: Envelope, timeout: float | None = None) -> bytes:
        return self._owner(envelope.src).send(envelope, timeout)

    def post(self, envelope: Envelope) -> None:
        self._owner(envelope.src).post(envelope)

    # -- queries ------------------------------------------------------------

    def nodes(self) -> list[str]:
        names: set[str] = set()
        for transport in self.transports():
            names.update(transport.nodes())
        return sorted(names)

    def is_up(self, name: str) -> bool:
        if name in self._members:
            return self._members[name].is_up(name)
        return any(t.is_up(name) for t in self.transports())

    def can_reach(self, src: str, dst: str) -> bool:
        if src not in self._members:
            return False
        return self._members[src].can_reach(src, dst)

    def transfer_time(self, src: str, dst: str, nbytes: int) -> float:
        if src in self._members:
            return self._members[src].transfer_time(src, dst, nbytes)
        return 0.0

    # -- accounting: aggregate over members ---------------------------------

    @property
    def stats(self) -> NetworkStats:  # type: ignore[override]
        merged = NetworkStats()
        for transport in self.transports():
            member = transport.stats
            merged.messages += member.messages
            merged.bytes += member.bytes
            merged.seconds += member.seconds
            merged.by_kind.update(member.by_kind)
        return merged

    def link_stats(self, src: str, dst: str) -> LinkStats:
        if src in self._members:
            return self._members[src].link_stats(src, dst)
        return LinkStats()

    def reset_stats(self) -> None:
        for transport in self.transports():
            transport.reset_stats()

    # -- chaos: broadcast to every member -----------------------------------

    def capabilities(self) -> frozenset[str]:
        members = self.transports()
        caps = members[0].capabilities()
        for transport in members[1:]:
            caps = caps & transport.capabilities()
        return caps

    def set_node_down(self, name: str, down: bool = True) -> None:
        for transport in self.transports():
            transport.set_node_down(name, down)

    def set_link(self, a: str, b: str, **kwargs) -> None:
        for transport in self.transports():
            transport.set_link(a, b, **kwargs)

    def partition(self, *groups: set[str]) -> None:
        for transport in self.transports():
            transport.partition(*groups)

    def heal_partition(self) -> None:
        for transport in self.transports():
            transport.heal_partition()

    def close(self) -> None:
        for transport in self.transports():
            transport.close()
