"""Pickle-based serialization with pluggable complet-aware hooks.

The paper's mobility protocol rides on Java Serialization, intercepting
the graph traversal whenever it reaches a complet reference and applying
a per-reference-type routine (recurse for ``pull``, copy for
``duplicate``, type-only for ``stamp``, token for ``link``).  The Python
analogue is pickle's ``persistent_id`` / ``persistent_load`` pair: the
:class:`Serializer` here accepts an *encode hook* called for every object
the pickler visits (returning a token diverts the object out of the
stream) and a *decode hook* that materializes tokens on the other side.
The complet layer (:mod:`repro.complet.marshal`) supplies hooks bound to
the operation in progress; plain control messages use no hooks.
"""

from __future__ import annotations

import io
import pickle
from collections.abc import Callable

from repro.errors import FarGoError, SerializationError

#: An encode hook maps an object to a token (any picklable value) or None
#: to let pickle serialize the object normally.
EncodeHook = Callable[[object], object | None]
#: A decode hook maps a token back to a live object at the receiving side.
DecodeHook = Callable[[object], object]


class _HookedPickler(pickle.Pickler):
    def __init__(self, buffer: io.BytesIO, encode_hook: EncodeHook | None) -> None:
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self._encode_hook = encode_hook

    def persistent_id(self, obj: object) -> object | None:  # noqa: D102
        if self._encode_hook is None:
            return None
        return self._encode_hook(obj)


class _HookedUnpickler(pickle.Unpickler):
    def __init__(self, buffer: io.BytesIO, decode_hook: DecodeHook | None) -> None:
        super().__init__(buffer)
        self._decode_hook = decode_hook

    def persistent_load(self, token: object) -> object:  # noqa: D102
        if self._decode_hook is None:
            raise SerializationError(
                "stream contains persistent tokens but no decode hook was given"
            )
        return self._decode_hook(token)


class Serializer:
    """Serialize and deserialize payloads crossing a Core boundary.

    A serializer without hooks is a plain (but still isolating) pickler;
    supplying hooks turns it into the reference-aware marshaler the
    movement and invocation units need.
    """

    def __init__(
        self,
        encode_hook: EncodeHook | None = None,
        decode_hook: DecodeHook | None = None,
    ) -> None:
        self._encode_hook = encode_hook
        self._decode_hook = decode_hook

    def dumps(self, obj: object) -> bytes:
        buffer = io.BytesIO()
        try:
            _HookedPickler(buffer, self._encode_hook).dump(obj)
        except FarGoError:
            raise  # hook errors (boundary violations, ...) keep their type
        except Exception as exc:  # noqa: BLE001 - pickle raises many types
            raise SerializationError(f"cannot serialize {type(obj).__name__}: {exc}") from exc
        return buffer.getvalue()

    def loads(self, data: bytes) -> object:
        buffer = io.BytesIO(data)
        try:
            return _HookedUnpickler(buffer, self._decode_hook).load()
        except FarGoError:
            raise  # hook errors (stamp resolution, ...) keep their type
        except Exception as exc:  # noqa: BLE001
            raise SerializationError(f"cannot deserialize payload: {exc}") from exc

    def roundtrip(self, obj: object) -> object:
        """Deep-copy ``obj`` through the wire format.

        Used for by-value parameter passing between *colocated* complets:
        the paper requires complets to be "always considered remote to
        each other with respect to parameter passing", so even a local
        invocation copies its arguments exactly as the wire would.
        """
        return self.loads(self.dumps(obj))


#: Hook-less serializer for control payloads.
PLAIN = Serializer()
