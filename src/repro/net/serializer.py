"""Pickle-based serialization with pluggable complet-aware hooks.

The paper's mobility protocol rides on Java Serialization, intercepting
the graph traversal whenever it reaches a complet reference and applying
a per-reference-type routine (recurse for ``pull``, copy for
``duplicate``, type-only for ``stamp``, token for ``link``).  The Python
analogue is pickle's ``persistent_id`` / ``persistent_load`` pair: the
:class:`Serializer` here accepts an *encode hook* called for every object
the pickler visits (returning a token diverts the object out of the
stream) and a *decode hook* that materializes tokens on the other side.
The complet layer (:mod:`repro.complet.marshal`) supplies hooks bound to
the operation in progress; plain control messages use no hooks.
"""

from __future__ import annotations

import io
import pickle
from collections.abc import Callable

from repro.errors import FarGoError, SerializationError

#: An encode hook maps an object to a token (any picklable value) or None
#: to let pickle serialize the object normally.
EncodeHook = Callable[[object], object | None]
#: A decode hook maps a token back to a live object at the receiving side.
DecodeHook = Callable[[object], object]


class SerializerStats:
    """Process-wide serializer counters (deterministic, bench-facing).

    All :class:`Serializer` instances feed the same tallies so a bench
    scenario can measure total pickling work regardless of which unit
    (movement, invocation, persistence, control plane) triggered it.
    """

    __slots__ = ("dumps_calls", "loads_calls", "bytes_out", "buffers_allocated")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.dumps_calls = 0
        self.loads_calls = 0
        self.bytes_out = 0
        self.buffers_allocated = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "dumps_calls": self.dumps_calls,
            "loads_calls": self.loads_calls,
            "bytes_out": self.bytes_out,
            "buffers_allocated": self.buffers_allocated,
        }


#: Shared counters; ``STATS.reset()`` scopes a measurement window.
STATS = SerializerStats()


class _HookedPickler(pickle.Pickler):
    def __init__(self, buffer: io.BytesIO, encode_hook: EncodeHook | None) -> None:
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self._encode_hook = encode_hook

    def persistent_id(self, obj: object) -> object | None:  # noqa: D102
        if self._encode_hook is None:
            return None
        return self._encode_hook(obj)


class _HookedUnpickler(pickle.Unpickler):
    def __init__(self, buffer: io.BytesIO, decode_hook: DecodeHook | None) -> None:
        super().__init__(buffer)
        self._decode_hook = decode_hook

    def persistent_load(self, token: object) -> object:  # noqa: D102
        if self._decode_hook is None:
            raise SerializationError(
                "stream contains persistent tokens but no decode hook was given"
            )
        return self._decode_hook(token)


class Serializer:
    """Serialize and deserialize payloads crossing a Core boundary.

    A serializer without hooks is a plain (but still isolating) pickler;
    supplying hooks turns it into the reference-aware marshaler the
    movement and invocation units need.
    """

    def __init__(
        self,
        encode_hook: EncodeHook | None = None,
        decode_hook: DecodeHook | None = None,
    ) -> None:
        self._encode_hook = encode_hook
        self._decode_hook = decode_hook
        self._buffer: io.BytesIO | None = None
        self._pickler: _HookedPickler | None = None
        self._busy = False

    def dumps(self, obj: object) -> bytes:
        STATS.dumps_calls += 1
        if self._busy:
            # An encode hook re-entered dumps() on the same serializer
            # (e.g. a nested marshal); fall back to a throwaway buffer
            # rather than corrupt the in-flight stream.
            STATS.buffers_allocated += 1
            buffer = io.BytesIO()
            pickler = _HookedPickler(buffer, self._encode_hook)
            reusing = False
        else:
            buffer_opt = self._buffer
            pickler_opt = self._pickler
            if buffer_opt is None or pickler_opt is None:
                STATS.buffers_allocated += 1
                buffer = self._buffer = io.BytesIO()
                pickler = self._pickler = _HookedPickler(buffer, self._encode_hook)
            else:
                buffer, pickler = buffer_opt, pickler_opt
                buffer.seek(0)
                buffer.truncate()
                pickler.clear_memo()
            self._busy = True
            reusing = True
        try:
            pickler.dump(obj)
        except FarGoError:
            self._buffer = self._pickler = None  # framer state is suspect
            raise  # hook errors (boundary violations, ...) keep their type
        except Exception as exc:  # noqa: BLE001 - pickle raises many types
            self._buffer = self._pickler = None
            raise SerializationError(f"cannot serialize {type(obj).__name__}: {exc}") from exc
        finally:
            if reusing:
                self._busy = False
        data = buffer.getvalue()
        STATS.bytes_out += len(data)
        return data

    def loads(self, data: bytes) -> object:
        STATS.loads_calls += 1
        buffer = io.BytesIO(data)
        try:
            return _HookedUnpickler(buffer, self._decode_hook).load()
        except FarGoError:
            raise  # hook errors (stamp resolution, ...) keep their type
        except Exception as exc:  # noqa: BLE001
            raise SerializationError(f"cannot deserialize payload: {exc}") from exc

    def roundtrip(self, obj: object) -> object:
        """Deep-copy ``obj`` through the wire format.

        Used for by-value parameter passing between *colocated* complets:
        the paper requires complets to be "always considered remote to
        each other with respect to parameter passing", so even a local
        invocation copies its arguments exactly as the wire would.
        """
        return self.loads(self.dumps(obj))


#: Hook-less serializer for control payloads.
PLAIN = Serializer()
