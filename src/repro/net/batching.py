"""Envelope batching: several logical one-way messages per link transfer.

The hot paths fixed in earlier rounds (struct framing, ack coalescing)
shrank the *per-message* cost; this layer attacks the *message count*
itself — the explicitly-open remainder of ROADMAP item 5.  A
:class:`BatchingTransport` wraps any concrete
:class:`~repro.net.transport.Transport` and coalesces fire-and-forget
traffic (tracker updates, event notifications, location gossip) per
directed link into single :data:`~repro.net.messages.MessageKind.BATCH`
envelopes, amortizing per-message framing and delivery overhead.

Correctness rules:

- **Only one-way traffic batches.**  Synchronous ``send`` round trips
  pass straight through — but first flush anything queued for the same
  link, so a post followed by a request to the same destination is
  always observed in order.
- **Per-link FIFO.**  A batch preserves enqueue order, and flushes are
  per ``(src, dst)`` queue, so the wrapped transport's ordering
  guarantees carry over.
- **Bounded delay.**  A queue flushes when it reaches the policy's
  message or byte budget, when its deadline timer (scheduled on the
  transport's own scheduler — virtual or real clock alike) fires, on a
  same-link ``send``, and on ``close``/``deregister``.

Failure semantics stay fire-and-forget: a flush that cannot deliver
(node down, partition) drops the batch exactly as the wrapped
transport's ``post`` would have dropped each message.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.errors import FarGoError
from repro.net.messages import Envelope, MessageKind
from repro.net.serializer import PLAIN
from repro.net.transport import LinkStats, NodeHandler, Transport

logger = logging.getLogger(__name__)


@dataclass(frozen=True, slots=True)
class BatchPolicy:
    """Flush thresholds for one :class:`BatchingTransport`."""

    #: Flush when a link's queue reaches this many envelopes.
    max_messages: int = 16
    #: Flush when a link's queued payload bytes reach this budget.
    max_bytes: int = 64 * 1024
    #: Flush at the latest this many (clock) seconds after the first
    #: message entered an empty queue.
    max_delay: float = 0.005


@dataclass(slots=True)
class BatchStats:
    """Occupancy accounting for the bench and the shell."""

    batches: int = 0
    batched_messages: int = 0
    passthrough_posts: int = 0
    dropped_messages: int = 0
    flush_triggers: dict = field(default_factory=dict)

    def record_flush(self, trigger: str, occupancy: int) -> None:
        self.batches += 1
        self.batched_messages += occupancy
        self.flush_triggers[trigger] = self.flush_triggers.get(trigger, 0) + 1

    @property
    def mean_occupancy(self) -> float:
        if self.batches == 0:
            return 0.0
        return self.batched_messages / self.batches

    def snapshot(self) -> dict:
        return {
            "batches": self.batches,
            "batched_messages": self.batched_messages,
            "passthrough_posts": self.passthrough_posts,
            "dropped_messages": self.dropped_messages,
            "mean_occupancy": round(self.mean_occupancy, 6),
            "flush_triggers": dict(self.flush_triggers),
        }


class _LinkQueue:
    __slots__ = ("envelopes", "bytes", "timer")

    def __init__(self) -> None:
        self.envelopes: list[Envelope] = []
        self.bytes = 0
        self.timer = None


class BatchingTransport(Transport):
    """A batching decorator over any concrete transport.

    Registration wraps each node handler so BATCH envelopes unpack back
    into their member envelopes on delivery; everything else (addressing,
    accounting, chaos capabilities, TCP peer wiring) delegates to the
    wrapped transport.
    """

    def __init__(self, inner: Transport, policy: BatchPolicy | None = None) -> None:
        self.inner = inner
        self.policy = policy if policy is not None else BatchPolicy()
        self.scheduler = inner.scheduler
        self.trace = inner.trace
        self.batch_stats = BatchStats()
        self._queues: dict[tuple[str, str], _LinkQueue] = {}

    # -- attachment ---------------------------------------------------------

    def register(self, name: str, handler: NodeHandler) -> None:
        self.inner.register(name, _unbatching_handler(handler))

    def deregister(self, name: str) -> None:
        for key in list(self._queues):
            if name in key:
                self._flush(key, "deregister")
        self.inner.deregister(name)

    # -- delivery -----------------------------------------------------------

    def send(self, envelope: Envelope, timeout: float | None = None) -> bytes:
        # A request must not overtake earlier one-ways on the same link.
        self._flush((envelope.src, envelope.dst), "send")
        return self.inner.send(envelope, timeout)

    def post(self, envelope: Envelope) -> None:
        if envelope.kind is MessageKind.BATCH:
            self.inner.post(envelope)  # already aggregated; never re-batch
            return
        key = (envelope.src, envelope.dst)
        queue = self._queues.get(key)
        if queue is None:
            queue = self._queues[key] = _LinkQueue()
        queue.envelopes.append(envelope)
        queue.bytes += len(envelope.payload)
        if len(queue.envelopes) >= self.policy.max_messages:
            self._flush(key, "count")
        elif queue.bytes >= self.policy.max_bytes:
            self._flush(key, "bytes")
        elif queue.timer is None:
            queue.timer = self.scheduler.call_after(
                self.policy.max_delay, self._flush, key, "deadline"
            )

    def flush_all(self, trigger: str = "explicit") -> None:
        """Flush every pending queue now (tests, shutdown, barriers)."""
        for key in list(self._queues):
            self._flush(key, trigger)

    def _flush(self, key: tuple[str, str], trigger: str) -> None:
        queue = self._queues.get(key)
        if queue is None:
            return
        if queue.timer is not None:
            queue.timer.cancel()
            queue.timer = None
        if not queue.envelopes:
            return
        envelopes, nbytes = queue.envelopes, queue.bytes
        queue.envelopes, queue.bytes = [], 0
        src, dst = key
        try:
            if len(envelopes) == 1:
                # No aggregation win for a lone message; skip the wrapper.
                self.batch_stats.passthrough_posts += 1
                self.inner.post(envelopes[0])
                return
            batch = Envelope(
                src=src,
                dst=dst,
                kind=MessageKind.BATCH,
                payload=PLAIN.dumps(envelopes),
            )
            self.batch_stats.record_flush(trigger, len(envelopes))
            self.inner.post(batch)
        except FarGoError:
            # Same contract as post(): fire-and-forget traffic to an
            # unreachable destination is dropped, not raised.
            self.batch_stats.dropped_messages += len(envelopes)
            logger.debug(
                "dropped batch of %d one-way message(s) %s -> %s (%dB)",
                len(envelopes), src, dst, nbytes,
            )

    # -- addressing / accounting: delegate ----------------------------------

    def nodes(self) -> list[str]:
        return self.inner.nodes()

    def is_up(self, name: str) -> bool:
        return self.inner.is_up(name)

    def can_reach(self, src: str, dst: str) -> bool:
        return self.inner.can_reach(src, dst)

    def link_stats(self, src: str, dst: str) -> LinkStats:
        return self.inner.link_stats(src, dst)

    def transfer_time(self, src: str, dst: str, nbytes: int) -> float:
        return self.inner.transfer_time(src, dst, nbytes)

    @property
    def stats(self):  # type: ignore[override]
        return self.inner.stats

    def reset_stats(self) -> None:
        self.inner.reset_stats()

    # -- chaos: delegate (capabilities are the wrapped backend's) ------------

    def capabilities(self) -> frozenset[str]:
        return self.inner.capabilities()

    def set_node_down(self, name: str, down: bool = True) -> None:
        self.inner.set_node_down(name, down)

    def set_link(self, a: str, b: str, **kwargs) -> None:
        self.inner.set_link(a, b, **kwargs)

    def partition(self, *groups: set[str]) -> None:
        self.inner.partition(*groups)

    def heal_partition(self) -> None:
        self.inner.heal_partition()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        self.flush_all("close")
        self.inner.close()

    def __getattr__(self, name: str):
        # Backend extras (local_address/add_peer/probe on TCP hubs) pass
        # through so cluster wiring duck-typing keeps working.
        return getattr(self.inner, name)

    def __repr__(self) -> str:
        return f"<BatchingTransport over {self.inner!r}>"


def _unbatching_handler(handler: NodeHandler) -> NodeHandler:
    def unbatching(envelope: Envelope) -> bytes:
        if envelope.kind is not MessageKind.BATCH:
            return handler(envelope)
        members = PLAIN.loads(envelope.payload)
        for member in members:  # type: ignore[union-attr]
            try:
                handler(member)
            except Exception:  # noqa: BLE001 - one-way delivery is isolated
                logger.warning(
                    "handler failed for batched one-way %s", member.describe(),
                    exc_info=True,
                )
        return b""

    return unbatching
