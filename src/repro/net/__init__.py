"""Network substrate: the layer below the Core's Peer Interface.

The paper implements Core-to-Core communication on Java RMI over real
sockets.  Here the same roles are played by:

- :mod:`repro.net.simnet` — a simulated network of named nodes connected
  by links with configurable bandwidth and latency (mutable at runtime),
  partitions, and full transfer accounting (messages, bytes, seconds).
- :mod:`repro.net.serializer` — pickle-based serialization with
  pluggable persistent-id hooks; *every* payload crossing a link is
  serialized and deserialized, so no object identity ever leaks between
  Cores (the isolation separate JVMs gave the original system).
- :mod:`repro.net.rpc` — synchronous request/reply (the RMI analogue)
  plus one-way posts, with by-value exception propagation.
- :mod:`repro.net.peer` — the Peer Interface of Figure 1: the typed
  facade Cores use to talk to each other.
"""

from repro.net.messages import Envelope, MessageKind
from repro.net.serializer import Serializer
from repro.net.simnet import Link, LinkStats, SimNetwork
from repro.net.rpc import RpcEndpoint
from repro.net.peer import PeerInterface

__all__ = [
    "Envelope",
    "MessageKind",
    "Serializer",
    "Link",
    "LinkStats",
    "SimNetwork",
    "RpcEndpoint",
    "PeerInterface",
]
