"""Network substrate: the layer below the Core's Peer Interface.

The paper implements Core-to-Core communication on Java RMI over real
sockets.  Here the substrate is pluggable behind one abstract protocol:

- :mod:`repro.net.transport` — the abstract :class:`Transport` protocol
  (attach/send/post/close, peer addressing, stats and trace hooks,
  capability-gated chaos) that :class:`RpcEndpoint` and
  :class:`PeerInterface` depend on, plus :class:`TransportGroup` for
  presenting per-Core hubs as one cluster-wide view.
- :mod:`repro.net.simnet` — :class:`SimTransport`, a simulated network
  of named nodes connected by links with configurable bandwidth and
  latency (mutable at runtime), partitions, and full transfer
  accounting.  Deterministic; the default backend for tests.
- :mod:`repro.net.tcp` — :class:`TcpTransport`, real asyncio TCP
  sockets with the length-prefixed framing of :mod:`repro.net.framing`,
  so Cores run as separate OS processes (see :mod:`repro.cluster.launch`).
- :mod:`repro.net.serializer` — pickle-based serialization with
  pluggable persistent-id hooks; *every* payload crossing a link is
  serialized and deserialized, so no object identity ever leaks between
  Cores (the isolation separate JVMs gave the original system).
- :mod:`repro.net.rpc` — synchronous request/reply (the RMI analogue)
  plus one-way posts, with by-value exception propagation.
- :mod:`repro.net.peer` — the Peer Interface of Figure 1: the typed
  facade Cores use to talk to each other.
- :mod:`repro.net.batching` — :class:`BatchingTransport`, a decorator
  over any backend that coalesces one-way envelopes per link into
  single :data:`MessageKind.BATCH` transfers under a
  :class:`BatchPolicy` (count/bytes/deadline flush).
"""

from repro.errors import TransportCapabilityError, TransportError
from repro.net.framing import FrameDecoder, FramingError
from repro.net.messages import Envelope, MessageKind
from repro.net.serializer import Serializer
from repro.net.transport import (
    CAP_BANDWIDTH,
    CAP_LATENCY,
    CAP_LINK_STATE,
    CAP_NODE_DOWN,
    CAP_PARTITION,
    CAP_VIRTUAL_TIME,
    LinkStats,
    NetworkStats,
    TraceLog,
    Transport,
    TransportGroup,
)
from repro.net.simnet import Link, SimNetwork, SimTransport, as_transport
from repro.net.tcp import TcpTransport
from repro.net.rpc import RpcEndpoint
from repro.net.peer import PeerInterface
from repro.net.batching import BatchingTransport, BatchPolicy, BatchStats

__all__ = [
    "BatchPolicy",
    "BatchStats",
    "BatchingTransport",
    "Envelope",
    "MessageKind",
    "Serializer",
    "Link",
    "LinkStats",
    "NetworkStats",
    "TraceLog",
    "Transport",
    "TransportGroup",
    "TransportError",
    "TransportCapabilityError",
    "SimNetwork",
    "SimTransport",
    "TcpTransport",
    "as_transport",
    "FrameDecoder",
    "FramingError",
    "RpcEndpoint",
    "PeerInterface",
    "CAP_NODE_DOWN",
    "CAP_LINK_STATE",
    "CAP_LATENCY",
    "CAP_BANDWIDTH",
    "CAP_PARTITION",
    "CAP_VIRTUAL_TIME",
]
