"""Wire message kinds and the envelope frame.

Each inter-Core interaction is one :class:`Envelope` carrying a kind tag
and an opaque payload.  The kinds enumerate the complete Core-to-Core
protocol of the runtime; having them in one place makes the protocol
auditable and lets tests assert on traffic shape (e.g. that a group move
of N complets is exactly one ``MOVE_COMPLET`` message — the paper's
single-stream claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class MessageKind(str, Enum):
    """Every message kind of the Core-to-Core protocol."""

    # Invocation unit
    INVOKE = "invoke"                       # forward a method invocation
    # Movement unit
    MOVE_COMPLET = "move_complet"           # carry a marshaled movement group
    MOVE_REQUEST = "move_request"           # ask the hosting Core to move a complet
    CLONE_REQUEST = "clone_request"         # ask for a marshaled copy (remote duplicate)
    # Reference handler
    TRACKER_LOOKUP = "tracker_lookup"       # resolve a tracker address / walk a chain
    TRACKER_UPDATE = "tracker_update"       # (de)register a remote pointer
    # Location registry (the paper's future-work naming scheme)
    LOCATION_UPDATE = "location_update"     # complet arrived somewhere: tell its home
    LOCATION_QUERY = "location_query"       # ask a home Core where a complet is
    # Naming service
    NAME_BIND = "name_bind"
    NAME_LOOKUP = "name_lookup"
    NAME_UNBIND = "name_unbind"
    NAME_LIST = "name_list"
    # Remote instantiation
    INSTANTIATE = "instantiate"
    # Liveness detection
    HEARTBEAT = "heartbeat"                 # failure-detector ping
    # Monitoring / events
    EVENT_NOTIFY = "event_notify"           # deliver a fired event to a listener
    EVENT_SUBSCRIBE = "event_subscribe"     # register a remote listener
    EVENT_SUBSCRIBE_COMPLET = "event_subscribe_complet"  # register a complet listener
    EVENT_UNSUBSCRIBE = "event_unsubscribe"
    PROFILE_PROBE = "profile_probe"         # measure latency/bandwidth
    PROFILE_QUERY = "profile_query"         # read a remote Core's profile value
    # Administration (shell / viewer)
    ADMIN_QUERY = "admin_query"             # layout snapshots, complet lists
    CORE_SHUTDOWN = "core_shutdown"         # shutdown notification
    # Transport-level aggregation (repro.net.batching)
    BATCH = "batch"                         # several one-way envelopes, one transfer

    def __str__(self) -> str:  # pragma: no cover - display only
        return self.value


@dataclass(slots=True)
class Envelope:
    """One framed message travelling between two Cores."""

    src: str
    dst: str
    kind: MessageKind
    payload: bytes
    msg_id: int = 0
    headers: dict[str, str] = field(default_factory=dict)

    def describe(self) -> str:
        """Short human-readable form for traces and the viewer."""
        return f"[{self.msg_id}] {self.src} -> {self.dst} {self.kind.value} ({len(self.payload)}B)"


#: Envelope headers carrying the distributed-tracing context.  Every
#: cross-Core interaction of a traced operation carries these, which is
#: how one logical operation yields one span tree spanning Cores.
TRACE_ID_HEADER = "trace-id"
SPAN_ID_HEADER = "span-id"
