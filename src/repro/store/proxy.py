"""Lazy-resolving payload proxies and the per-Core store client.

A :class:`StoreProxy` is what actually crosses the transport in place of
an offloaded payload: a content key plus a backend locator, a few dozen
bytes regardless of the payload's size.  The marshal layer substitutes
proxies for streams above the client's ``offload_threshold`` and
resolves them back on the receiving side (see
:mod:`repro.complet.marshal`).

The :class:`StoreClient` is one Core's seat at the store: it applies the
threshold, keeps a small LRU *resolve cache* so repeat readers of an
unchanged payload (the ``duplicate``/``stamp`` copy-on-first-read case)
pay store-hit latency at most once, and feeds hit/miss/bytes-saved
counters into the Core's :class:`~repro.metrics.registry.MetricsRegistry`
and spans into its tracer.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.store.store import ObjectStore, StoreKey, store_for_locator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.metrics.registry import MetricsRegistry
    from repro.trace.tracer import Tracer

#: Payloads at or above this many bytes are shipped as proxies.
DEFAULT_OFFLOAD_THRESHOLD = 64 * 1024

#: Entries kept in a client's resolve cache.
DEFAULT_RESOLVE_CACHE_CAPACITY = 32


@dataclass(frozen=True, slots=True)
class StoreProxy:
    """A payload travelling by reference: content key + backend locator.

    Proxies are plain picklable values; resolving one goes through the
    receiving Core's :class:`StoreClient` when it has one (cache,
    metrics), or directly through :meth:`fetch` otherwise.
    """

    key: StoreKey
    locator: tuple

    def fetch(self) -> bytes:
        """Resolve directly against the backend the locator names."""
        return store_for_locator(self.locator).get(self.key)

    def release(self) -> None:
        """Drop this proxy's store reference (after a successful read)."""
        store_for_locator(self.locator).evict(self.key)

    def __repr__(self) -> str:
        return f"<StoreProxy {self.key.short()} {self.key.size}B @{self.locator[0]}>"


class StoreClient:
    """One Core's interface to an :class:`ObjectStore`.

    ``offload`` turns large payload bytes into proxies on the sending
    side; ``resolve`` turns proxies back into bytes on the receiving
    side, consulting the LRU resolve cache first.  With ``release=True``
    (the movement/invocation protocol's mode) a resolve also drops the
    proxy's store reference, balancing the sender's put so transient
    payloads never accumulate.
    """

    def __init__(
        self,
        store: ObjectStore,
        *,
        threshold: int = DEFAULT_OFFLOAD_THRESHOLD,
        cache_capacity: int = DEFAULT_RESOLVE_CACHE_CAPACITY,
        metrics: "MetricsRegistry | None" = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        self.store = store
        self.threshold = threshold
        self.cache_capacity = cache_capacity
        self.tracer = tracer
        self._cache: OrderedDict[StoreKey, bytes] = OrderedDict()

        class _LocalCounter:
            """Standalone accumulator when no registry is attached."""

            __slots__ = ("value",)

            def __init__(self) -> None:
                self.value = 0.0

            def inc(self, amount: float = 1.0) -> None:
                self.value += amount

        if metrics is not None:
            counter = metrics.counter
        else:
            counter = lambda name: _LocalCounter()  # noqa: E731
        self._offloads = counter("store.offloads")
        self._bytes_saved = counter("store.bytes_saved")
        self._resolves = counter("store.resolves")
        self._cache_hits = counter("store.cache_hits")
        self._store_hits = counter("store.store_hits")
        self._misses = counter("store.misses")

    # -- sending side -------------------------------------------------------

    def offload(self, data: bytes, *, kind: str = "payload") -> "bytes | StoreProxy":
        """``data`` itself below the threshold, else a proxy for it."""
        if len(data) < self.threshold:
            return data
        if self.tracer is not None and self.tracer.enabled:
            with self.tracer.span(
                "store:offload", category="store", kind=kind, size=len(data)
            ):
                key = self.store.put(data)
        else:
            key = self.store.put(data)
        proxy = StoreProxy(key, self.store.locator())
        self._offloads.inc()
        # What the transport will not carry: the payload minus the proxy's
        # (approximately constant, ~100B pickled) wire footprint.
        self._bytes_saved.inc(max(0, len(data) - 128))
        return proxy

    # -- receiving side -----------------------------------------------------

    def resolve(self, obj: "bytes | StoreProxy", *, release: bool = False) -> bytes:
        """Payload bytes for ``obj`` (a pass-through for inline bytes)."""
        if not isinstance(obj, StoreProxy):
            return obj
        if self.tracer is not None and self.tracer.enabled:
            with self.tracer.span(
                "store:resolve", category="store",
                key=obj.key.short(), size=obj.key.size,
            ):
                return self._resolve_proxy(obj, release)
        return self._resolve_proxy(obj, release)

    def _resolve_proxy(self, proxy: StoreProxy, release: bool) -> bytes:
        self._resolves.inc()
        key = proxy.key
        data = self._cache.get(key)
        if data is not None:
            self._cache.move_to_end(key)
            self._cache_hits.inc()
        else:
            try:
                if self.store.contains(key):
                    data = self.store.get(key)
                else:
                    data = proxy.fetch()
            except Exception:
                self._misses.inc()
                raise
            self._store_hits.inc()
            self._cache[key] = data
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_capacity:
                self._cache.popitem(last=False)
        if release:
            self.release(proxy)
        return data

    def release(self, proxy: StoreProxy) -> None:
        """Drop ``proxy``'s store reference (read accounting is settled)."""
        if self.store.contains(proxy.key):
            self.store.evict(proxy.key)
        else:
            try:
                proxy.release()
            except Exception:  # noqa: BLE001 - release is best-effort
                pass

    # -- introspection ------------------------------------------------------

    def cache_len(self) -> int:
        return len(self._cache)

    def stats_snapshot(self) -> dict:
        """Client-side counters, for admin surfaces and benches."""
        return {
            "threshold": self.threshold,
            "offloads": int(self._offloads.value),
            "bytes_saved": int(self._bytes_saved.value),
            "resolves": int(self._resolves.value),
            "cache_hits": int(self._cache_hits.value),
            "store_hits": int(self._store_hits.value),
            "misses": int(self._misses.value),
            "cache_entries": len(self._cache),
        }
