"""Large-payload offloading: a pluggable proxy object store.

Heavy payloads (marshaled movement groups, clone streams, bulky
invocation arguments) are ``put`` into a shared :class:`ObjectStore`
once and cross the transport as tiny lazy-resolving
:class:`StoreProxy` references, so moving a complet with megabytes of
state costs O(reference) wire bytes instead of O(state).  See
``docs/STORE.md`` for the design and tuning knobs, and ROADMAP item 2
for the motivation.

Enable per cluster with ``Cluster(..., store="memory")`` (or ``"file"``,
or any :class:`ObjectStore` instance) — the marshal layer in
:mod:`repro.complet.marshal` does the substitution transparently above
the client's ``offload_threshold``.
"""

from repro.errors import StoreError, StoreMissError
from repro.store.proxy import (
    DEFAULT_OFFLOAD_THRESHOLD,
    DEFAULT_RESOLVE_CACHE_CAPACITY,
    StoreClient,
    StoreProxy,
)
from repro.store.store import (
    FileStore,
    InMemoryStore,
    ObjectStore,
    StoreEntryInfo,
    StoreKey,
    StoreStats,
    store_for_locator,
)

__all__ = [
    "DEFAULT_OFFLOAD_THRESHOLD",
    "DEFAULT_RESOLVE_CACHE_CAPACITY",
    "FileStore",
    "InMemoryStore",
    "ObjectStore",
    "StoreClient",
    "StoreEntryInfo",
    "StoreError",
    "StoreKey",
    "StoreMissError",
    "StoreProxy",
    "StoreStats",
    "store_for_locator",
]
