"""Content-keyed object stores: the shared substrate below payload proxies.

Cross-Core traffic historically shipped every payload — marshaled
movement groups, clone streams, bulky invocation arguments — through the
transport in full.  An :class:`ObjectStore` decouples *placement* from
*transfer*: the sender ``put``s the bytes once and ships a tiny
:class:`~repro.store.proxy.StoreProxy` naming the entry; readers ``get``
the bytes out of band and ``evict`` their reference when done.

Entries are **content-keyed**: the :class:`StoreKey` is a digest of the
bytes plus their length, so putting the same payload twice lands on one
entry (with its reference count tracking how many shipped proxies are
still outstanding).  Content keying is also what gives ``duplicate`` /
``stamp`` relocation semantics their copy-on-first-read behaviour — an
*unchanged* complet marshals to the same bytes, hence the same key, so a
destination that already resolved the entry hits its local cache; any
mutation bumps the anchor's state version, invalidates the clone-stream
cache, and the fresh marshal lands under a *new* key (version-stamped
invalidation without any coordination).

Two backends ship:

- :class:`InMemoryStore` — one shared dict, for the in-process backends
  (the simulated network, loopback TCP hubs in one process).
- :class:`FileStore` — a directory of blob files with sidecar refcounts,
  readable across OS processes (the multi-process launcher's shape).
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import weakref
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path

from repro.errors import StoreError, StoreMissError

#: Locator tags carried by proxies (see :meth:`ObjectStore.locator`).
MEMORY_BACKEND = "memory"
FILE_BACKEND = "file"


@dataclass(frozen=True, slots=True)
class StoreKey:
    """Content address of one store entry: payload digest plus length."""

    digest: str
    size: int

    @classmethod
    def for_data(cls, data: bytes) -> "StoreKey":
        return cls(hashlib.sha256(data).hexdigest(), len(data))

    def short(self) -> str:
        return self.digest[:10]


@dataclass(slots=True)
class StoreEntryInfo:
    """Administrative view of one entry (shell ``store`` command)."""

    key: StoreKey
    refcount: int
    hits: int

    def to_dict(self) -> dict:
        return {
            "digest": self.key.digest,
            "size": self.key.size,
            "refcount": self.refcount,
            "hits": self.hits,
        }


class StoreStats:
    """Cumulative counters for one store instance."""

    __slots__ = ("puts", "dedup_puts", "gets", "misses", "evictions",
                 "bytes_put", "bytes_served")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.puts = 0
        self.dedup_puts = 0
        self.gets = 0
        self.misses = 0
        self.evictions = 0
        self.bytes_put = 0
        self.bytes_served = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "puts": self.puts,
            "dedup_puts": self.dedup_puts,
            "gets": self.gets,
            "misses": self.misses,
            "evictions": self.evictions,
            "bytes_put": self.bytes_put,
            "bytes_served": self.bytes_served,
        }


class ObjectStore(ABC):
    """Shared payload store with ``put`` / ``get`` / ``evict``.

    ``put`` is idempotent per content (a repeat put increments the
    entry's reference count instead of storing a second copy); ``evict``
    decrements and removes the entry when the count reaches zero, so a
    balanced put-per-proxy / evict-per-read protocol leaves nothing
    behind.  ``get`` never consumes.
    """

    stats: StoreStats

    @abstractmethod
    def put(self, data: bytes) -> StoreKey:
        """Store ``data`` (or bump its refcount) and return its key."""

    @abstractmethod
    def get(self, key: StoreKey) -> bytes:
        """The entry's bytes; raises :class:`StoreMissError` when absent."""

    @abstractmethod
    def evict(self, key: StoreKey) -> bool:
        """Drop one reference; True when the entry was fully removed."""

    @abstractmethod
    def contains(self, key: StoreKey) -> bool:
        """Whether the entry is currently resolvable here."""

    @abstractmethod
    def entries(self) -> list[StoreEntryInfo]:
        """Administrative listing of live entries, insertion-ordered."""

    @abstractmethod
    def locator(self) -> tuple:
        """Backend descriptor a proxy carries to self-resolve remotely."""

    def __len__(self) -> int:
        return len(self.entries())

    def snapshot(self) -> dict:
        """Stats plus the entry listing, for admin surfaces."""
        return {
            "backend": self.locator()[0],
            "entries": [info.to_dict() for info in self.entries()],
            "stats": self.stats.snapshot(),
        }

    def close(self) -> None:
        """Release backend resources (a no-op for the in-memory store)."""


# -- in-memory backend ---------------------------------------------------------

#: Live in-memory stores by id, so proxies resolve within the process
#: even at a Core whose own client is bound to a different store.
_MEMORY_STORES: "weakref.WeakValueDictionary[str, InMemoryStore]" = (
    weakref.WeakValueDictionary()
)
_memory_store_ids = itertools.count(1)


class InMemoryStore(ObjectStore):
    """One shared dict of entries: the in-process backend.

    Every Core of a simulated (or loopback-TCP) cluster shares the same
    instance, so a ``get`` at the destination is a local dict read — the
    transport only ever carries the proxy.
    """

    def __init__(self) -> None:
        self.store_id = f"mem-{next(_memory_store_ids)}"
        self.stats = StoreStats()
        #: digest -> [data, refcount, hits]
        self._entries: dict[str, list] = {}
        self._lock = threading.Lock()
        _MEMORY_STORES[self.store_id] = self

    def put(self, data: bytes) -> StoreKey:
        key = StoreKey.for_data(data)
        with self._lock:
            entry = self._entries.get(key.digest)
            if entry is None:
                self._entries[key.digest] = [data, 1, 0]
                self.stats.puts += 1
                self.stats.bytes_put += key.size
            else:
                entry[1] += 1
                self.stats.dedup_puts += 1
        return key

    def get(self, key: StoreKey) -> bytes:
        with self._lock:
            entry = self._entries.get(key.digest)
            if entry is None:
                self.stats.misses += 1
                raise StoreMissError(
                    f"store entry {key.short()} ({key.size}B) is not present"
                )
            entry[2] += 1
            self.stats.gets += 1
            self.stats.bytes_served += key.size
            return entry[0]

    def evict(self, key: StoreKey) -> bool:
        with self._lock:
            entry = self._entries.get(key.digest)
            if entry is None:
                return False
            entry[1] -= 1
            if entry[1] > 0:
                return False
            del self._entries[key.digest]
            self.stats.evictions += 1
            return True

    def contains(self, key: StoreKey) -> bool:
        return key.digest in self._entries

    def entries(self) -> list[StoreEntryInfo]:
        with self._lock:
            return [
                StoreEntryInfo(StoreKey(digest, len(data)), refcount, hits)
                for digest, (data, refcount, hits) in self._entries.items()
            ]

    def locator(self) -> tuple:
        return (MEMORY_BACKEND, self.store_id)

    def __repr__(self) -> str:
        return f"<InMemoryStore {self.store_id} ({len(self._entries)} entries)>"


# -- file-backed backend -------------------------------------------------------


class FileStore(ObjectStore):
    """A directory of content-addressed blobs, shared across processes.

    Each entry is a ``<digest>.blob`` file plus a ``<digest>.ref``
    sidecar holding the reference count, so any process pointed at the
    same directory (the multi-process launcher gives every Core the same
    path) resolves proxies written by any other.  Refcount updates are
    read-modify-write without inter-process locking: the movement
    protocol's put-then-evict pairs are serialized per entry by the
    protocol itself, which is all the accounting needs.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = StoreStats()
        self._lock = threading.Lock()
        #: digest -> hits (local accounting only; blobs are shared).
        self._hits: dict[str, int] = {}

    def _blob(self, digest: str) -> Path:
        return self.root / f"{digest}.blob"

    def _ref(self, digest: str) -> Path:
        return self.root / f"{digest}.ref"

    def _read_refcount(self, digest: str) -> int:
        try:
            return int(self._ref(digest).read_text())
        except (OSError, ValueError):
            return 0

    def put(self, data: bytes) -> StoreKey:
        key = StoreKey.for_data(data)
        with self._lock:
            blob = self._blob(key.digest)
            if blob.exists():
                self._ref(key.digest).write_text(
                    str(self._read_refcount(key.digest) + 1)
                )
                self.stats.dedup_puts += 1
            else:
                blob.write_bytes(data)
                self._ref(key.digest).write_text("1")
                self.stats.puts += 1
                self.stats.bytes_put += key.size
        return key

    def get(self, key: StoreKey) -> bytes:
        with self._lock:
            try:
                data = self._blob(key.digest).read_bytes()
            except OSError:
                self.stats.misses += 1
                raise StoreMissError(
                    f"store entry {key.short()} ({key.size}B) is not present "
                    f"under {self.root}"
                ) from None
            self._hits[key.digest] = self._hits.get(key.digest, 0) + 1
            self.stats.gets += 1
            self.stats.bytes_served += len(data)
            return data

    def evict(self, key: StoreKey) -> bool:
        with self._lock:
            blob = self._blob(key.digest)
            if not blob.exists():
                return False
            remaining = self._read_refcount(key.digest) - 1
            if remaining > 0:
                self._ref(key.digest).write_text(str(remaining))
                return False
            blob.unlink(missing_ok=True)
            self._ref(key.digest).unlink(missing_ok=True)
            self._hits.pop(key.digest, None)
            self.stats.evictions += 1
            return True

    def contains(self, key: StoreKey) -> bool:
        return self._blob(key.digest).exists()

    def entries(self) -> list[StoreEntryInfo]:
        with self._lock:
            infos = []
            for blob in sorted(self.root.glob("*.blob")):
                digest = blob.stem
                infos.append(
                    StoreEntryInfo(
                        StoreKey(digest, blob.stat().st_size),
                        self._read_refcount(digest),
                        self._hits.get(digest, 0),
                    )
                )
            return infos

    def locator(self) -> tuple:
        return (FILE_BACKEND, str(self.root))

    def close(self) -> None:
        """Forget the handle; the directory (shared) is left in place."""

    def __repr__(self) -> str:
        return f"<FileStore {self.root}>"


# -- locator resolution --------------------------------------------------------

#: FileStores opened to resolve foreign locators, one per directory.
_FILE_STORES: dict[str, FileStore] = {}


def store_for_locator(locator: tuple) -> ObjectStore:
    """The store a proxy's locator names, opened/bound in this process."""
    backend = locator[0]
    if backend == MEMORY_BACKEND:
        store = _MEMORY_STORES.get(locator[1])
        if store is None:
            raise StoreMissError(
                f"in-memory store {locator[1]!r} is gone from this process"
            )
        return store
    if backend == FILE_BACKEND:
        path = str(locator[1])
        store = _FILE_STORES.get(path)
        if store is None:
            store = _FILE_STORES[path] = FileStore(path)
        return store
    raise StoreError(f"unknown store backend in locator {locator!r}")
