"""FarGo reproduced: system support for dynamic layout of distributed applications.

A from-scratch Python reimplementation of the FarGo runtime (Holder,
Ben-Shaul, Gazit — ICDCS 1999): complets with relocation-aware
references (``link`` / ``pull`` / ``duplicate`` / ``stamp``), a
stationary Core runtime with location-transparent tracker chains,
monitoring-driven relocation, and an external layout scripting language
— all over a simulated wide-area network with a virtual clock.

Quickstart (the paper's Figure 3)::

    from repro import Anchor, Cluster, Carrier, compile_complet

    class Message_(Anchor):
        def __init__(self, msg):
            self.msg = msg
        def print_message(self):
            return self.msg

    Message = compile_complet(Message_)

    cluster = Cluster(["technion", "acadia"])
    msg = Message("Hello World", _core=cluster["technion"])
    Carrier.move(msg, "acadia")
    assert msg.print_message() == "Hello World"
"""

from repro.complet.anchor import Anchor, current_complet, current_core
from repro.complet.metaref import MetaRef
from repro.complet.relocators import Duplicate, Link, Pull, Relocator, Stamp
from repro.complet.stub import (
    Stub,
    compile_complet,
    stub_core,
    stub_meta,
    stub_target_id,
    stub_tracker,
)
from repro.complet.continuation import Continuation
from repro.core.admin import CoreAdmin
from repro.core.carrier import Carrier
from repro.core.core import Core
from repro.core.events import Event
from repro.cluster.cluster import Cluster
from repro.cluster.failures import FailureInjector
from repro.cluster.topology import configure_star, configure_uniform, configure_wan
from repro.errors import TransportCapabilityError, TransportError
from repro.metrics import MetricsRegistry, merge_snapshots
from repro.monitor.profiler import ProfilingSession
from repro.net import (
    BatchingTransport,
    BatchPolicy,
    SimTransport,
    TcpTransport,
    Transport,
    TransportGroup,
)
from repro.store import (
    FileStore,
    InMemoryStore,
    ObjectStore,
    StoreClient,
    StoreKey,
    StoreProxy,
)
from repro.recovery import (
    CheckpointManager,
    CheckpointPolicy,
    CheckpointStore,
    DetectorConfig,
    FailureDetector,
    RecoveryManager,
)
from repro.trace import (
    Span,
    SpanContext,
    Trace,
    Tracer,
    assemble_traces,
    chrome_trace_json,
)
from repro import errors

__version__ = "1.0.0"

__all__ = [
    "Anchor",
    "BatchPolicy",
    "BatchingTransport",
    "Carrier",
    "CheckpointManager",
    "CheckpointPolicy",
    "CheckpointStore",
    "Cluster",
    "Continuation",
    "Core",
    "CoreAdmin",
    "DetectorConfig",
    "Duplicate",
    "Event",
    "FailureDetector",
    "FailureInjector",
    "FileStore",
    "InMemoryStore",
    "Link",
    "MetaRef",
    "MetricsRegistry",
    "ObjectStore",
    "ProfilingSession",
    "Pull",
    "RecoveryManager",
    "Relocator",
    "SimTransport",
    "Span",
    "SpanContext",
    "Stamp",
    "StoreClient",
    "StoreKey",
    "StoreProxy",
    "Stub",
    "TcpTransport",
    "Trace",
    "Tracer",
    "Transport",
    "TransportCapabilityError",
    "TransportError",
    "TransportGroup",
    "assemble_traces",
    "chrome_trace_json",
    "compile_complet",
    "configure_star",
    "configure_uniform",
    "configure_wan",
    "current_complet",
    "current_core",
    "errors",
    "merge_snapshots",
    "stub_core",
    "stub_meta",
    "stub_target_id",
    "stub_tracker",
    "__version__",
]
