"""The FarGo shell *complet*: a movable administration console.

Figure 1 places the shell among the "system complets, which are outside
the Core either because they need to be able to move (recall that the
Core is stationary), or because they are directly pointed by complets".
:class:`FarGoShell <repro.shell.shell.FarGoShell>` is the driver-side
REPL; this module is the paper's actual design — an administration
console that is *itself a complet*: it executes commands against
whatever Core currently hosts it, and it can relocate (or be relocated)
like any other complet, keeping its command history with it.
"""

from __future__ import annotations

import shlex

from repro.complet.anchor import Anchor
from repro.complet.stub import compile_complet
from repro.errors import FarGoError


class ShellComplet_(Anchor):
    """A mobile administration console.

    Commands (a complet-safe subset of the driver shell)::

        whereami                      name of the hosting Core
        complets [<core>]             list hosted complets
        snapshot <core>               layout snapshot of one Core
        move <complet-id> <core>      relocate a complet
        refs <core> <complet-id>      outgoing references
        retype <core> <complet-id> <target-id> <type>
        profile <core> <service> [key=value...]
        services [<core>]             profiling services
        collect [<core>]              tracker GC
        goto <core>                   move this shell itself
        history                       commands executed so far
    """

    def __init__(self) -> None:
        self.history: list[str] = []

    # -- command dispatch ---------------------------------------------------------

    def execute(self, line: str) -> str:
        """Run one command at the Core currently hosting this shell."""
        line = line.strip()
        if not line:
            return ""
        self.history.append(line)
        try:
            parts = shlex.split(line)
        except ValueError as exc:
            return f"error: {exc}"
        command, args = parts[0], parts[1:]
        handler = getattr(self, f"_cmd_{command}", None)
        if handler is None:
            return f"error: unknown command {command!r}"
        try:
            return handler(args)
        except FarGoError as exc:
            return f"error: {exc}"
        except (IndexError, ValueError):
            return f"error: bad arguments for {command!r}"

    def get_history(self) -> list[str]:
        return self.history

    # -- commands -----------------------------------------------------------------------

    def _cmd_whereami(self, args: list[str]) -> str:
        return self.core.name

    def _cmd_history(self, args: list[str]) -> str:
        return "\n".join(self.history[:-1]) or "(empty)"

    def _cmd_complets(self, args: list[str]) -> str:
        core_name = args[0] if args else self.core.name
        listed = self.core.admin(core_name, "complets")
        return "\n".join(listed) or "(none)"

    def _cmd_snapshot(self, args: list[str]) -> str:
        core_name = args[0] if args else self.core.name
        snap = self.core.admin(core_name, "snapshot")
        complets = ", ".join(c["id"] for c in snap["complets"]) or "(none)"
        return (
            f"core {snap['core']}: {len(snap['complets'])} complets "
            f"[{complets}], {snap['tracker_count']} trackers"
        )

    def _cmd_move(self, args: list[str]) -> str:
        complet_id, destination = args[0], args[1]
        host = self._find_host(complet_id)
        if host is None:
            return f"error: no reachable Core hosts {complet_id!r}"
        self.core.admin(host, "move", complet=complet_id, destination=destination)
        return f"moved {complet_id} to {destination}"

    def _cmd_refs(self, args: list[str]) -> str:
        rows = self.core.admin(args[0], "references", complet=args[1])
        if not rows:
            return "(none)"
        return "\n".join(
            f"{row['target']}  {row['type']}  {row['invocations']} invocations"
            for row in rows
        )

    def _cmd_retype(self, args: list[str]) -> str:
        core_name, complet_id, target_id, type_name = args[:4]
        self.core.admin(
            core_name, "retype", complet=complet_id, target=target_id, type=type_name
        )
        return f"{complet_id} -> {target_id} is now {type_name}"

    def _cmd_profile(self, args: list[str]) -> str:
        core_name, service = args[0], args[1]
        params = dict(part.split("=", 1) for part in args[2:])
        value = self.core.admin(
            core_name, "profile_instant", service=service, params=params
        )
        return f"{service}@{core_name} = {value:g}"

    def _cmd_services(self, args: list[str]) -> str:
        core_name = args[0] if args else self.core.name
        return "\n".join(self.core.admin(core_name, "services"))

    def _cmd_collect(self, args: list[str]) -> str:
        core_name = args[0] if args else self.core.name
        collected = self.core.admin(core_name, "collect_trackers")
        return f"collected {collected} trackers at {core_name}"

    def _cmd_goto(self, args: list[str]) -> str:
        from repro.core.carrier import Carrier

        destination = args[0]
        Carrier.move(self, destination)
        return f"shell moving to {destination}"

    # -- helpers ----------------------------------------------------------------------------

    def _find_host(self, complet_id: str) -> str | None:
        peer = self.core.peer
        if complet_id in self.core.admin(self.core.name, "complets"):
            return self.core.name
        for core_name in peer.peers():
            if core_name == self.core.name or not peer.is_peer_up(core_name):
                continue
            try:
                if complet_id in self.core.admin(core_name, "complets"):
                    return core_name
            except FarGoError:
                continue
        return None


ShellComplet = compile_complet(ShellComplet_)
