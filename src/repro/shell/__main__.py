"""Interactive FarGo shell: ``python -m repro.shell``.

Boots a demonstration cluster (three Cores, a client/server pair, a
data source with a worker, one bound name) and drops into the
administration REPL, so the system can be explored by hand:

    $ python -m repro.shell
    FarGo shell — 'help' for commands
    fargo:hq> layout
    ...
    fargo:hq> move hq/c1:Client edge1
    fargo:hq> advance 5
    fargo:hq> feed

Pass Core names as arguments to change the topology:
``python -m repro.shell north south west``.
"""

from __future__ import annotations

import sys

from repro.cluster.cluster import Cluster
from repro.cluster.workload import Client, DataSource, Server, Worker
from repro.shell.shell import FarGoShell


def build_demo_cluster(names: list[str]) -> Cluster:
    """A small populated deployment to administer."""
    cluster = Cluster(names)
    first, *rest = names
    server = Server(_core=cluster[first])
    client_home = rest[0] if rest else first
    client = Client(server, _core=cluster[client_home], _at=client_home)
    source = DataSource(20_000, _core=cluster[first])
    Worker(source, _core=cluster[client_home], _at=client_home)
    cluster[first].bind("server", server)
    cluster[first].bind("client", client)
    client.run(3)
    return cluster


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    names = args if args else ["hq", "edge1", "edge2"]
    cluster = build_demo_cluster(names)
    shell = FarGoShell(cluster, home=names[0])
    shell.loop()
    return 0


if __name__ == "__main__":  # pragma: no cover - interactive entry point
    raise SystemExit(main())
