"""The FarGo administration shell.

A line-oriented command interpreter over a cluster.  Every command
returns its output as a string (and :meth:`FarGoShell.loop` provides an
interactive REPL on top).  Commands::

    cores                                   list Cores and their status
    complets [<core>]                       list hosted complets
    layout                                  render the layout panel
    feed [<n>]                              tail of the live event feed
    move <complet-id> <core>                relocate a complet
    refs <core> <complet-id>                outgoing references of a complet
    retype <core> <complet-id> <target-id> <type>
    profile <core> <service> [key=value...] instant profiling read
    history <core> <service> [key=value...] sparkline of recent samples
    watch <core> <service> <op> <threshold> [key=value...]
    services <core>                         available profiling services
    collect                                 tracker GC on every Core
    shutdown <core>                         graceful Core shutdown
    advance <seconds>                       advance virtual time
    script <<< ... >>>  or  script @file    run a layout script
    lint [@file]                            static diagnostics (cluster, or a file)
    trace on|off|clear                      toggle / reset span recording
    trace [list]                            one line per recorded trace
    trace show <trace-id>                   span tree of one trace
    trace timeline <trace-id>               text flame chart of one trace
    trace export <file>                     Chrome trace_event JSON
    metrics [<core>]                        metrics (cluster-wide by default)
    store [<core>]                          object-store contents and hit/miss stats
    snapshot <complet-id>                   checkpoint a complet into the shell
    restore <complet-id> [<core>] [keep]    restore a held snapshot on a Core
    failures                                injections, detector verdicts, recoveries
    supervisor [<core>]                     per-child restart counts and backoff state
    help                                    this text
"""

from __future__ import annotations

import shlex
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.core.admin import CoreAdmin
from repro.errors import FarGoError
from repro.script.interpreter import ScriptEngine
from repro.viewer.traceview import (
    render_metrics,
    render_trace,
    render_trace_timeline,
    render_traces_summary,
)
from repro.viewer.viewer import LayoutMonitor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster

_HELP = __doc__.split("Commands::", 1)[1] if __doc__ else ""


class FarGoShell:
    """Administration shell bound to a cluster."""

    def __init__(self, cluster: "Cluster", home: str | None = None) -> None:
        self.cluster = cluster
        home_name = home if home is not None else cluster.core_names()[0]
        self.core = cluster.core(home_name)
        self.monitor = LayoutMonitor(cluster, home_name)
        self.monitor.watch_all()
        self.engine = ScriptEngine(cluster, home_name)
        self._commands: dict[str, Callable[[list[str]], str]] = {
            "cores": self._cmd_cores,
            "complets": self._cmd_complets,
            "layout": self._cmd_layout,
            "feed": self._cmd_feed,
            "move": self._cmd_move,
            "refs": self._cmd_refs,
            "retype": self._cmd_retype,
            "profile": self._cmd_profile,
            "history": self._cmd_history,
            "watch": self._cmd_watch,
            "services": self._cmd_services,
            "collect": self._cmd_collect,
            "shutdown": self._cmd_shutdown,
            "advance": self._cmd_advance,
            "script": self._cmd_script,
            "lint": self._cmd_lint,
            "trace": self._cmd_trace,
            "metrics": self._cmd_metrics,
            "store": self._cmd_store,
            "snapshot": self._cmd_snapshot,
            "restore": self._cmd_restore,
            "failures": self._cmd_failures,
            "supervisor": self._cmd_supervisor,
            "help": self._cmd_help,
        }
        #: Snapshots held by the shell, keyed by the complet id taken.
        self._snapshots: dict[str, bytes] = {}
        self._injector = None

    def admin(self, core_name: str) -> CoreAdmin:
        """Typed admin handle for ``core_name``, issued from the home Core."""
        return CoreAdmin(self.core, core_name)

    # -- dispatch ----------------------------------------------------------------------

    def execute(self, line: str) -> str:
        """Run one command line; returns its output (errors included)."""
        line = line.strip()
        if not line:
            return ""
        if line.startswith("script"):
            return self._cmd_script_raw(line[len("script"):].strip())
        try:
            parts = shlex.split(line)
        except ValueError as exc:
            return f"error: {exc}"
        command, args = parts[0], parts[1:]
        handler = self._commands.get(command)
        if handler is None:
            return f"error: unknown command {command!r} (try 'help')"
        try:
            return handler(args)
        except FarGoError as exc:
            return f"error: {exc}"
        except (IndexError, ValueError):
            return f"error: bad arguments for {command!r} (try 'help')"

    def loop(self, *, input_fn=input, print_fn=print) -> None:  # pragma: no cover
        """Interactive REPL; ``exit`` or EOF ends it."""
        print_fn("FarGo shell — 'help' for commands")
        while True:
            try:
                line = input_fn(f"fargo:{self.core.name}> ")
            except EOFError:
                break
            if line.strip() in ("exit", "quit"):
                break
            output = self.execute(line)
            if output:
                print_fn(output)

    # -- commands -----------------------------------------------------------------------------

    def _cmd_cores(self, args: list[str]) -> str:
        lines = []
        for name in self.cluster.core_names():
            core = self.cluster.core(name)
            state = "up" if core.is_running else "down"
            lines.append(f"{name:<14} {state:<5} {len(core.repository)} complets")
        return "\n".join(lines)

    def _cmd_complets(self, args: list[str]) -> str:
        names = args if args else [
            c.name for c in self.cluster.running_cores()
        ]
        lines = []
        for name in names:
            for complet in self.cluster.complets_at(name):
                lines.append(f"{name:<14} {complet}")
        return "\n".join(lines) if lines else "(no complets)"

    def _cmd_layout(self, args: list[str]) -> str:
        return self.monitor.render()

    def _cmd_feed(self, args: list[str]) -> str:
        limit = int(args[0]) if args else 20
        return self.monitor.render_feed(limit)

    def _cmd_move(self, args: list[str]) -> str:
        complet_id, destination = args[0], args[1]
        host = self._host_of(complet_id)
        if host is None:
            return f"error: no running Core hosts {complet_id!r}"
        self.admin(host).move(complet_id, destination)
        return f"moved {complet_id} from {host} to {destination}"

    def _cmd_refs(self, args: list[str]) -> str:
        return self.monitor.references(args[0], args[1])

    def _cmd_retype(self, args: list[str]) -> str:
        core_name, complet_id, target_id, type_name = args[:4]
        self.monitor.retype_reference(core_name, complet_id, target_id, type_name)
        return f"reference {complet_id} -> {target_id} is now {type_name}"

    def _cmd_profile(self, args: list[str]) -> str:
        core_name, service = args[0], args[1]
        params = _parse_params(args[2:])
        value = self.monitor.profile(core_name, service, **params)
        return f"{service}@{core_name} {params or ''} = {value:g}"

    def _cmd_history(self, args: list[str]) -> str:
        """history <core> <service> [key=value...] — start-if-needed and
        render the continuous profile's recent samples as a sparkline."""
        from repro.viewer.render import render_sparkline

        core_name, service = args[0], args[1]
        params = _parse_params(args[2:])
        self.core.admin(
            core_name, "profile_start", service=service, params=params
        )
        samples = self.admin(core_name).profile_history(service, **params)
        return f"{service}@{core_name}: {render_sparkline(samples)}"

    def _cmd_watch(self, args: list[str]) -> str:
        core_name, service, op, threshold = args[0], args[1], args[2], float(args[3])
        params = _parse_params(args[4:])
        watch_id = self.admin(core_name).watch(service, op, threshold, **params)
        return f"watch #{watch_id} installed at {core_name}"

    def _cmd_services(self, args: list[str]) -> str:
        return "\n".join(self.admin(args[0]).services())

    def _cmd_collect(self, args: list[str]) -> str:
        return f"collected {self.cluster.collect_all_trackers()} trackers"

    def _cmd_shutdown(self, args: list[str]) -> str:
        self.cluster.shutdown_core(args[0])
        return f"core {args[0]} shut down"

    def _cmd_advance(self, args: list[str]) -> str:
        seconds = float(args[0])
        self.cluster.advance(seconds)
        return f"t = {self.cluster.now:.3f}"

    def _cmd_script_raw(self, rest: str) -> str:
        if rest.startswith("@"):
            with open(rest[1:], encoding="utf-8") as f:
                source = f.read()
        else:
            source = rest
        try:
            script = self.engine.run(source)
        except FarGoError as exc:
            return f"error: {exc}"
        return f"script active: {len(script.rules)} rules"

    def _cmd_script(self, args: list[str]) -> str:  # pragma: no cover - routed raw
        return self._cmd_script_raw(" ".join(args))

    def _cmd_lint(self, args: list[str]) -> str:
        """lint — analyze the live cluster; lint @file — analyze a file
        (scripts resolve against the live topology)."""
        from pathlib import Path

        from repro.analysis import TopologyInfo, render_text
        from repro.analysis.cli import analyze_file

        if args and args[0].startswith("@"):
            topology = TopologyInfo.from_cluster(self.cluster)
            diagnostics = analyze_file(Path(args[0][1:]), topology=topology)
        else:
            diagnostics = self.cluster.analyze()
        return render_text(diagnostics)

    def _cmd_trace(self, args: list[str]) -> str:
        sub = args[0] if args else "list"
        if sub == "on":
            self.cluster.set_tracing(True)
            return "tracing enabled on all Cores"
        if sub == "off":
            self.cluster.set_tracing(False)
            return "tracing disabled on all Cores"
        if sub == "clear":
            self.cluster.clear_spans()
            return "spans cleared"
        if sub == "list":
            return render_traces_summary(self.cluster.traces())
        if sub == "show":
            trace = self.cluster.traces().get(args[1])
            if trace is None:
                return f"error: no trace {args[1]!r}"
            return render_trace(trace)
        if sub == "timeline":
            trace = self.cluster.traces().get(args[1])
            if trace is None:
                return f"error: no trace {args[1]!r}"
            return render_trace_timeline(trace)
        if sub == "export":
            path = args[1]
            with open(path, "w", encoding="utf-8") as f:
                f.write(self.cluster.chrome_trace_json(indent=2))
            return f"wrote {len(self.cluster.spans())} spans to {path}"
        return f"error: unknown trace subcommand {sub!r} (try 'help')"

    def _cmd_metrics(self, args: list[str]) -> str:
        if args:
            snapshot = self.admin(args[0]).metrics()
            return render_metrics(snapshot, title=f"metrics of {args[0]}")
        snapshot = self.cluster.metrics_snapshot()["cluster"]
        return render_metrics(snapshot, title="cluster metrics")

    def _cmd_store(self, args: list[str]) -> str:
        """store [<core>] — the object store's contents (per-key size,
        refcount, hits) plus client offload/resolve counters; one Core's
        view with an argument, the cluster-wide picture without."""
        if args:
            view = self.admin(args[0]).store()
            if not view.get("enabled"):
                return f"(object store disabled at {args[0]})"
            lines = [f"client at {args[0]}: {_render_store_client(view['client'])}"]
            lines.extend(_render_store_backend(view["store"]))
            return "\n".join(lines)
        snap = self.cluster.store_snapshot()
        if not snap.get("enabled"):
            return "(object store disabled; create the Cluster with store=...)"
        lines = list(_render_store_backend(snap["store"]))
        for name in sorted(snap["cores"]):
            view = snap["cores"][name]
            if view.get("enabled"):
                lines.append(f"client at {name}: {_render_store_client(view['client'])}")
        return "\n".join(lines)

    def _cmd_snapshot(self, args: list[str]) -> str:
        """snapshot <complet-id> — checkpoint via the hosting Core's admin
        facade; the bytes are held by the shell for a later ``restore``."""
        complet_id = args[0]
        host = self._host_of(complet_id)
        if host is None:
            return f"error: no running Core hosts {complet_id!r}"
        data = self.admin(host).checkpoint(complet_id)
        self._snapshots[complet_id] = data
        return f"snapshot of {complet_id} taken at {host} ({len(data)} bytes)"

    def _cmd_restore(self, args: list[str]) -> str:
        """restore <complet-id> [<core>] [keep] — revive a held snapshot.

        ``keep`` asks for the original identity (refused with a typed
        error when a live copy contradicts it); default is a fresh one.
        """
        complet_id = args[0]
        rest = args[1:]
        keep = "keep" in rest
        rest = [token for token in rest if token != "keep"]
        destination = rest[0] if rest else self.core.name
        data = self._snapshots.get(complet_id)
        if data is None:
            return f"error: no snapshot held for {complet_id!r} (take one first)"
        new_id = self.admin(destination).restore(data, keep_identity=keep)
        return f"restored {complet_id} as {new_id} at {destination}"

    def _cmd_failures(self, args: list[str]) -> str:
        """failures — the cluster's failure picture: what was injected,
        what each detector currently believes, what recovery did."""
        lines: list[str] = []
        if self._injector is not None and self._injector.log:
            lines.append("injections:")
            lines.extend(
                f"  {t:8.2f}  {desc}" for t, desc in self._injector.log
            )
        for name in self.cluster.core_names():
            core = self.cluster.cores[name]
            if not core.is_running:
                continue
            try:
                state = self.admin(name).detector_state()
            except FarGoError:  # crashed or unreachable: nothing to show
                continue
            if not state:
                continue
            lines.append(f"detector at {name}:")
            lines.extend(
                f"  {peer:<14} {view['status']} (last ok t={view['last_ok']:.2f})"
                for peer, view in sorted(state.items())
            )
        recovery = getattr(self.cluster, "recovery", None)
        if recovery is not None and recovery.log:
            lines.append("recovery:")
            lines.extend(f"  {t:8.2f}  {message}" for t, message in recovery.log)
        return "\n".join(lines) if lines else "(no failure activity)"

    def attach_injector(self, injector) -> None:
        """Show ``injector``'s log in the ``failures`` command."""
        self._injector = injector

    def _cmd_supervisor(self, args: list[str]) -> str:
        """supervisor [<core>] — per-child supervision state.

        Only the driver Core of a multi-process deployment carries a
        :class:`~repro.cluster.supervisor.Supervisor`; with no argument,
        every Core is asked and the first non-empty answer is shown.
        """
        if args:
            candidates = [args[0]]
        else:
            candidates = self.cluster.core_names()
        state: dict = {}
        seat = ""
        for name in candidates:
            try:
                state = self.admin(name).supervisor_state()
            except FarGoError:
                continue
            if state:
                seat = name
                break
        if not state:
            return "(no supervisor attached)"
        policy = state.get("policy", {})
        lines = [
            f"supervisor at {seat}: "
            f"{'running' if state.get('running') else 'stopped'}, "
            f"budget {policy.get('max_restarts')}/{policy.get('window', 0):.0f}s, "
            f"healthy after {policy.get('healthy_after', 0):.0f}s"
        ]
        for child, view in sorted(state.get("children", {}).items()):
            mttr = view.get("last_mttr")
            lines.append(
                f"  {child:<12} {view['status']:<12} "
                f"restarts {view['restarts']} "
                f"(window {view['recent_restarts']}, streak {view['streak']}) "
                f"next backoff {view['next_backoff']:.2f}s"
                + (f"  mttr {mttr:.2f}s" if mttr is not None else "")
                + (f"  last exit: {view['last_exit']}" if view.get("last_exit") else "")
            )
            if view.get("escalated_to"):
                lines.append(
                    "               escalated to: " + ", ".join(view["escalated_to"])
                )
        return "\n".join(lines)

    def _cmd_help(self, args: list[str]) -> str:
        return _HELP.strip("\n")

    # -- helpers ---------------------------------------------------------------------------------

    def _host_of(self, complet_id: str) -> str | None:
        for core in self.cluster.running_cores():
            if complet_id in self.cluster.complets_at(core.name):
                return core.name
        return None


def _render_store_backend(snapshot: dict) -> list[str]:
    stats = snapshot["stats"]
    lines = [
        f"{snapshot['backend']} store: {len(snapshot['entries'])} entries, "
        f"{stats['puts']} puts ({stats['dedup_puts']} dedup), "
        f"{stats['gets']} gets, {stats['misses']} misses, "
        f"{stats['evictions']} evictions, "
        f"{stats['bytes_put']}B in / {stats['bytes_served']}B out"
    ]
    for entry in snapshot["entries"]:
        lines.append(
            f"  {entry['digest'][:10]}  {entry['size']:>10}B  "
            f"refs={entry['refcount']}  hits={entry['hits']}"
        )
    return lines


def _render_store_client(client: dict) -> str:
    return (
        f"threshold={client['threshold']}B offloads={client['offloads']} "
        f"saved={client['bytes_saved']}B resolves={client['resolves']} "
        f"(cache {client['cache_hits']} / store {client['store_hits']} / "
        f"miss {client['misses']})"
    )


def _parse_params(tokens: list[str]) -> dict:
    params = {}
    for token in tokens:
        key, _, value = token.partition("=")
        if not value:
            raise ValueError(f"expected key=value, got {token!r}")
        params[key] = value
    return params
