"""The FarGo shell: command-line administration of remote Cores (§3/§5).

The paper ships "a command-line shell for administering remote Cores" as
a system complet.  :class:`~repro.shell.shell.FarGoShell` is that shell:
every command goes through the public admin/event/script interfaces, and
:meth:`~repro.shell.shell.FarGoShell.execute` makes it scriptable (and
testable) one line at a time.
"""

from repro.shell.shell import FarGoShell

__all__ = ["FarGoShell"]
