"""Distributed tracing: causally linked spans over the virtual clock.

One logical operation in FarGo — a stub invocation crossing a tracker
chain, a threshold watch firing a scripted group move — touches several
Cores.  Each Core owns a :class:`Tracer` that records the work done
*here* as :class:`Span`\\ s; the trace context (trace id + parent span
id) travels inside every cross-Core :class:`~repro.net.messages.Envelope`
header, so the spans of all participating Cores stitch into one tree
under one trace id.  Timestamps come from the simulation clock, which
means durations measure *virtual* time: exactly the quantity the layout
policies reason about.

Tracing is off by default and designed to cost one attribute check per
call site when disabled (:data:`NO_SPAN` is returned instead of a real
span).  Enable it per Core (``core.tracer.enabled = True``) or cluster
wide (``Cluster(..., tracing=True)`` / ``cluster.set_tracing(True)``).

Because every cross-Core interaction in the simulator is a synchronous
nested call, the active-span context is a simple per-tracer stack — the
calls nest, so the stack does too.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field

from repro.net.messages import SPAN_ID_HEADER, TRACE_ID_HEADER
from repro.sim.clock import Clock

#: Spans kept per Core; older spans fall off (bounded memory).
SPAN_CAPACITY = 4096


@dataclass(frozen=True, slots=True)
class SpanContext:
    """The part of a span that travels across Cores: ids only."""

    trace_id: str
    span_id: str


@dataclass(slots=True)
class Span:
    """One timed unit of work at one Core.

    ``parent_id`` is the span id of the causally enclosing span — which
    may live at another Core; the tree is assembled cluster-wide by
    :func:`repro.trace.export.assemble_traces`.  ``end`` stays ``None``
    while the span is open.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    core: str
    start: float
    end: float | None = None
    category: str = "span"
    attributes: dict = field(default_factory=dict)
    error: str | None = None

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def set_error(self, error: BaseException | str) -> None:
        self.error = error if isinstance(error, str) else repr(error)

    def to_dict(self) -> dict:
        """Plain-data form (admin replies, JSON export)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "core": self.core,
            "start": self.start,
            "end": self.end,
            "category": self.category,
            "attributes": dict(self.attributes),
            "error": self.error,
        }

    def __str__(self) -> str:
        return (
            f"{self.name}@{self.core} [{self.start:.3f}..{self.end}]"
            f" trace={self.trace_id}"
        )


def context_from_headers(headers: dict) -> SpanContext | None:
    """Rebuild the sender's trace context from envelope headers."""
    trace_id = headers.get(TRACE_ID_HEADER)
    span_id = headers.get(SPAN_ID_HEADER)
    if trace_id and span_id:
        return SpanContext(trace_id, span_id)
    return None


class _NoopSpan:
    """Shared do-nothing span: the disabled-tracing fast path.

    Usable both as a span (``set_attribute``) and as a context manager,
    so call sites never branch beyond the initial enabled check.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set_attribute(self, key: str, value: object) -> None:
        return None

    def set_error(self, error: BaseException | str) -> None:
        return None


#: The singleton no-op span returned whenever tracing is disabled.
NO_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager binding one real span to its tracer's stack."""

    __slots__ = ("tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self.tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and self.span.error is None:
            self.span.set_error(exc)
        self.tracer.finish(self.span)
        return None


class Tracer:
    """One Core's span recorder.

    Spans are recorded locally into a bounded buffer; the cluster (or an
    admin query) aggregates them.  ``enabled`` may be toggled at any
    time — in-flight spans finish normally.
    """

    def __init__(
        self,
        core_name: str,
        clock: Clock,
        *,
        enabled: bool = False,
        capacity: int = SPAN_CAPACITY,
    ) -> None:
        self.core_name = core_name
        self.clock = clock
        self.enabled = enabled
        self.finished: deque[Span] = deque(maxlen=capacity)
        self._stack: list[Span] = []
        self._ids = itertools.count(1)

    # -- context ---------------------------------------------------------------

    @property
    def current(self) -> Span | None:
        """The innermost open span, or None outside any traced work."""
        return self._stack[-1] if self._stack else None

    def context_headers(self) -> dict[str, str]:
        """Wire headers carrying the current trace context (may be empty)."""
        current = self.current
        if current is None:
            return {}
        return {TRACE_ID_HEADER: current.trace_id, SPAN_ID_HEADER: current.span_id}

    # -- span lifecycle --------------------------------------------------------

    def span(
        self,
        name: str,
        *,
        category: str = "span",
        parent: SpanContext | None = None,
        root: bool = False,
        **attributes,
    ) -> _ActiveSpan | _NoopSpan:
        """Open a span as a context manager.

        The parent is, in order: an explicit ``parent`` context (the
        receiving side of a cross-Core message), the tracer's current
        span, or none (a fresh trace).  ``root=True`` forces a fresh
        trace even under an active span — threshold watches use it, so a
        crossing observed during unrelated traced work still starts its
        own causal tree.
        """
        if not self.enabled:
            return NO_SPAN
        span = self.start_span(
            name, category=category, parent=parent, root=root, **attributes
        )
        return _ActiveSpan(self, span)

    def start_span(
        self,
        name: str,
        *,
        category: str = "span",
        parent: SpanContext | None = None,
        root: bool = False,
        **attributes,
    ) -> Span:
        """Open a span imperatively; pair with :meth:`finish`."""
        span_id = f"{self.core_name}.{next(self._ids)}"
        if root:
            trace_id, parent_id = span_id, None
        elif parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            current = self.current
            if current is not None:
                trace_id, parent_id = current.trace_id, current.span_id
            else:
                trace_id, parent_id = span_id, None
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            core=self.core_name,
            start=self.clock.now(),
            category=category,
            attributes=dict(attributes),
        )
        self._stack.append(span)
        return span

    def finish(self, span: Span) -> None:
        """Close ``span`` and record it."""
        span.end = self.clock.now()
        # Well-nested in the synchronous simulator; tolerate stragglers.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span)
        self.finished.append(span)

    # -- introspection ---------------------------------------------------------

    def spans(self) -> list[Span]:
        """Finished spans, oldest first."""
        return list(self.finished)

    def clear(self) -> None:
        self.finished.clear()

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"<Tracer {self.core_name} ({state}, {len(self.finished)} spans)>"
