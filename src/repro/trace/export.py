"""Trace assembly and exporters.

Spans are recorded per Core; this module stitches them back into traces
(one :class:`Trace` per trace id, with parent links resolved into a
tree) and exports them:

- :func:`traces_to_json` — plain JSON, one object per trace;
- :func:`chrome_trace` — the Chrome ``trace_event`` format (load the
  file in ``chrome://tracing`` or Perfetto).  Virtual seconds map to
  microseconds, each Core becomes one named "process".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.trace.tracer import Span


@dataclass(slots=True)
class Trace:
    """One assembled trace: every span sharing a trace id."""

    trace_id: str
    spans: list[Span]
    #: Spans with no parent (or whose parent was not recorded).
    roots: list[Span] = field(default_factory=list)
    #: span id -> children, each sorted by start time.
    children: dict[str, list[Span]] = field(default_factory=dict)

    @property
    def start(self) -> float:
        return min(s.start for s in self.spans)

    @property
    def end(self) -> float:
        return max(s.end if s.end is not None else s.start for s in self.spans)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def cores(self) -> list[str]:
        return sorted({s.core for s in self.spans})

    def walk(self):
        """Yield ``(depth, span)`` in tree (pre-)order."""
        def visit(span: Span, depth: int):
            yield depth, span
            for child in self.children.get(span.span_id, []):
                yield from visit(child, depth + 1)

        for root in self.roots:
            yield from visit(root, 0)

    def is_connected(self) -> bool:
        """True when every span hangs off a single root."""
        return len(self.roots) == 1 and len(list(self.walk())) == len(self.spans)


def assemble_traces(spans: list[Span]) -> dict[str, Trace]:
    """Group spans by trace id and resolve parent links into trees."""
    by_trace: dict[str, list[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    traces: dict[str, Trace] = {}
    for trace_id, members in by_trace.items():
        members.sort(key=lambda s: (s.start, s.span_id))
        known = {s.span_id for s in members}
        trace = Trace(trace_id, members)
        for span in members:
            if span.parent_id is None or span.parent_id not in known:
                trace.roots.append(span)
            else:
                trace.children.setdefault(span.parent_id, []).append(span)
        traces[trace_id] = trace
    return traces


# -- JSON -------------------------------------------------------------------


def spans_to_json(spans: list[Span], *, indent: int | None = None) -> str:
    """Every span as one JSON object (the raw, lossless export)."""
    return json.dumps([s.to_dict() for s in spans], indent=indent, default=repr)


def traces_to_json(spans: list[Span], *, indent: int | None = None) -> str:
    """Assembled traces as JSON: id, bounds, and the span list."""
    traces = assemble_traces(spans)
    payload = [
        {
            "trace_id": trace.trace_id,
            "start": trace.start,
            "end": trace.end,
            "cores": trace.cores(),
            "spans": [s.to_dict() for s in trace.spans],
        }
        for trace in sorted(traces.values(), key=lambda t: t.start)
    ]
    return json.dumps(payload, indent=indent, default=repr)


# -- Chrome trace_event -----------------------------------------------------


def chrome_trace(spans: list[Span]) -> dict:
    """Spans as a Chrome ``trace_event`` document (complete 'X' events).

    Virtual seconds are exported as microseconds (the format's unit).
    Each Core maps to one pid, named through a process_name metadata
    event; the trace id rides along in each event's ``args``.
    """
    pids: dict[str, int] = {}
    events: list[dict] = []
    for span in spans:
        pid = pids.get(span.core)
        if pid is None:
            pid = pids[span.core] = len(pids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"Core {span.core}"},
                }
            )
        end = span.end if span.end is not None else span.start
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": (end - span.start) * 1e6,
                "pid": pid,
                "tid": 0,
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "error": span.error,
                    **span.attributes,
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(spans: list[Span], *, indent: int | None = None) -> str:
    """The Chrome document serialized (non-JSON attribute values repr'd)."""
    return json.dumps(chrome_trace(spans), indent=indent, default=repr)
