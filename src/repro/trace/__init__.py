"""Distributed tracing over the virtual clock (see tracer.py)."""

from repro.trace.export import (
    Trace,
    assemble_traces,
    chrome_trace,
    chrome_trace_json,
    spans_to_json,
    traces_to_json,
)
from repro.trace.tracer import (
    NO_SPAN,
    Span,
    SpanContext,
    Tracer,
    context_from_headers,
)

__all__ = [
    "NO_SPAN",
    "context_from_headers",
    "Span",
    "SpanContext",
    "Trace",
    "Tracer",
    "assemble_traces",
    "chrome_trace",
    "chrome_trace_json",
    "spans_to_json",
    "traces_to_json",
]
