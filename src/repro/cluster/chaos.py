"""Seeded chaos harness for the recovery layer.

A :class:`ChaosRun` builds a cluster with recovery enabled, protects one
stateful complet per Core, and replays a *seeded* schedule of crashes,
link outages, and partitions (via :class:`~repro.cluster.failures.FailureInjector`)
while a request driver keeps calling the complets.  Everything runs on
the virtual clock from a :class:`random.Random` seed, so a run is fully
deterministic: the same seed always produces the same schedule, the same
detector verdicts, and the same recovery decisions.

Invariants checked throughout the run:

- **no duplicate identities** — a complet identity hosted by two up
  Cores at two consecutive checks is a violation (one check of grace
  covers the documented revive-then-reconcile window);
- **typed failures only** — every driver request either completes or
  raises a :class:`~repro.errors.FarGoError` subclass; anything else is
  a violation;
- **no trackers into the grave** — at the end of every recovery pass, no
  surviving Core's tracker for a relocated complet still forwards to the
  dead Core (a synchronous post-condition recorded per report; stale
  references minted *later* are out of scope — they resolve through the
  registry or fail typed);
- **full recovery** — once every injected failure has healed and the
  detectors have settled, every protected complet answers requests
  again, through its original pre-chaos stub.

Run from the command line (exits non-zero on any violation)::

    python -m repro.cluster.chaos --seeds 1,2,3 --trace chaos_trace.json

With ``--real`` the harness leaves the simulation: a
:class:`ProcessChaosRun` spawns the Cores as OS processes
(:class:`~repro.cluster.launch.CoreProcesses` with a shared durable
checkpoint directory), puts them under a
:class:`~repro.cluster.supervisor.Supervisor`, and the seeded schedule
SIGKILLs/SIGTERMs children mid-workload.  The invariants gain a real
**MTTR bound**: after every kill the deployment must return to
full-heal reachability — child respawned, checkpoints restored with
identity preserved, pre-kill references answering — within
``mttr_budget`` wall seconds, or the run fails.
"""

from __future__ import annotations

import argparse
import os
import random
import shutil
import signal
import tempfile
import time
from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.cluster.failures import FailureInjector
from repro.cluster.workload import Counter
from repro.errors import FarGoError
from repro.recovery import CheckpointPolicy, DetectorConfig

#: Virtual seconds between driver requests (off-phase with the detector).
DRIVE_PERIOD = 0.4
#: Virtual seconds between invariant checks.
CHECK_PERIOD = 0.5


@dataclass(slots=True)
class ChaosReport:
    """Outcome of one seeded chaos run."""

    seed: int
    requests_ok: int = 0
    typed_errors: int = 0
    injections: int = 0
    recoveries: int = 0
    duration: float = 0.0
    violations: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations and self.requests_ok > 0

    def summary(self) -> str:
        state = "PASS" if self.passed else "FAIL"
        line = (
            f"seed {self.seed}: {state} — {self.requests_ok} ok, "
            f"{self.typed_errors} typed errors, {self.injections} injections, "
            f"{self.recoveries} recoveries over {self.duration:.1f}s virtual"
        )
        for violation in self.violations:
            line += f"\n  violation: {violation}"
        return line


class ChaosRun:
    """One deterministic chaos scenario, generated from a seed."""

    def __init__(
        self,
        seed: int,
        *,
        cores: int = 4,
        events: int = 6,
        tracing: bool = False,
        sanitize: bool = False,
    ) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.names = [f"core{i}" for i in range(cores)]
        self.cluster = Cluster(self.names, tracing=tracing, sanitize=sanitize)
        self.detector = DetectorConfig()
        self.cluster.enable_recovery(detector=self.detector)
        self.injector = FailureInjector(self.cluster)
        self.report = ChaosReport(seed=seed)
        self._counters = []
        policy = CheckpointPolicy(interval=1.0, on_arrival=True)
        assert self.cluster.checkpoints is not None
        for name in self.names:
            counter = Counter(0, _core=self.cluster[name], _at=name)
            self.cluster.checkpoints.protect(counter, policy)
            self._counters.append(counter)
        self._next_counter = 0
        self._end = self._schedule(events)
        #: Identity duplications seen at the previous check (grace window).
        self._pending_dups: set = set()
        #: Recovery reports whose post-conditions were already read.
        self._seen_reports = 0

    # -- schedule generation -----------------------------------------------------

    def _schedule(self, events: int) -> float:
        """Sequential, non-overlapping failure windows; returns the end time."""
        cursor = 2.0
        for _ in range(events):
            kind = self.rng.choice(("crash", "outage", "partition"))
            if kind == "crash":
                victim = self.rng.choice(self.names)
                down_for = self.rng.uniform(4.0, 7.0)
                self.injector.crash_core_at(cursor, victim)
                self.injector.revive_core_at(cursor + down_for, victim)
                cursor += down_for
            elif kind == "outage":
                a, b = self.rng.sample(self.names, 2)
                down_for = self.rng.uniform(0.5, 1.5)
                self.injector.outage_at(cursor, a, b, down_for)
                cursor += down_for
            else:
                island = self.rng.choice(self.names)
                split_for = self.rng.uniform(2.0, 4.0)
                self.injector.partition_at(cursor, {island})
                self.injector.heal_at(cursor + split_for)
                cursor += split_for
            cursor += self.rng.uniform(1.0, 2.5)
        return cursor

    # -- the request driver --------------------------------------------------------

    def _drive(self) -> None:
        counter = self._counters[self._next_counter % len(self._counters)]
        self._next_counter += 1
        up = [
            core.name
            for core in self.cluster.running_cores()
            if self.cluster.transport.is_up(core.name)
        ]
        if not up:
            return
        seat = self.rng.choice(sorted(up))
        try:
            fresh = self.cluster.stub_at(seat, counter)
            fresh.increment()
            self.report.requests_ok += 1
        except FarGoError:
            self.report.typed_errors += 1
        except Exception as exc:  # noqa: BLE001 - the invariant under test
            self.report.violations.append(
                f"untyped failure at t={self.cluster.now:.2f}: {exc!r}"
            )

    # -- invariants ------------------------------------------------------------------

    def _check_invariants(self) -> None:
        network = self.cluster.transport
        hosts: dict = {}
        for core in self.cluster.running_cores():
            if not network.is_up(core.name):
                continue
            for complet_id in core.repository.complet_ids():
                hosts.setdefault(complet_id, []).append(core.name)
        duplicated = {cid for cid, names in hosts.items() if len(names) > 1}
        # One check of grace: a revived Core holds its stale copies until
        # a detector notices it and reconciliation runs (≤ one interval).
        for complet_id in duplicated & self._pending_dups:
            self.report.violations.append(
                f"identity {complet_id} hosted at {hosts[complet_id]} "
                f"for two checks at t={self.cluster.now:.2f}"
            )
        self._pending_dups = duplicated

        assert self.cluster.recovery is not None
        reports = self.cluster.recovery.reports
        for report in reports[self._seen_reports:]:
            for entry in report.unrepaired:
                self.report.violations.append(
                    f"recovery of {report.failed} at t={report.at:.2f} left "
                    f"tracker {entry} pointing into the grave"
                )
        self._seen_reports = len(reports)

    def _check_final_reachability(self) -> None:
        for counter in self._counters:
            try:
                seat = min(
                    core.name
                    for core in self.cluster.running_cores()
                    if self.cluster.transport.is_up(core.name)
                )
                fresh = self.cluster.stub_at(seat, counter)
                fresh.read()
            except Exception as exc:  # noqa: BLE001 - report, do not raise
                self.report.violations.append(
                    f"counter born at {counter._fargo_target_id.birth_core} "
                    f"unreachable after full heal: {exc!r}"
                )

    # -- execution ---------------------------------------------------------------------

    def execute(self) -> ChaosReport:
        """Run the scenario to completion and return its report."""
        driver = self.cluster.scheduler.call_every(
            DRIVE_PERIOD, self._drive, first_delay=DRIVE_PERIOD / 2
        )
        # Settle window: every failure healed, detectors notice revivals
        # (fail/recover verdicts land within fail_after + one interval),
        # reconciliation runs, and the last checkpoints refresh.
        settle = self.detector.fail_after + 3 * self.detector.interval + 1.5
        horizon = self._end + settle
        while self.cluster.now < horizon:
            self.cluster.advance(CHECK_PERIOD)
            self._check_invariants()
        driver.cancel()
        self._check_final_reachability()
        assert self.cluster.recovery is not None
        if self.cluster.sanitizer is not None:
            # No layout script drives this workload, so every operation
            # the cluster performs is causally ordered — an observed
            # race means the happens-before bookkeeping itself broke.
            for race in self.cluster.sanitizer.races:
                self.report.violations.append(
                    f"unexplained layout race: {race.describe()}"
                )
        self.report.injections = self.injector.injected_count()
        self.report.recoveries = len(self.cluster.recovery.reports)
        self.report.duration = self.cluster.now
        return self.report


class ProcessChaosRun:
    """Seeded kill-and-heal chaos against real OS-process Cores.

    The schedule (which child dies, by which signal, after how long) is
    drawn from the seed; the clock is real, so run *outcomes* are not
    bit-reproducible — what is checked instead are the supervision
    guarantees: every kill heals within ``mttr_budget`` wall seconds,
    restored complets keep their identities, pre-kill references keep
    working, and every request failure in between is a typed error.
    """

    def __init__(
        self,
        seed: int,
        *,
        cores: int = 2,
        kills: int = 2,
        mttr_budget: float = 20.0,
        tracing: bool = False,
    ) -> None:
        from repro.cluster.launch import CoreProcesses

        self.seed = seed
        self.rng = random.Random(seed)
        self.names = [f"core{i}" for i in range(cores)]
        self.kills = kills
        self.mttr_budget = mttr_budget
        self.tracing = tracing
        self.checkpoint_dir = tempfile.mkdtemp(prefix="repro-chaos-ckpt-")
        self.procs = CoreProcesses(
            self.names,
            checkpoint_dir=self.checkpoint_dir,
            checkpoint_interval=0.2,
        )
        self.supervisor = None
        self.report = ChaosReport(seed=seed)
        self._counters = []
        self._ids: list[str] = []
        self._spans: list = []

    # -- workload ----------------------------------------------------------

    def _drive(self, rounds: int) -> None:
        for _ in range(rounds):
            counter = self.rng.choice(self._counters)
            try:
                counter.increment()
                self.report.requests_ok += 1
            except FarGoError:
                self.report.typed_errors += 1
            except Exception as exc:  # noqa: BLE001 - the invariant under test
                self.report.violations.append(
                    f"untyped failure during real-process chaos: {exc!r}"
                )
            time.sleep(0.02)

    def _await_heal(self, victim: str) -> float | None:
        """Wall seconds until the supervisor reports ``victim`` healed."""
        assert self.supervisor is not None
        started = time.monotonic()
        deadline = started + self.mttr_budget
        while time.monotonic() < deadline:
            child = self.supervisor.state()["children"][victim]
            if child["status"] == "running" and child["restarts"] > 0:
                return time.monotonic() - started
            if child["status"] == "failed":
                return None  # escalated: the budget can never be met
            time.sleep(0.05)
        return None

    # -- execution ---------------------------------------------------------

    def execute(self) -> ChaosReport:
        from repro.cluster.supervisor import RestartPolicy, Supervisor

        started = time.monotonic()
        try:
            self.procs.start()
            if self.tracing:
                self.procs.driver.tracer.enabled = True
            self.supervisor = Supervisor(
                self.procs,
                policy=RestartPolicy(max_restarts=self.kills + 1, window=300.0),
            ).start()
            for name in self.names:
                counter = Counter(0, _core=self.procs.driver, _at=name)
                self._counters.append(counter)
                self._ids.append(str(counter._fargo_target_id))
            self._drive(5)
            time.sleep(0.5)  # first durable checkpoints land
            restart_total = 0
            for _ in range(self.kills):
                victim = self.rng.choice(self.names)
                kind = self.rng.choice((signal.SIGKILL, signal.SIGTERM))
                process = self.procs.processes[victim]
                os.kill(process.pid, kind)
                self.report.injections += 1
                mttr = self._await_heal(victim)
                if mttr is None:
                    self.report.violations.append(
                        f"{victim} (killed by {signal.Signals(kind).name}) did not "
                        f"heal within the {self.mttr_budget:.0f}s MTTR budget"
                    )
                    break
                restart_total += 1
                self._drive(5)
                time.sleep(0.3)  # fresh checkpoints before the next kill
            self.report.recoveries = restart_total
            self._check_final_reachability()
        finally:
            self.report.duration = time.monotonic() - started
            if self.procs.driver is not None:
                self._spans = self.procs.driver.tracer.spans()
            self.close()
        return self.report

    def _check_final_reachability(self) -> None:
        for counter, original_id in zip(self._counters, self._ids):
            try:
                counter.read()
            except Exception as exc:  # noqa: BLE001 - report, do not raise
                self.report.violations.append(
                    f"counter {original_id} unreachable after heal: {exc!r}"
                )
        # Identity preservation: the reborn hosts answer for the same ids.
        hosted: set[str] = set()
        for name in self.names:
            try:
                hosted.update(self.procs.driver.admin(name, "complets"))
            except FarGoError:
                continue
        for original_id in self._ids:
            if original_id not in hosted:
                self.report.violations.append(
                    f"identity {original_id} lost across process restarts"
                )

    def chrome_trace_json(self, *, indent: int | None = None) -> str:
        """Driver-side spans (supervisor:restart included) as Chrome JSON."""
        from repro.trace.export import chrome_trace_json

        driver = self.procs.driver
        spans = driver.tracer.spans() if driver is not None else self._spans
        return chrome_trace_json(spans, indent=indent)

    def close(self) -> None:
        if self.supervisor is not None:
            self.supervisor.stop()
        self.procs.stop()
        shutil.rmtree(self.checkpoint_dir, ignore_errors=True)


def run_process_seeds(
    seeds: list[int],
    *,
    cores: int = 2,
    kills: int = 2,
    mttr_budget: float = 20.0,
    tracing: bool = False,
) -> tuple[list[ChaosReport], "ProcessChaosRun | None"]:
    """Run each seed against real processes; reports + first failing run."""
    reports: list[ChaosReport] = []
    first_failure: ProcessChaosRun | None = None
    for seed in seeds:
        run = ProcessChaosRun(
            seed, cores=cores, kills=kills, mttr_budget=mttr_budget, tracing=tracing
        )
        reports.append(run.execute())
        if not reports[-1].passed and first_failure is None:
            first_failure = run
    return reports, first_failure


def run_seeds(
    seeds: list[int],
    *,
    cores: int = 4,
    events: int = 6,
    tracing: bool = False,
    sanitize: bool = False,
) -> tuple[list[ChaosReport], "ChaosRun | None"]:
    """Run each seed; returns the reports and the first failing run."""
    reports: list[ChaosReport] = []
    first_failure: ChaosRun | None = None
    for seed in seeds:
        run = ChaosRun(
            seed, cores=cores, events=events, tracing=tracing, sanitize=sanitize
        )
        reports.append(run.execute())
        if not reports[-1].passed and first_failure is None:
            first_failure = run
    return reports, first_failure


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="seeded recovery chaos runs")
    parser.add_argument(
        "--seeds", default="1,2,3,4,5",
        help="comma-separated seeds to replay (default: 1,2,3,4,5)",
    )
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--events", type=int, default=6)
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a Chrome trace of the first failing run to FILE",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="run with the LayoutSanitizer on; any observed layout race "
        "is a violation (this workload performs no concurrent layout ops)",
    )
    parser.add_argument(
        "--real", action="store_true",
        help="run against real OS-process Cores under a Supervisor: the "
        "seeded schedule SIGKILLs/SIGTERMs children mid-workload and the "
        "MTTR invariant bounds every heal",
    )
    parser.add_argument(
        "--kills", type=int, default=2,
        help="process-kill events per seed (--real mode only)",
    )
    parser.add_argument(
        "--mttr-budget", type=float, default=20.0,
        help="wall seconds each kill must heal within (--real mode only)",
    )
    options = parser.parse_args(argv)
    seeds = [int(s) for s in options.seeds.split(",") if s.strip()]
    if options.real:
        reports, first_failure = run_process_seeds(
            seeds, cores=options.cores, kills=options.kills,
            mttr_budget=options.mttr_budget, tracing=options.trace is not None,
        )
    else:
        reports, first_failure = run_seeds(
            seeds, cores=options.cores, events=options.events,
            tracing=options.trace is not None, sanitize=options.sanitize,
        )
    for report in reports:
        print(report.summary())
    failed = [r for r in reports if not r.passed]
    if failed and first_failure is not None and options.trace:
        if isinstance(first_failure, ProcessChaosRun):
            trace_json = first_failure.chrome_trace_json(indent=2)
        else:
            trace_json = first_failure.cluster.chrome_trace_json(indent=2)
        with open(options.trace, "w", encoding="utf-8") as handle:
            handle.write(trace_json)
        print(f"wrote Chrome trace of seed {first_failure.seed} to {options.trace}")
    print(f"{len(reports) - len(failed)}/{len(reports)} seeds passed")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
