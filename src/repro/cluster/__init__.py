"""Cluster harness: build and drive multi-Core FarGo deployments.

The :class:`~repro.cluster.cluster.Cluster` owns the shared clock, the
transport (simulated network by default, per-Core TCP hubs with
``transport="tcp"``), and a set of Cores.  Topology helpers shape the
simulated link matrix (LAN/WAN profiles), the failure injector schedules
crashes and link degradation through the transport's chaos hooks, and
:mod:`repro.cluster.launch` runs Cores as separate OS processes over
real TCP.
"""

from repro.cluster.cluster import Cluster, TransportFactory
from repro.cluster.topology import configure_star, configure_uniform, configure_wan
from repro.cluster.failures import FailureInjector
from repro.cluster.launch import CoreProcesses
from repro.cluster.supervisor import RestartPolicy, Supervisor

__all__ = [
    "Cluster",
    "TransportFactory",
    "configure_star",
    "configure_uniform",
    "configure_wan",
    "FailureInjector",
    "CoreProcesses",
    "RestartPolicy",
    "Supervisor",
]
