"""Cluster harness: build and drive multi-Core FarGo deployments.

The :class:`~repro.cluster.cluster.Cluster` owns the shared virtual
clock, the simulated network, and a set of Cores.  Topology helpers
shape the link matrix (LAN/WAN profiles), the failure injector schedules
crashes and link degradation on the virtual timeline, and the workload
module provides reusable complets for examples, tests and benchmarks.
"""

from repro.cluster.cluster import Cluster
from repro.cluster.topology import configure_star, configure_uniform, configure_wan
from repro.cluster.failures import FailureInjector

__all__ = [
    "Cluster",
    "configure_star",
    "configure_uniform",
    "configure_wan",
    "FailureInjector",
]
