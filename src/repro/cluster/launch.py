"""Multi-process deployment: Cores as separate OS processes over TCP.

This is the deployment shape of the paper — one stationary Core runtime
per machine/process, complets moving between them — realised with
:class:`~repro.net.tcp.TcpTransport`.  Two halves:

- **Child**: ``python -m repro.cluster.launch --serve --name B --port N
  --peer A=127.0.0.1:M ...`` runs one Core until it is shut down
  (remotely via the ``shutdown`` admin operation, or by signal).  It
  prints ``READY <name> <port>`` on stdout once its listener accepts.
- **Parent**: :class:`CoreProcesses` preallocates a port per Core,
  spawns the children with the full peer map, runs a local *driver*
  Core on its own hub (the experimenter's seat: instantiate, move,
  admin — everything goes through ordinary Core APIs over TCP), and
  tears everything down on exit.

The children inherit the parent's ``sys.path`` via ``PYTHONPATH`` so
anchor classes defined in the driving program (e.g. a test suite's
shared module) unpickle on the far side.

Cross-process recovery rides on durable checkpoints: pass
``checkpoint_dir`` and every child periodically snapshots its hosted
complets into a shared :class:`~repro.recovery.FileCheckpointStore`
there; a child started with ``--recover`` (what the
:class:`~repro.cluster.supervisor.Supervisor` does when it respawns a
dead one) restores the complets its predecessor last checkpointed —
identity preserved — before announcing READY (see docs/FAILURES.md).
"""

from __future__ import annotations

import argparse
import logging
import os
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.core import Core
from repro.errors import ConfigurationError, CoreError, FarGoError, TransportError
from repro.net.tcp import TcpTransport
from repro.sim.clock import RealClock
from repro.sim.scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.recovery.store import FileCheckpointStore

logger = logging.getLogger(__name__)

#: How often a serving child sweeps its scheduler for due timers.
_SERVE_INTERVAL = 0.02

#: stdout line a child prints once its listener is accepting.
READY_PREFIX = "READY"


def free_port(host: str = "127.0.0.1") -> int:
    """Reserve an ephemeral port number (bind-to-zero trick).

    The socket is closed again, so a race with another process is
    possible but unlikely; good enough for localhost test deployments.
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        return sock.getsockname()[1]


def _parse_peer(spec: str) -> tuple[str, tuple[str, int]]:
    try:
        name, address = spec.split("=", 1)
        host, port = address.rsplit(":", 1)
        return name, (host, int(port))
    except ValueError:
        raise ConfigurationError(
            f"peer spec {spec!r} is not of the form name=host:port"
        ) from None


class ChildCheckpointer:
    """Periodic durable checkpoints of every complet a child Core hosts.

    The in-process :class:`~repro.recovery.CheckpointManager` protects
    individual complets through the cluster harness; a child process has
    no harness, so this standalone checkpointer sweeps the whole
    repository instead — every hosted complet, with its local pull-group
    — into the shared :class:`~repro.recovery.FileCheckpointStore`.
    Each record names this Core as host, which is exactly what a
    successor process (``--recover``) and the cluster-side
    :class:`~repro.recovery.RecoveryManager` key on.
    """

    def __init__(
        self, core: Core, store: "FileCheckpointStore", interval: float = 0.5
    ) -> None:
        if interval <= 0.0:
            raise ConfigurationError(f"checkpoint interval must be positive: {interval}")
        self.core = core
        self.store = store
        self.interval = interval
        self._timer = None

    def start(self) -> None:
        self._timer = self.core.scheduler.call_every(self.interval, self.sweep)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def sweep(self) -> int:
        """Checkpoint every hosted complet once; records written."""
        from repro.core import persistence
        from repro.recovery.checkpoint import local_pull_group
        from repro.recovery.store import CheckpointRecord

        core = self.core
        written = 0
        now = core.scheduler.clock.now()
        taken = core.metrics.counter("checkpoint.taken")
        for complet_id in core.repository.complet_ids():
            anchor = core.repository.get(complet_id)
            if anchor is None:
                continue
            group = tuple(
                member.complet_id for member in local_pull_group(core, anchor)
            )
            try:
                snap = persistence.snapshot(core, anchor)
            except FarGoError:
                logger.warning(
                    "durable checkpoint of %s at %s failed",
                    complet_id, core.name, exc_info=True,
                )
                continue
            self.store.put(
                CheckpointRecord(
                    complet_id=complet_id,
                    data=snap.to_bytes(),
                    taken_at=now,
                    host=core.name,
                    group=group,
                )
            )
            taken.inc()
            written += 1
        return written


def restore_from_store(core: Core, store: "FileCheckpointStore") -> list[str]:
    """Restore the complets ``core``'s predecessor last checkpointed.

    Runs in a freshly-started child before it announces READY: every
    record whose last known host is this Core's name is brought back
    under its *original* identity (the repository is empty and no
    registry entry can contradict a newborn process, so
    ``keep_identity`` cannot be refused locally).  Returns the restored
    ids' display forms.
    """
    from repro.core import persistence

    restored: list[str] = []
    for record in store.hosted_at(core.name):
        try:
            snap = persistence.Snapshot.from_bytes(record.data)
            stub = persistence.restore(core, snap, keep_identity=True)
        except FarGoError:
            logger.warning(
                "restore of %s at reborn %s failed",
                record.complet_id, core.name, exc_info=True,
            )
            continue
        from repro.complet.stub import stub_target_id, stub_tracker

        new_id = stub_target_id(stub)
        core.locator.publish(new_id, stub_tracker(stub).address)
        restored.append(str(new_id))
    return restored


def serve(
    name: str,
    port: int,
    peers: dict[str, tuple[str, int]],
    *,
    host: str = "127.0.0.1",
    ready_stream=None,
    checkpoint_dir: str | None = None,
    checkpoint_interval: float = 0.5,
    recover: bool = False,
) -> None:
    """Run one Core in this process until it shuts down.

    Blocks; the loop alternates between sleeping and firing due timers,
    which is how heartbeats, watches, and deferred shutdowns execute in
    a real-clock process.  With ``checkpoint_dir`` the Core durably
    checkpoints its hosted complets every ``checkpoint_interval``
    seconds; with ``recover`` it first restores whatever its predecessor
    last checkpointed there (identity preserved), *before* READY — so a
    supervisor's successful probe implies the state is back.
    """
    scheduler = Scheduler(RealClock())
    transport = TcpTransport(scheduler, host=host, ports={name: port})
    core = Core(name, transport, scheduler)
    for peer_name, address in peers.items():
        transport.add_peer(peer_name, address)
    checkpointer = None
    if checkpoint_dir is not None:
        from repro.recovery.store import FileCheckpointStore

        store = FileCheckpointStore(checkpoint_dir)
        if recover:
            restored = restore_from_store(core, store)
            if restored:
                print(
                    f"RESTORED {name} {len(restored)} {' '.join(restored)}",
                    file=sys.stderr, flush=True,
                )
        checkpointer = ChildCheckpointer(core, store, checkpoint_interval)
        checkpointer.start()
    stream = ready_stream if ready_stream is not None else sys.stdout
    print(f"{READY_PREFIX} {name} {transport.local_address(name)[1]}", file=stream, flush=True)
    try:
        while core.is_running:
            scheduler.fire_due()
            time.sleep(_SERVE_INTERVAL)
    finally:
        if checkpointer is not None:
            # A last sweep on graceful shutdown; a SIGKILLed child relies
            # on its periodic sweeps instead.
            try:
                checkpointer.sweep()
            except FarGoError:
                pass
            checkpointer.stop()
        if core.is_running:
            core.shutdown()
        transport.close()


@dataclass
class CoreProcesses:
    """A localhost multi-process deployment of Cores, driven in-process.

    Usage::

        with CoreProcesses(["A", "B"]) as procs:
            driver = procs.driver          # a real Core in this process
            stub = driver.instantiate(Message, "hello", at="A")
            driver.move(stub, "B")

    Every child is a separate Python interpreter running
    :func:`serve`; the driver Core lives on its own
    :class:`~repro.net.tcp.TcpTransport` hub in the calling process, so
    all interaction is genuine TCP traffic.
    """

    names: list[str]
    driver_name: str = "driver"
    host: str = "127.0.0.1"
    python: str = sys.executable
    startup_timeout: float = 20.0
    shutdown_timeout: float = 10.0
    #: Shared durable-checkpoint directory; children checkpoint their
    #: hosted complets there and a respawned child restores from it.
    checkpoint_dir: str | None = None
    checkpoint_interval: float = 0.5

    driver: Core | None = field(default=None, init=False)
    transport: TcpTransport | None = field(default=None, init=False)
    processes: dict[str, subprocess.Popen] = field(default_factory=dict, init=False)
    addresses: dict[str, tuple[str, int]] = field(default_factory=dict, init=False)

    def __enter__(self) -> "CoreProcesses":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self) -> "CoreProcesses":
        if self.driver is not None:
            raise ConfigurationError("CoreProcesses is already started")
        if self.driver_name in self.names:
            raise ConfigurationError(
                f"driver name {self.driver_name!r} collides with a child Core"
            )
        for name in self.names:
            self.addresses[name] = (self.host, free_port(self.host))
        self.addresses[self.driver_name] = (self.host, free_port(self.host))

        for name in self.names:
            self.spawn_child(name)

        scheduler = Scheduler(RealClock())
        self.transport = TcpTransport(
            scheduler, host=self.host,
            ports={self.driver_name: self.addresses[self.driver_name][1]},
        )
        self.driver = Core(self.driver_name, self.transport, scheduler)
        for name in self.names:
            self.transport.add_peer(name, self.addresses[name])
        try:
            self._await_ready()
        except Exception:
            self.stop()
            raise
        return self

    def command_for(self, name: str, *, recover: bool = False) -> list[str]:
        """The argv that runs child Core ``name`` (used for respawns too)."""
        command = [
            self.python, "-m", "repro.cluster.launch",
            "--serve", "--name", name, "--host", self.host,
            "--port", str(self.addresses[name][1]),
        ]
        for peer_name, (peer_host, peer_port) in self.addresses.items():
            if peer_name != name:
                command += ["--peer", f"{peer_name}={peer_host}:{peer_port}"]
        if self.checkpoint_dir is not None:
            command += [
                "--checkpoint-dir", self.checkpoint_dir,
                "--checkpoint-interval", str(self.checkpoint_interval),
            ]
            if recover:
                command.append("--recover")
        return command

    def spawn_child(self, name: str, *, recover: bool = False) -> subprocess.Popen:
        """(Re-)spawn child Core ``name`` on its preallocated address.

        With ``recover=True`` the child restores its predecessor's
        durable checkpoints before READY (requires ``checkpoint_dir``).
        Replaces any previous process handle for ``name``; the caller is
        responsible for the old process being gone.
        """
        if name not in self.addresses:
            raise ConfigurationError(f"unknown child Core {name!r}")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        process = subprocess.Popen(
            self.command_for(name, recover=recover),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        self.processes[name] = process
        return process

    def await_child(self, name: str, timeout: float | None = None) -> None:
        """Block until child ``name``'s listener answers (probe)."""
        assert self.transport is not None
        budget = timeout if timeout is not None else self.startup_timeout
        deadline = time.monotonic() + budget
        process = self.processes[name]
        while not self.transport.probe(name, timeout=1.0):
            if process.poll() is not None:
                _out, err = process.communicate()
                raise CoreError(
                    f"child Core {name!r} exited with status "
                    f"{process.returncode} during startup:\n{err}"
                )
            if time.monotonic() > deadline:
                raise CoreError(
                    f"child Core {name!r} did not come up within {budget}s"
                )
            time.sleep(0.05)

    def _await_ready(self) -> None:
        """Block until every child's listener answers (READY + probe)."""
        deadline = time.monotonic() + self.startup_timeout
        for name in self.names:
            self.await_child(name, timeout=max(0.1, deadline - time.monotonic()))

    def stop(self) -> None:
        """Shut children down gracefully, then release the driver hub."""
        driver = self.driver
        for name, process in self.processes.items():
            if process.poll() is not None:
                continue
            if driver is not None and driver.is_running:
                try:
                    # The delay lets the reply escape before the child's
                    # listener closes.
                    driver.admin(name, "shutdown", delay=0.1)
                except (CoreError, TransportError):
                    pass
        for process in self.processes.values():
            try:
                process.wait(timeout=self.shutdown_timeout)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=self.shutdown_timeout)
        self.processes.clear()
        if driver is not None and driver.is_running:
            driver.shutdown()
        if self.transport is not None:
            self.transport.close()
        self.driver = None
        self.transport = None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.launch",
        description="Run one FarGo Core as an OS process over TCP.",
    )
    parser.add_argument("--serve", action="store_true", help="run a Core until shut down")
    parser.add_argument("--name", help="Core name")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="listener port (0 = ephemeral)")
    parser.add_argument(
        "--peer", action="append", default=[], metavar="NAME=HOST:PORT",
        help="address of another Core (repeatable)",
    )
    parser.add_argument(
        "--checkpoint-dir", default=None,
        help="shared FileCheckpointStore directory for durable checkpoints",
    )
    parser.add_argument(
        "--checkpoint-interval", type=float, default=0.5,
        help="seconds between durable checkpoint sweeps",
    )
    parser.add_argument(
        "--recover", action="store_true",
        help="restore this Core's last durable checkpoints before READY",
    )
    args = parser.parse_args(argv)
    if not args.serve or not args.name:
        parser.error("--serve and --name are required")
    if args.recover and not args.checkpoint_dir:
        parser.error("--recover requires --checkpoint-dir")
    peers = dict(_parse_peer(spec) for spec in args.peer)
    serve(
        args.name, args.port, peers, host=args.host,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_interval=args.checkpoint_interval,
        recover=args.recover,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    sys.exit(main())
