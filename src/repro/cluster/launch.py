"""Multi-process deployment: Cores as separate OS processes over TCP.

This is the deployment shape of the paper — one stationary Core runtime
per machine/process, complets moving between them — realised with
:class:`~repro.net.tcp.TcpTransport`.  Two halves:

- **Child**: ``python -m repro.cluster.launch --serve --name B --port N
  --peer A=127.0.0.1:M ...`` runs one Core until it is shut down
  (remotely via the ``shutdown`` admin operation, or by signal).  It
  prints ``READY <name> <port>`` on stdout once its listener accepts.
- **Parent**: :class:`CoreProcesses` preallocates a port per Core,
  spawns the children with the full peer map, runs a local *driver*
  Core on its own hub (the experimenter's seat: instantiate, move,
  admin — everything goes through ordinary Core APIs over TCP), and
  tears everything down on exit.

The children inherit the parent's ``sys.path`` via ``PYTHONPATH`` so
anchor classes defined in the driving program (e.g. a test suite's
shared module) unpickle on the far side.  Cross-process recovery is out
of scope: checkpoint/restore travels as bytes, but the
:class:`~repro.recovery.RecoveryManager` needs in-process Core handles
(see docs/TRANSPORT.md).
"""

from __future__ import annotations

import argparse
import os
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field

from repro.core.core import Core
from repro.errors import ConfigurationError, CoreError, TransportError
from repro.net.tcp import TcpTransport
from repro.sim.clock import RealClock
from repro.sim.scheduler import Scheduler

#: How often a serving child sweeps its scheduler for due timers.
_SERVE_INTERVAL = 0.02

#: stdout line a child prints once its listener is accepting.
READY_PREFIX = "READY"


def free_port(host: str = "127.0.0.1") -> int:
    """Reserve an ephemeral port number (bind-to-zero trick).

    The socket is closed again, so a race with another process is
    possible but unlikely; good enough for localhost test deployments.
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        return sock.getsockname()[1]


def _parse_peer(spec: str) -> tuple[str, tuple[str, int]]:
    try:
        name, address = spec.split("=", 1)
        host, port = address.rsplit(":", 1)
        return name, (host, int(port))
    except ValueError:
        raise ConfigurationError(
            f"peer spec {spec!r} is not of the form name=host:port"
        ) from None


def serve(
    name: str,
    port: int,
    peers: dict[str, tuple[str, int]],
    *,
    host: str = "127.0.0.1",
    ready_stream=None,
) -> None:
    """Run one Core in this process until it shuts down.

    Blocks; the loop alternates between sleeping and firing due timers,
    which is how heartbeats, watches, and deferred shutdowns execute in
    a real-clock process.
    """
    scheduler = Scheduler(RealClock())
    transport = TcpTransport(scheduler, host=host, ports={name: port})
    core = Core(name, transport, scheduler)
    for peer_name, address in peers.items():
        transport.add_peer(peer_name, address)
    stream = ready_stream if ready_stream is not None else sys.stdout
    print(f"{READY_PREFIX} {name} {transport.local_address(name)[1]}", file=stream, flush=True)
    try:
        while core.is_running:
            scheduler.fire_due()
            time.sleep(_SERVE_INTERVAL)
    finally:
        if core.is_running:
            core.shutdown()
        transport.close()


@dataclass
class CoreProcesses:
    """A localhost multi-process deployment of Cores, driven in-process.

    Usage::

        with CoreProcesses(["A", "B"]) as procs:
            driver = procs.driver          # a real Core in this process
            stub = driver.instantiate(Message, "hello", at="A")
            driver.move(stub, "B")

    Every child is a separate Python interpreter running
    :func:`serve`; the driver Core lives on its own
    :class:`~repro.net.tcp.TcpTransport` hub in the calling process, so
    all interaction is genuine TCP traffic.
    """

    names: list[str]
    driver_name: str = "driver"
    host: str = "127.0.0.1"
    python: str = sys.executable
    startup_timeout: float = 20.0
    shutdown_timeout: float = 10.0

    driver: Core | None = field(default=None, init=False)
    transport: TcpTransport | None = field(default=None, init=False)
    processes: dict[str, subprocess.Popen] = field(default_factory=dict, init=False)
    addresses: dict[str, tuple[str, int]] = field(default_factory=dict, init=False)

    def __enter__(self) -> "CoreProcesses":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self) -> "CoreProcesses":
        if self.driver is not None:
            raise ConfigurationError("CoreProcesses is already started")
        if self.driver_name in self.names:
            raise ConfigurationError(
                f"driver name {self.driver_name!r} collides with a child Core"
            )
        for name in self.names:
            self.addresses[name] = (self.host, free_port(self.host))
        self.addresses[self.driver_name] = (self.host, free_port(self.host))

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        for name in self.names:
            command = [
                self.python, "-m", "repro.cluster.launch",
                "--serve", "--name", name, "--host", self.host,
                "--port", str(self.addresses[name][1]),
            ]
            for peer_name, (peer_host, peer_port) in self.addresses.items():
                if peer_name != name:
                    command += ["--peer", f"{peer_name}={peer_host}:{peer_port}"]
            self.processes[name] = subprocess.Popen(
                command,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=env,
            )

        scheduler = Scheduler(RealClock())
        self.transport = TcpTransport(
            scheduler, host=self.host,
            ports={self.driver_name: self.addresses[self.driver_name][1]},
        )
        self.driver = Core(self.driver_name, self.transport, scheduler)
        for name in self.names:
            self.transport.add_peer(name, self.addresses[name])
        try:
            self._await_ready()
        except Exception:
            self.stop()
            raise
        return self

    def _await_ready(self) -> None:
        """Block until every child's listener answers (READY + probe)."""
        assert self.transport is not None
        deadline = time.monotonic() + self.startup_timeout
        for name in self.names:
            process = self.processes[name]
            while not self.transport.probe(name, timeout=1.0):
                if process.poll() is not None:
                    _out, err = process.communicate()
                    raise CoreError(
                        f"child Core {name!r} exited with status "
                        f"{process.returncode} during startup:\n{err}"
                    )
                if time.monotonic() > deadline:
                    raise CoreError(
                        f"child Core {name!r} did not come up within "
                        f"{self.startup_timeout}s"
                    )
                time.sleep(0.05)

    def stop(self) -> None:
        """Shut children down gracefully, then release the driver hub."""
        driver = self.driver
        for name, process in self.processes.items():
            if process.poll() is not None:
                continue
            if driver is not None and driver.is_running:
                try:
                    # The delay lets the reply escape before the child's
                    # listener closes.
                    driver.admin(name, "shutdown", delay=0.1)
                except (CoreError, TransportError):
                    pass
        for process in self.processes.values():
            try:
                process.wait(timeout=self.shutdown_timeout)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=self.shutdown_timeout)
        self.processes.clear()
        if driver is not None and driver.is_running:
            driver.shutdown()
        if self.transport is not None:
            self.transport.close()
        self.driver = None
        self.transport = None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.launch",
        description="Run one FarGo Core as an OS process over TCP.",
    )
    parser.add_argument("--serve", action="store_true", help="run a Core until shut down")
    parser.add_argument("--name", help="Core name")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="listener port (0 = ephemeral)")
    parser.add_argument(
        "--peer", action="append", default=[], metavar="NAME=HOST:PORT",
        help="address of another Core (repeatable)",
    )
    args = parser.parse_args(argv)
    if not args.serve or not args.name:
        parser.error("--serve and --name are required")
    peers = dict(_parse_peer(spec) for spec in args.peer)
    serve(args.name, args.port, peers, host=args.host)
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    sys.exit(main())
