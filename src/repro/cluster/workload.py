"""Reusable workload complets for examples, tests, and benchmarks.

These anchors model the interaction patterns the paper's motivation
describes: chatty client/server pairs whose affinity changes over time,
a bulky read-mostly data source that benefits from ``duplicate``
references, pipelines of processing stages, and site-bound device
complets (printers) for ``stamp`` references.  All classes live at
module level so they are importable — and therefore marshalable — on
every Core.
"""

from __future__ import annotations

from repro.complet.anchor import Anchor
from repro.complet.stub import compile_complet


class Echo_(Anchor):
    """Minimal complet: returns what it is told (invocation plumbing tests)."""

    def __init__(self, tag: str = "echo") -> None:
        self.tag = tag
        self.calls = 0

    def echo(self, value):
        """Return ``value`` unchanged (after by-value marshaling)."""
        self.calls += 1
        return value

    def ping(self) -> str:
        self.calls += 1
        return self.tag


class Counter_(Anchor):
    """Stateful complet: increments survive migration."""

    def __init__(self, start: int = 0) -> None:
        self.value = start

    def increment(self, by: int = 1) -> int:
        self.value += by
        return self.value

    def read(self) -> int:
        return self.value


class Server_(Anchor):
    """A compute service answering requests of configurable reply size."""

    def __init__(self, reply_size: int = 256) -> None:
        self.reply_size = reply_size
        self.requests_served = 0

    def handle(self, request: bytes) -> bytes:
        """Serve one request; the reply payload models the response body."""
        self.requests_served += 1
        return bytes(self.reply_size)


class Client_(Anchor):
    """A client holding a complet reference to a :class:`Server_`.

    ``run(n)`` issues ``n`` requests through the reference; the Core's
    application profiling observes the resulting invocation rate.
    """

    def __init__(self, server, request_size: int = 256) -> None:
        self.server = server
        self.request_size = request_size
        self.requests_sent = 0

    def run(self, count: int = 1) -> int:
        payload = bytes(self.request_size)
        for _ in range(count):
            self.server.handle(payload)
            self.requests_sent += 1
        return self.requests_sent


class DataSource_(Anchor):
    """A bulky, read-mostly data holder (the ``duplicate`` use case)."""

    def __init__(self, size: int = 64_000, seed: int = 7) -> None:
        self.blob = bytes((seed + i) % 251 for i in range(size))
        self.reads = 0

    def read(self, offset: int = 0, length: int = 1_024) -> bytes:
        self.reads += 1
        return self.blob[offset:offset + length]

    def checksum(self) -> int:
        self.reads += 1
        return sum(self.blob) % 65_521


class Worker_(Anchor):
    """A worker reading from a :class:`DataSource_` through a reference."""

    def __init__(self, source, chunk: int = 1_024) -> None:
        self.source = source
        self.chunk = chunk
        self.processed = 0

    def work(self, rounds: int = 1) -> int:
        for i in range(rounds):
            data = self.source.read(offset=(i * self.chunk) % 4_096, length=self.chunk)
            self.processed += len(data)
        return self.processed


class Stage_(Anchor):
    """One stage of a processing pipeline, forwarding to the next stage."""

    def __init__(self, successor=None, cost_bytes: int = 128) -> None:
        self.successor = successor
        self.cost_bytes = cost_bytes
        self.handled = 0

    def process(self, item: bytes) -> bytes:
        self.handled += 1
        enriched = item + bytes(self.cost_bytes)
        if self.successor is not None:
            return self.successor.process(enriched)
        return enriched


class Printer_(Anchor):
    """A site-bound device complet (the paper's ``stamp`` example)."""

    def __init__(self, site: str = "unknown") -> None:
        self.site = site
        self.printed: list[str] = []

    def print_document(self, text: str) -> str:
        self.printed.append(text)
        return f"printed at {self.site}: {text}"

    def location(self) -> str:
        return self.site


class Desktop_(Anchor):
    """A mobile desktop holding a ``stamp`` reference to a printer."""

    def __init__(self, printer) -> None:
        self.printer = printer

    def print_report(self, text: str) -> str:
        return self.printer.print_document(text)


# Pre-compiled stub classes, importable from anywhere.
Echo = compile_complet(Echo_)
Counter = compile_complet(Counter_)
Server = compile_complet(Server_)
Client = compile_complet(Client_)
DataSource = compile_complet(DataSource_)
Worker = compile_complet(Worker_)
Stage = compile_complet(Stage_)
Printer = compile_complet(Printer_)
Desktop = compile_complet(Desktop_)
