"""The Cluster: a set of Cores over one transport and clock.

The transport backend is pluggable (``transport=`` below): the default
is the deterministic simulated network; ``transport="tcp"`` gives every
Core its own real TCP hub (one listener socket per Core, loopback
wiring), which is the in-process variant of the multi-process deployment
in :mod:`repro.cluster.launch`.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from collections.abc import Callable, Iterable, Iterator
from typing import TYPE_CHECKING

from repro.complet.anchor import Anchor
from repro.complet.stub import Stub, stub_core, stub_target_id, stub_tracker
from repro.core.admin import CoreAdmin
from repro.core.core import Core
from repro.errors import ConfigurationError, CoreNotFoundError
from repro.metrics.registry import merge_snapshots
from repro.net.batching import BatchingTransport, BatchPolicy
from repro.net.retry import RetryPolicy
from repro.net.simnet import SimTransport
from repro.net.tcp import TcpTransport
from repro.net.transport import NetworkStats, Transport, TransportGroup
from repro.store import FileStore, InMemoryStore, ObjectStore
from repro.sim.clock import Clock, RealClock, VirtualClock
from repro.sim.scheduler import Scheduler
from repro.trace.export import Trace, assemble_traces, chrome_trace_json
from repro.trace.tracer import Span

#: Factory signature for ``transport=``: builds one hub per Core.
TransportFactory = Callable[[str, Scheduler], Transport]

#: Granularity of the real-clock :meth:`Cluster.advance` pump.
_PUMP_INTERVAL = 0.02

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.recovery import (
        CheckpointManager,
        CheckpointStore,
        DetectorConfig,
        RecoveryManager,
    )


class Cluster:
    """A deployment of Cores sharing a clock and a network.

    The cluster is the experimenter's handle: it creates Cores, shapes
    links, advances virtual time, injects failures, and reads network
    accounting.  Application code only ever sees Cores and stubs.
    """

    def __init__(
        self,
        names: Iterable[str] = (),
        *,
        bandwidth: float = 1_000_000.0,
        latency: float = 0.01,
        clock: Clock | None = None,
        transport: str | Transport | TransportFactory = "sim",
        eager_pointer_updates: bool = True,
        use_location_registry: bool = False,
        profile_cache_ttl: float = 1.0,
        retry_policy: RetryPolicy | None = None,
        rpc_timeout: float | None = None,
        tracing: bool = False,
        store: "str | bool | ObjectStore | None" = None,
        store_threshold: int | None = None,
        batching: "bool | BatchPolicy" = False,
        sanitize: bool = False,
        checkpoint_store: "str | CheckpointStore | None" = None,
    ) -> None:
        """``transport`` selects the substrate:

        - ``"sim"`` (default) — one shared deterministic
          :class:`~repro.net.simnet.SimTransport`; ``bandwidth`` and
          ``latency`` configure its default links.
        - ``"tcp"`` — a real :class:`~repro.net.tcp.TcpTransport` hub
          per Core on loopback; the clock defaults to a
          :class:`~repro.sim.clock.RealClock` and :meth:`advance`
          becomes a real-time pump.
        - a :class:`~repro.net.transport.Transport` instance — shared
          by every Core (it must host multiple nodes).
        - a callable ``(name, scheduler) -> Transport`` — builds one
          hub per Core; hubs exposing ``local_address``/``add_peer``
          (the TCP shape) are wired to each other automatically.

        ``store`` enables large-payload offloading (:mod:`repro.store`):
        ``"memory"`` (or ``True``) shares one
        :class:`~repro.store.InMemoryStore` across the Cores, ``"file"``
        a cluster-owned :class:`~repro.store.FileStore` in a temporary
        directory (removed by :meth:`close`), or pass an
        :class:`~repro.store.ObjectStore` instance.  ``store_threshold``
        overrides the per-Core offload threshold in bytes.

        ``batching`` wraps every transport hub in a
        :class:`~repro.net.batching.BatchingTransport`; pass ``True``
        for the default :class:`~repro.net.batching.BatchPolicy` or a
        policy instance for custom flush thresholds.

        ``sanitize`` attaches a shared
        :class:`~repro.analysis.sanitizer.LayoutSanitizer`: every move,
        restore, and retype is stamped with a vector clock, concurrent
        conflicting operations are recorded as races
        (``cluster.sanitizer.races``, the ``sanitizer.races`` metric,
        and FG410 diagnostics from :meth:`analyze`).  In-process
        backends only.

        ``checkpoint_store`` selects the backend
        :meth:`enable_recovery` checkpoints into: ``"memory"`` (the
        default in-process :class:`~repro.recovery.CheckpointStore`),
        ``"file"`` (a cluster-owned durable
        :class:`~repro.recovery.FileCheckpointStore` in a temporary
        directory, removed by :meth:`close`), a directory path (a
        durable store there, left in place — the shape the
        multi-process supervisor shares with its children), or a
        :class:`~repro.recovery.CheckpointStore` instance.
        """
        if clock is None:
            clock = RealClock() if transport == "tcp" else VirtualClock()
        self.scheduler = Scheduler(clock)
        #: Per-Core hubs (empty when one shared transport carries all Cores).
        self.transports: dict[str, Transport] = {}
        self._shared_transport: Transport | None = None
        self._transport_factory: TransportFactory | None = None
        if transport == "sim":
            self._shared_transport = SimTransport(
                self.scheduler,
                default_bandwidth=bandwidth,
                default_latency=latency,
            )
        elif transport == "tcp":
            self._transport_factory = lambda name, scheduler: TcpTransport(scheduler)
        elif isinstance(transport, Transport):
            self._shared_transport = transport
        elif callable(transport):
            self._transport_factory = transport
        else:
            raise ConfigurationError(
                f"transport must be 'sim', 'tcp', a Transport, or a factory; "
                f"got {transport!r}"
            )
        self._batch_policy: BatchPolicy | None = None
        if batching:
            self._batch_policy = (
                batching if isinstance(batching, BatchPolicy) else BatchPolicy()
            )
            if self._shared_transport is not None:
                self._shared_transport = BatchingTransport(
                    self._shared_transport, self._batch_policy
                )
        self._store: ObjectStore | None = None
        self._owned_store_dir: str | None = None
        self._owns_store = False
        if store is True:
            store = "memory"
        if store in (None, False):
            pass
        elif store == "memory":
            self._store = InMemoryStore()
            self._owns_store = True
        elif store == "file":
            root = tempfile.mkdtemp(prefix="repro-store-")
            self._store = FileStore(root)
            self._owned_store_dir = root
            self._owns_store = True
        elif isinstance(store, ObjectStore):
            self._store = store
        else:
            raise ConfigurationError(
                f"store must be 'memory', 'file', an ObjectStore, or None; "
                f"got {store!r}"
            )
        self._store_threshold = store_threshold
        self._checkpoint_store: "CheckpointStore | None" = None
        self._owned_checkpoint_dir: str | None = None
        if checkpoint_store is not None:
            from repro.recovery import CheckpointStore as _CkptStore
            from repro.recovery import FileCheckpointStore

            if checkpoint_store == "memory":
                self._checkpoint_store = _CkptStore()
            elif checkpoint_store == "file":
                root = tempfile.mkdtemp(prefix="repro-ckpt-")
                self._checkpoint_store = FileCheckpointStore(root)
                self._owned_checkpoint_dir = root
            elif isinstance(checkpoint_store, _CkptStore):
                self._checkpoint_store = checkpoint_store
            elif isinstance(checkpoint_store, str):
                self._checkpoint_store = FileCheckpointStore(checkpoint_store)
            else:
                raise ConfigurationError(
                    f"checkpoint_store must be 'memory', 'file', a path, a "
                    f"CheckpointStore, or None; got {checkpoint_store!r}"
                )
        self._eager_pointer_updates = eager_pointer_updates
        self._use_location_registry = use_location_registry
        self._profile_cache_ttl = profile_cache_ttl
        self._retry_policy = retry_policy
        self._rpc_timeout = rpc_timeout
        self._tracing = tracing
        self.cores: dict[str, Core] = {}
        #: Recovery layer, attached by :meth:`enable_recovery`.
        self.recovery: "RecoveryManager | None" = None
        self.checkpoints: "CheckpointManager | None" = None
        self._detector_config: "DetectorConfig | None" = None
        #: Script engines attached to this cluster (interaction analysis
        #: reads their installed scripts).
        self._engines: list = []
        #: Shared dynamic race detector (``sanitize=True``), or None.
        self.sanitizer = None
        if sanitize:
            from repro.analysis.sanitizer import LayoutSanitizer

            self.sanitizer = LayoutSanitizer()
        for name in names:
            self.add_core(name)

    # -- construction ---------------------------------------------------------------

    def add_core(self, name: str, **core_kwargs) -> Core:
        """Create and register a new Core."""
        core_kwargs.setdefault("eager_pointer_updates", self._eager_pointer_updates)
        core_kwargs.setdefault("use_location_registry", self._use_location_registry)
        core_kwargs.setdefault("profile_cache_ttl", self._profile_cache_ttl)
        core_kwargs.setdefault("retry_policy", self._retry_policy)
        core_kwargs.setdefault("rpc_timeout", self._rpc_timeout)
        core_kwargs.setdefault("tracing", self._tracing)
        core_kwargs.setdefault("store", self._store)
        core_kwargs.setdefault("store_threshold", self._store_threshold)
        hub = self._transport_for(name)
        core = Core(name, hub, self.scheduler, **core_kwargs)
        core.sanitizer = self.sanitizer
        self.cores[name] = core
        if self._shared_transport is None:
            self._wire_hub(name, hub)
        if self._detector_config is not None:
            self._attach_detector(core)
        if self.checkpoints is not None:
            self.checkpoints.attach(core)
        if self.recovery is not None:
            self.recovery.attach(core)
        return core

    def _transport_for(self, name: str) -> Transport:
        if self._shared_transport is not None:
            return self._shared_transport
        assert self._transport_factory is not None
        hub = self._transport_factory(name, self.scheduler)
        if self._batch_policy is not None:
            hub = BatchingTransport(hub, self._batch_policy)
        self.transports[name] = hub
        return hub

    def _wire_hub(self, name: str, hub: Transport) -> None:
        """Teach per-Core hubs each other's addresses (TCP-shaped hubs)."""
        local_address = getattr(hub, "local_address", None)
        if local_address is None:
            return
        address = local_address(name)
        for other, other_hub in self.transports.items():
            if other == name:
                continue
            other_hub.add_peer(name, address)  # type: ignore[attr-defined]
            hub.add_peer(other, other_hub.local_address(other))  # type: ignore[attr-defined]

    @property
    def transport(self) -> Transport:
        """The cluster-wide transport view.

        The shared hub when one transport carries every Core; otherwise
        a :class:`~repro.net.transport.TransportGroup` over the per-Core
        hubs (fresh each access, so it tracks Cores added later).
        """
        if self._shared_transport is not None:
            return self._shared_transport
        return TransportGroup(dict(self.transports))

    @property
    def network(self) -> Transport:
        """Deprecated alias for :attr:`transport` (pre-protocol name)."""
        return self.transport

    def core(self, name: str) -> Core:
        try:
            return self.cores[name]
        except KeyError:
            raise CoreNotFoundError(f"cluster has no Core named {name!r}") from None

    def __getitem__(self, name: str) -> Core:
        return self.core(name)

    def __iter__(self) -> Iterator[Core]:
        return iter(self.cores.values())

    def core_names(self) -> list[str]:
        return sorted(self.cores)

    def running_cores(self) -> list[Core]:
        return [core for core in self.cores.values() if core.is_running]

    # -- time ---------------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.scheduler.clock.now()

    def advance(self, seconds: float) -> None:
        """Let ``seconds`` of cluster time pass, firing due timers.

        On a virtual clock this is a deterministic sweep.  On a real
        clock (the TCP backend) it becomes a pump: sleep in small steps
        and fire whatever has come due, so the same test code drives
        samplers, watches, and detectors on both backends.
        """
        if self.scheduler.clock.is_virtual:
            self.scheduler.advance(seconds)
            return
        deadline = time.monotonic() + seconds
        while True:
            self.scheduler.fire_due()
            remaining = deadline - time.monotonic()
            if remaining <= 0.0:
                return
            time.sleep(min(_PUMP_INTERVAL, remaining))

    def drain(self) -> None:
        """Run everything already due — deferred continuations and any
        work they cascade into — without moving time forward.

        A continuation that moves its complet again schedules the next
        continuation at the (network-advanced) current instant; the
        reentrant sweep keeps extending until the cascade is dry.
        """
        self.scheduler.advance(0.0)

    # -- topology and failures -------------------------------------------------------------

    def set_link(self, a: str, b: str, **kwargs) -> None:
        self.transport.set_link(a, b, **kwargs)

    def partition(self, *groups: set[str]) -> None:
        self.transport.partition(*groups)

    def heal_partition(self) -> None:
        self.transport.heal_partition()

    def is_core_up(self, name: str) -> bool:
        """Whether ``name`` is attached to the transport and not down."""
        return self.transport.is_up(name)

    def can_reach(self, src: str, dst: str) -> bool:
        """Whether transport-level traffic from ``src`` reaches ``dst``."""
        return self.transport.can_reach(src, dst)

    def shutdown_core(self, name: str) -> None:
        self.core(name).shutdown()

    # -- liveness and recovery ------------------------------------------------------------

    def enable_recovery(
        self,
        *,
        detector: "DetectorConfig | None" = None,
        auto_recover: bool = True,
        store: "CheckpointStore | None" = None,
    ) -> "RecoveryManager":
        """Turn on liveness detection, checkpointing, and recovery.

        Attaches a heartbeat :class:`~repro.recovery.FailureDetector` to
        every running Core (and to Cores added later), a cluster-wide
        :class:`~repro.recovery.CheckpointManager` (protect complets
        with ``cluster.checkpoints.protect(stub, policy)``), and a
        :class:`~repro.recovery.RecoveryManager` that reacts to
        ``coreFailed`` verdicts — automatically unless
        ``auto_recover=False``, in which case recovery runs only when
        asked (``cluster.recovery.recover_core(...)`` or a layout
        script's ``failover`` action).
        """
        from repro.recovery import (
            CheckpointManager,
            DetectorConfig,
            RecoveryManager,
        )

        self._detector_config = detector if detector is not None else DetectorConfig()
        if store is None:
            store = self._checkpoint_store
        self.checkpoints = CheckpointManager(self, store=store)
        self.recovery = RecoveryManager(
            self, self.checkpoints, auto_recover=auto_recover
        )
        for core in self.cores.values():
            self._attach_detector(core)
        return self.recovery

    def _attach_detector(self, core: Core) -> None:
        from repro.recovery import FailureDetector

        if not core.is_running or core.detector is not None:
            return
        config = self._detector_config
        assert config is not None

        def peers() -> list[str]:
            return [name for name in self.core_names() if name != core.name]

        core.detector = FailureDetector(core, peers, config)

    # -- application conveniences -------------------------------------------------------------

    def instantiate(self, anchor_cls: type[Anchor], at: str, *args, **kwargs) -> Stub:
        """Create a complet on Core ``at`` and return its stub."""
        return self.core(at).instantiate(anchor_cls, *args, **kwargs)

    def move(self, stub: Stub, destination: str) -> None:
        """Move the complet behind ``stub`` to Core ``destination``."""
        core = stub_core(stub)
        assert core is not None
        core.move(stub, destination)

    def move_via_host(self, stub: Stub, destination: str) -> None:
        """Ask the complet's *current host* to move it (no forwarding).

        ``move`` routes through the stub's Core, whose tracker gets
        shortened while locating the host; driving the move from the
        host itself leaves every other Core's tracker untouched — the
        way genuine tracker chains form (Figure 2).
        """
        target_id = stub_target_id(stub)
        host = self._find_host(target_id)
        if host is None:
            raise CoreNotFoundError(f"no running Core hosts {target_id}")
        self.core(host).move(target_id, destination)

    def locate(self, stub: Stub) -> str:
        """Name of the Core currently hosting ``stub``'s complet.

        Falls back to a cluster-wide search when the stub's own Core has
        shut down (references die with their Core; the harness can still
        answer the question).
        """
        core = stub_core(stub)
        if core is not None and core.is_running:
            return core.references.locate(stub_tracker(stub))
        target_id = stub_target_id(stub)
        host = self._find_host(target_id)
        if host is None:
            raise CoreNotFoundError(f"no running Core hosts {target_id}")
        return host

    def stub_at(self, core_name: str, stub: Stub) -> Stub:
        """A fresh reference to ``stub``'s complet, wired to ``core_name``.

        Needed when the Core a stub was wired to shuts down: references
        die with their Core (they live inside complets or programs hosted
        there), so a surviving program re-acquires the complet from a
        living Core.
        """
        from repro.complet.relocators import Link
        from repro.complet.tokens import RefToken

        target_id = stub_target_id(stub)
        via = self.core(core_name)
        if via.repository.hosts(target_id):
            return via.references.stub_for_local(target_id)
        host = self._find_host(target_id)
        if host is None:
            raise CoreNotFoundError(f"no running Core hosts {target_id}")
        anchor_ref = stub_tracker(stub).anchor_ref
        address = self.core(host).repository.tracker_for(target_id, anchor_ref).address
        token = RefToken(target_id, anchor_ref, address, Link())
        return via.references.materialize(token)

    def _find_host(self, target_id) -> str | None:
        for core in self.running_cores():
            if core.repository.hosts(target_id):
                return core.name
        return None

    def complets_at(self, name: str) -> list[str]:
        return [str(cid) for cid in self.core(name).repository.complet_ids()]

    def collect_all_trackers(self) -> int:
        """Run tracker GC to a fixpoint across all Cores; total collected.

        Collecting a forwarding tracker releases its pointee, which may
        make trackers on other Cores collectable, so the sweep repeats
        until a pass collects nothing.
        """
        total = 0
        while True:
            collected = sum(
                core.repository.collect_trackers() for core in self.running_cores()
            )
            total += collected
            if collected == 0:
                return total

    # -- administration ------------------------------------------------------------------------

    def admin(self, target: str, *, via: str | None = None) -> CoreAdmin:
        """A typed administration handle for Core ``target``.

        ``via`` names the Core issuing the queries (the administrator's
        seat); it defaults to the target itself, in which case the
        operations run locally.
        """
        via_core = self.core(via) if via is not None else self.core(target)
        return CoreAdmin(via_core, target)

    def register_engine(self, engine) -> None:
        """Attach a :class:`~repro.script.ScriptEngine` for analysis.

        Engines self-register on construction; :meth:`analyze` reads
        their installed scripts for the interaction checks.
        """
        if engine not in self._engines:
            self._engines.append(engine)

    def analyze(
        self,
        script: str | None = None,
        *,
        expected_args: int | None = None,
        plan=None,
    ) -> list:
        """Static diagnostics for the cluster's current state.

        Runs the relocation-semantics checker over the live reference
        graph, the movability checker over every hosted anchor, and the
        interaction checker (FG401–FG404, cross-script FG108) over every
        installed script; with ``script`` it also verifies the candidate
        layout script against the actual topology (Core and complet
        names resolve) and includes it in the interaction set.  ``plan``
        — a :class:`~repro.analysis.MovePlan` — is vetted against the
        topology and the installed rules (FG405–FG409).  When the
        cluster runs with ``sanitize=True``, every race the sanitizer
        has observed so far is reported as FG410.  Returns a sorted
        list of :class:`repro.analysis.Diagnostic`.
        """
        from repro.analysis import (
            TopologyInfo,
            check_anchor_live,
            check_interaction,
            check_plan,
            check_relocation,
            check_script,
            script_set_effects,
            sort_diagnostics,
        )

        topology = TopologyInfo.from_cluster(self)
        diagnostics = list(check_relocation(self))
        for core in self.running_cores():
            for anchor in core.repository.anchors():
                diagnostics.extend(check_anchor_live(anchor, hosted_at=core.name))
        if script is not None:
            diagnostics.extend(
                check_script(
                    script,
                    topology=topology,
                    expected_args=expected_args,
                )
            )
        installed = [
            pair for engine in self._engines for pair in engine.installed
        ]
        pool = list(installed)
        if script is not None:
            pool.append((script, "<candidate>"))
        if pool:
            diagnostics.extend(check_interaction(pool, topology=topology))
        if plan is not None:
            diagnostics.extend(
                check_plan(plan, topology, effects=script_set_effects(installed))
            )
        if self.sanitizer is not None:
            diagnostics.extend(self.sanitizer.diagnostics())
        return sort_diagnostics(diagnostics)

    # -- observability -------------------------------------------------------------------------

    def set_tracing(self, enabled: bool) -> None:
        """Toggle span recording on every Core (including ones added later)."""
        self._tracing = enabled
        for core in self.cores.values():
            core.tracer.enabled = enabled

    def spans(self) -> list[Span]:
        """Every finished span of every Core, ordered by start time."""
        collected: list[Span] = []
        for core in self.cores.values():
            collected.extend(core.tracer.spans())
        collected.sort(key=lambda span: (span.start, span.span_id))
        return collected

    def traces(self) -> dict[str, Trace]:
        """Cluster-wide span trees, keyed by trace id."""
        return assemble_traces(self.spans())

    def clear_spans(self) -> None:
        for core in self.cores.values():
            core.tracer.clear()

    def chrome_trace_json(self, *, indent: int | None = None) -> str:
        """All spans in Chrome ``trace_event`` JSON (about://tracing)."""
        return chrome_trace_json(self.spans(), indent=indent)

    def metrics_snapshot(self) -> dict:
        """Per-Core metrics snapshots plus the cluster-wide aggregate."""
        per_core = [core.metrics.snapshot() for core in self.cores.values()]
        return {"cores": per_core, "cluster": merge_snapshots(per_core)}

    @property
    def store(self) -> "ObjectStore | None":
        """The shared object store, or ``None`` when offloading is off."""
        return self._store

    def store_snapshot(self) -> dict:
        """Object-store state: backend contents plus per-Core client stats.

        ``{"enabled": False}`` when the cluster runs without a store;
        otherwise the store's entry table and statistics under
        ``"store"`` and each Core's resolve-cache counters under
        ``"cores"``.
        """
        if self._store is None:
            return {"enabled": False}
        return {
            "enabled": True,
            "store": self._store.snapshot(),
            "cores": {
                name: core.store_view() for name, core in self.cores.items()
            },
        }

    def _batching_transports(self) -> list[BatchingTransport]:
        hubs: list[Transport | None] = [self._shared_transport]
        hubs.extend(self.transports.values())
        return [hub for hub in hubs if isinstance(hub, BatchingTransport)]

    def batch_snapshot(self) -> dict:
        """Aggregated envelope-batching statistics across all hubs."""
        hubs = self._batching_transports()
        if not hubs:
            return {"enabled": False}
        merged = {
            "batches": 0,
            "batched_messages": 0,
            "passthrough_posts": 0,
            "dropped_messages": 0,
            "flush_triggers": {},
        }
        for hub in hubs:
            snap = hub.batch_stats.snapshot()
            for key in ("batches", "batched_messages",
                        "passthrough_posts", "dropped_messages"):
                merged[key] += snap[key]
            for trigger, count in snap["flush_triggers"].items():
                merged["flush_triggers"][trigger] = (
                    merged["flush_triggers"].get(trigger, 0) + count
                )
        batches = merged["batches"]
        merged["mean_occupancy"] = (
            round(merged["batched_messages"] / batches, 6) if batches else 0.0
        )
        return {"enabled": True, **merged}

    def flush_batches(self) -> None:
        """Flush every pending batch queue now (test/benchmark barriers)."""
        for hub in self._batching_transports():
            hub.flush_all()

    # -- accounting -----------------------------------------------------------------------------

    @property
    def stats(self) -> NetworkStats:
        return self.transport.stats

    def reset_stats(self) -> None:
        """Zero the global network accounting (per-experiment measurement)."""
        self.transport.reset_stats()

    def shutdown_all(self) -> None:
        for core in self.running_cores():
            core.shutdown()

    def close(self) -> None:
        """Shut every Core down and release the transport(s).

        A no-op beyond :meth:`shutdown_all` on the simulated backend;
        on TCP it closes listener sockets and joins the loop threads.
        """
        self.shutdown_all()
        if self._shared_transport is not None:
            self._shared_transport.close()
        for hub in self.transports.values():
            hub.close()
        if self._store is not None and self._owns_store:
            self._store.close()
        if self._owned_store_dir is not None:
            shutil.rmtree(self._owned_store_dir, ignore_errors=True)
            self._owned_store_dir = None
        if self._owned_checkpoint_dir is not None:
            shutil.rmtree(self._owned_checkpoint_dir, ignore_errors=True)
            self._owned_checkpoint_dir = None

    def __repr__(self) -> str:
        return f"<Cluster {self.core_names()} t={self.now:.3f}>"
