"""Failure injection on the virtual timeline.

Schedules the environmental changes the paper's layout policies react
to: link degradation and recovery, link cuts, Core shutdown, and
network partitions — all as timers on the cluster's scheduler, so a
single ``cluster.advance(...)`` replays a whole failure scenario
deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.sim.scheduler import Timer


@dataclass(slots=True)
class FailureInjector:
    """Deterministic scheduler of environmental changes."""

    cluster: Cluster
    #: Log of injected changes: (time, description), for experiment reports.
    log: list[tuple[float, str]] = field(default_factory=list)
    _timers: list[Timer] = field(default_factory=list)

    def _at(self, time: float, description: str, action) -> Timer:
        def fire() -> None:
            self.log.append((self.cluster.now, description))
            action()

        timer = self.cluster.scheduler.call_at(time, fire)
        self._timers.append(timer)
        return timer

    def degrade_link_at(
        self, time: float, a: str, b: str, *, bandwidth: float | None = None,
        latency: float | None = None,
    ) -> Timer:
        """Change a link's characteristics at a point in virtual time."""
        description = f"link {a}<->{b} becomes bw={bandwidth} lat={latency}"
        return self._at(
            time,
            description,
            lambda: self.cluster.set_link(a, b, bandwidth=bandwidth, latency=latency),
        )

    def cut_link_at(self, time: float, a: str, b: str) -> Timer:
        return self._at(
            time,
            f"link {a}<->{b} goes down",
            lambda: self.cluster.set_link(a, b, up=False),
        )

    def restore_link_at(self, time: float, a: str, b: str) -> Timer:
        return self._at(
            time,
            f"link {a}<->{b} comes back",
            lambda: self.cluster.set_link(a, b, up=True),
        )

    def outage_at(self, time: float, a: str, b: str, duration: float) -> tuple[Timer, Timer]:
        """Cut the a<->b link at ``time``, restore it ``duration`` later.

        The shape every retry/abort scenario needs: a transient outage
        that a :class:`~repro.net.retry.RetryPolicy` can ride through —
        or, without one, that aborts the interaction at ``time`` and lets
        a later retry succeed.
        """
        return (
            self.cut_link_at(time, a, b),
            self.restore_link_at(time + duration, a, b),
        )

    def shutdown_core_at(self, time: float, name: str) -> Timer:
        """Graceful shutdown: the Core fires ``coreShutdown`` first."""
        return self._at(
            time, f"core {name} shuts down", lambda: self.cluster.shutdown_core(name)
        )

    def crash_core_at(self, time: float, name: str) -> Timer:
        """Hard crash: no shutdown event, the node simply stops answering."""
        return self._at(
            time,
            f"core {name} crashes",
            lambda: self.cluster.network.set_node_down(name),
        )

    def revive_core_at(self, time: float, name: str) -> Timer:
        return self._at(
            time,
            f"core {name} revives",
            lambda: self.cluster.network.set_node_down(name, down=False),
        )

    def partition_at(self, time: float, *groups: set[str]) -> Timer:
        return self._at(
            time,
            f"network partitions into {[sorted(g) for g in groups]}",
            lambda: self.cluster.partition(*groups),
        )

    def heal_at(self, time: float) -> Timer:
        return self._at(time, "partition heals", self.cluster.heal_partition)

    def cancel_all(self) -> None:
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
