"""Failure injection on the virtual timeline.

Schedules the environmental changes the paper's layout policies react
to: link degradation and recovery, link cuts, Core shutdown and crash,
revival, and network partitions — all as timers on the cluster's
scheduler, so a single ``cluster.advance(...)`` replays a whole failure
scenario deterministically.

Every injection is observable after the fact: it is appended to
:attr:`FailureInjector.log`, counted in the injector's metrics registry
(``injector.events{kind=...}``), and — when tracing is enabled — stamped
into the trace as an instant ``inject:<kind>`` span, so a Chrome trace
of a chaos run shows exactly when the environment turned hostile.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.metrics.registry import MetricsRegistry
from repro.sim.scheduler import Timer


@dataclass(slots=True)
class FailureInjector:
    """Deterministic scheduler of environmental changes.

    Every injection goes through the transport-level chaos hooks, so
    crash/revive, link cuts, latency, and partitions work on any
    backend that advertises the capability — the simulated network and
    real TCP alike.  A knob the backend does not model (e.g. bandwidth
    shaping on TCP) raises
    :class:`~repro.errors.TransportCapabilityError` when the injection
    fires; check ``cluster.transport.supports(...)`` when scheduling
    against an unknown backend.
    """

    cluster: Cluster
    #: Log of injected changes: (time, description), for experiment reports.
    log: list[tuple[float, str]] = field(default_factory=list)
    #: Injection counts by kind, merged into cluster-wide metric views.
    metrics: MetricsRegistry = field(
        default_factory=lambda: MetricsRegistry("injector")
    )
    _timers: list[Timer] = field(default_factory=list)

    def _at(self, time: float, kind: str, description: str, action) -> Timer:
        def fire() -> None:
            self.log.append((self.cluster.now, description))
            self.metrics.counter("injector.events", kind=kind).inc()
            self._annotate(kind, description)
            action()

        timer = self.cluster.scheduler.call_at(time, fire)
        self._timers.append(timer)
        return timer

    def _annotate(self, kind: str, description: str) -> None:
        """Stamp the injection into the trace as an instant root span."""
        for name in sorted(self.cluster.cores):
            tracer = self.cluster.cores[name].tracer
            if not tracer.enabled:
                continue
            span = tracer.start_span(
                f"inject:{kind}", category="failure", root=True,
                description=description,
            )
            tracer.finish(span)
            return

    def degrade_link_at(
        self, time: float, a: str, b: str, *, bandwidth: float | None = None,
        latency: float | None = None,
    ) -> Timer:
        """Change a link's characteristics at a point in virtual time."""
        description = f"link {a}<->{b} becomes bw={bandwidth} lat={latency}"
        return self._at(
            time,
            "degrade_link",
            description,
            lambda: self.cluster.set_link(a, b, bandwidth=bandwidth, latency=latency),
        )

    def cut_link_at(self, time: float, a: str, b: str) -> Timer:
        return self._at(
            time,
            "cut_link",
            f"link {a}<->{b} goes down",
            lambda: self.cluster.set_link(a, b, up=False),
        )

    def restore_link_at(self, time: float, a: str, b: str) -> Timer:
        return self._at(
            time,
            "restore_link",
            f"link {a}<->{b} comes back",
            lambda: self.cluster.set_link(a, b, up=True),
        )

    def outage_at(self, time: float, a: str, b: str, duration: float) -> tuple[Timer, Timer]:
        """Cut the a<->b link at ``time``, restore it ``duration`` later.

        The shape every retry/abort scenario needs: a transient outage
        that a :class:`~repro.net.retry.RetryPolicy` can ride through —
        or, without one, that aborts the interaction at ``time`` and lets
        a later retry succeed.
        """
        return (
            self.cut_link_at(time, a, b),
            self.restore_link_at(time + duration, a, b),
        )

    def shutdown_core_at(self, time: float, name: str) -> Timer:
        """Graceful shutdown: the Core fires ``coreShutdown`` first."""
        return self._at(
            time,
            "shutdown_core",
            f"core {name} shuts down",
            lambda: self.cluster.shutdown_core(name),
        )

    def crash_core_at(self, time: float, name: str) -> Timer:
        """Hard crash: no shutdown event, the node simply stops answering."""
        return self._at(
            time,
            "crash_core",
            f"core {name} crashes",
            lambda: self.cluster.transport.set_node_down(name),
        )

    def revive_core_at(self, time: float, name: str) -> Timer:
        return self._at(
            time,
            "revive_core",
            f"core {name} revives",
            lambda: self.cluster.transport.set_node_down(name, down=False),
        )

    def partition_at(self, time: float, *groups: set[str]) -> Timer:
        return self._at(
            time,
            "partition",
            f"network partitions into {[sorted(g) for g in groups]}",
            lambda: self.cluster.partition(*groups),
        )

    def heal_at(self, time: float) -> Timer:
        return self._at(time, "heal", "partition heals", self.cluster.heal_partition)

    def injected_count(self, kind: str | None = None) -> int:
        """Injections fired so far, optionally of one kind."""
        if kind is not None:
            return int(self.metrics.counter_value("injector.events", kind=kind))
        return sum(
            int(counter.value)
            for counter in self.metrics.counters_named("injector.events").values()
        )

    def cancel_all(self) -> None:
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
