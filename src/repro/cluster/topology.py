"""Topology profiles: shaping the cluster's link matrix.

The paper's setting is a wide-area deployment: many nodes, links of
"widely different and dynamically changing transfer rates".  These
helpers configure the simulated network into the standard shapes the
experiments use — uniform meshes, hub-and-spoke stars, and multi-site
WANs with fast LANs inside each site and slow links between sites.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.errors import ConfigurationError


def configure_uniform(
    cluster: Cluster, *, bandwidth: float, latency: float
) -> None:
    """Give every pair of Cores the same link characteristics."""
    names = cluster.core_names()
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            cluster.set_link(a, b, bandwidth=bandwidth, latency=latency)


def configure_star(
    cluster: Cluster,
    hub: str,
    *,
    hub_bandwidth: float = 10_000_000.0,
    hub_latency: float = 0.005,
    spoke_bandwidth: float = 500_000.0,
    spoke_latency: float = 0.05,
) -> None:
    """Hub-and-spoke: fast links to the hub, slow links between spokes."""
    names = cluster.core_names()
    if hub not in names:
        raise ConfigurationError(f"hub {hub!r} is not a Core of the cluster")
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            if hub in (a, b):
                cluster.set_link(a, b, bandwidth=hub_bandwidth, latency=hub_latency)
            else:
                cluster.set_link(a, b, bandwidth=spoke_bandwidth, latency=spoke_latency)


@dataclass(slots=True)
class WanProfile:
    """Resulting site map of :func:`configure_wan`."""

    sites: dict[str, list[str]]
    lan_bandwidth: float
    lan_latency: float
    wan_bandwidth: float
    wan_latency: float

    def site_of(self, core: str) -> str:
        for site, members in self.sites.items():
            if core in members:
                return site
        raise ConfigurationError(f"core {core!r} belongs to no site")


def configure_wan(
    cluster: Cluster,
    sites: dict[str, list[str]],
    *,
    lan_bandwidth: float = 100_000_000.0,
    lan_latency: float = 0.0005,
    wan_bandwidth: float = 250_000.0,
    wan_latency: float = 0.08,
) -> WanProfile:
    """Multi-site WAN: fast intra-site links, slow inter-site links.

    ``sites`` maps a site name to the Cores located there.  Every Core
    of the cluster must belong to exactly one site.
    """
    members: dict[str, str] = {}
    for site, cores in sites.items():
        for core in cores:
            if core in members:
                raise ConfigurationError(f"core {core!r} assigned to two sites")
            members[core] = site
    for name in cluster.core_names():
        if name not in members:
            raise ConfigurationError(f"core {name!r} assigned to no site")

    names = cluster.core_names()
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            if members[a] == members[b]:
                cluster.set_link(a, b, bandwidth=lan_bandwidth, latency=lan_latency)
            else:
                cluster.set_link(a, b, bandwidth=wan_bandwidth, latency=wan_latency)
    return WanProfile(
        sites={site: list(cores) for site, cores in sites.items()},
        lan_bandwidth=lan_bandwidth,
        lan_latency=lan_latency,
        wan_bandwidth=wan_bandwidth,
        wan_latency=wan_latency,
    )
