"""Process supervision: self-healing multi-process TCP deployments.

The multi-process launcher (:mod:`repro.cluster.launch`) historically
treated a dead child as fatal — ROADMAP item 1 left "restarting dead
children from the recovery layer" open.  The :class:`Supervisor` closes
that loop:

- **Watch** — a monitor thread fuses two liveness sources per child:
  ``waitpid`` (``Popen.poll``: the OS says the process exited, with an
  exit code or signal) and failure-detector-style probe verdicts over
  the driver's :class:`~repro.net.tcp.TcpTransport` (the network says
  the Core stopped answering).  A SIGKILLed child is *dead* (poll
  reports the signal) and gets restarted; a child that is alive but
  unreachable is *partitioned* — restarting it would fork the
  deployment, so the supervisor only records the verdict.

- **Restart** — a per-Core :class:`RestartPolicy` bounds the healing:
  at most ``max_restarts`` within ``window`` seconds, exponential
  backoff between consecutive respawns (via the existing
  :class:`~repro.net.retry.RetryPolicy` schedule), then escalation to
  permanent failure.  The child respawns on its preallocated port
  (listener sockets use ``SO_REUSEADDR``); when that port turns out
  unusable, a fresh port is allocated and every surviving Core's
  address book is updated through the ``add_peer`` admin operation.

- **Re-admit** — the respawned child restores its predecessor's durable
  checkpoints (``--recover`` against the shared
  :class:`~repro.recovery.FileCheckpointStore`) under the *original*
  identities before announcing READY; the supervisor then refreshes the
  driver's address book (invalidating stale pooled connections),
  fetches the reborn Core's tracker map (``hosted_trackers``), and
  repairs every survivor's trackers and location records exactly as
  simulated recovery does (``repair_trackers`` / ``locator_forget``).

- **Escalate** — a child that exhausts its restart budget is declared
  permanently failed; its last durable checkpoints are restored on a
  surviving Core under *fresh* identities (the PR 4 degraded path:
  stale references dangle with typed errors rather than split-brain).

Observability: ``supervisor.restarts`` counter, ``supervisor.mttr``
histogram (detection-to-readmission, real seconds), and
``supervisor:restart`` spans on the driver Core; per-child state via
``CoreAdmin.supervisor_state()`` and the shell's ``supervisor`` command.
"""

from __future__ import annotations

import logging
import signal as signal_module
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, CoreError, FarGoError, TransportError
from repro.net.retry import RetryPolicy
from repro.recovery.detector import DetectorConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.launch import CoreProcesses

logger = logging.getLogger(__name__)

#: Default backoff schedule between consecutive respawns of one child.
DEFAULT_BACKOFF = RetryPolicy(max_attempts=5, base_delay=0.1, multiplier=2.0, max_delay=2.0)


@dataclass(frozen=True)
class RestartPolicy:
    """How stubbornly one child Core is kept alive.

    ``max_restarts`` bounds restarts within the sliding ``window``
    (seconds); exceeding it escalates the child to permanent failure.
    ``backoff`` is the delay schedule between *consecutive* respawns —
    ``backoff.backoff(n)`` before the n-th restart of an unhealthy
    streak; the streak resets once a child stays up ``healthy_after``
    seconds.  ``recover=False`` respawns children stateless (no durable
    checkpoint restore) even when a checkpoint directory is shared.
    """

    max_restarts: int = 3
    window: float = 60.0
    backoff: RetryPolicy = field(default=DEFAULT_BACKOFF)
    healthy_after: float = 5.0
    recover: bool = True

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be non-negative, got {self.max_restarts}"
            )
        if self.window <= 0.0:
            raise ConfigurationError(f"window must be positive, got {self.window}")


@dataclass(slots=True)
class _ChildState:
    """Mutable supervision record for one child Core."""

    status: str = "running"  # running | restarting | partitioned | failed
    restarts: int = 0
    #: Monotonic instants of restarts inside the policy window.
    recent: list = field(default_factory=list)
    #: Consecutive-restart streak (drives the backoff schedule).
    streak: int = 0
    last_exit: str | None = None
    last_verdict: str = "alive"
    last_ok: float = 0.0
    last_probe: float = 0.0
    last_restart_at: float | None = None
    last_mttr: float | None = None
    next_backoff: float = 0.0
    #: Fresh-identity ids created by escalation, if any.
    escalated_to: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "restarts": self.restarts,
            "recent_restarts": len(self.recent),
            "streak": self.streak,
            "last_exit": self.last_exit,
            "last_verdict": self.last_verdict,
            "last_mttr": self.last_mttr,
            "next_backoff": self.next_backoff,
            "escalated_to": list(self.escalated_to),
        }


def describe_exit(returncode: int) -> str:
    """Human-readable exit cause from a ``Popen.returncode``."""
    if returncode < 0:
        try:
            return f"signal {signal_module.Signals(-returncode).name}"
        except ValueError:
            return f"signal {-returncode}"
    return f"exit {returncode}"


class Supervisor:
    """Keeps a :class:`~repro.cluster.launch.CoreProcesses` fleet alive.

    Usage::

        with CoreProcesses(["A", "B"], checkpoint_dir=shared) as procs:
            supervisor = Supervisor(procs)
            supervisor.start()
            ...                       # SIGKILL a child; it comes back
            supervisor.stop()

    One policy applies to every child unless ``policies`` overrides a
    specific name.  The supervisor attaches itself to the driver Core,
    so ``admin(driver).supervisor_state()`` works from anywhere in the
    deployment.
    """

    def __init__(
        self,
        procs: "CoreProcesses",
        *,
        policy: RestartPolicy | None = None,
        policies: dict[str, RestartPolicy] | None = None,
        detector: DetectorConfig | None = None,
        poll_interval: float = 0.05,
    ) -> None:
        if procs.driver is None or procs.transport is None:
            raise ConfigurationError("CoreProcesses must be started before supervising")
        self.procs = procs
        self.driver = procs.driver
        self.policy = policy if policy is not None else RestartPolicy()
        self.policies = dict(policies or {})
        self.detector = detector if detector is not None else DetectorConfig()
        self.poll_interval = poll_interval
        self.children: dict[str, _ChildState] = {
            name: _ChildState(last_ok=time.monotonic()) for name in procs.names
        }
        #: (monotonic, message) decision log, mirroring RecoveryManager.log.
        self.log: list[tuple[float, str]] = []
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self.driver.supervisor = self

    def policy_for(self, name: str) -> RestartPolicy:
        return self.policies.get(name, self.policy)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "Supervisor":
        if self._thread is not None:
            raise ConfigurationError("Supervisor is already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._monitor, name="repro-supervisor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "Supervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def state(self) -> dict:
        """Per-child supervision state (admin/shell surface)."""
        with self._lock:
            return {
                "running": self._thread is not None and self._thread.is_alive(),
                "children": {
                    name: child.to_dict() for name, child in self.children.items()
                },
                "policy": {
                    "max_restarts": self.policy.max_restarts,
                    "window": self.policy.window,
                    "healthy_after": self.policy.healthy_after,
                    "recover": self.policy.recover,
                },
            }

    # -- monitor loop ------------------------------------------------------

    def _monitor(self) -> None:
        while not self._stop.is_set():
            for name in list(self.procs.names):
                try:
                    self._check_child(name)
                except FarGoError:
                    logger.warning("supervision pass for %s failed", name, exc_info=True)
            self._stop.wait(self.poll_interval)

    def check_now(self) -> None:
        """One synchronous supervision pass (tests, shell)."""
        for name in list(self.procs.names):
            self._check_child(name)

    def _check_child(self, name: str) -> None:
        child = self.children[name]
        if child.status == "failed":
            return
        process = self.procs.processes.get(name)
        returncode = process.poll() if process is not None else None
        now = time.monotonic()
        if returncode is None and process is not None:
            # The OS says alive; fuse with the network's opinion.  An
            # unreachable-but-running child is a partition or a hang —
            # restarting it would fork the deployment, so only the
            # verdict is recorded (mirrors FailureDetector's
            # alive/suspect/failed ladder, driven by probes).
            if now - child.last_probe < self.detector.interval:
                return  # heartbeat cadence, not poll cadence
            child.last_probe = now
            silent = now - child.last_ok
            if self.procs.transport.probe(name, timeout=min(1.0, self.detector.interval)):
                child.last_ok = now
                if child.status in ("partitioned", "restarting"):
                    child.status = "running"
                child.last_verdict = "alive"
                if (
                    child.streak
                    and child.last_restart_at is not None
                    and now - child.last_restart_at >= self.policy_for(name).healthy_after
                ):
                    child.streak = 0  # stayed up: the unhealthy streak is over
            elif silent >= self.detector.fail_after:
                child.last_verdict = "partitioned"
                child.status = "partitioned"
            elif silent >= self.detector.suspect_after:
                child.last_verdict = "suspect"
            return
        # The process is gone: waitpid gives the ground truth the
        # network-level detector cannot — exit code or fatal signal.
        cause = describe_exit(returncode) if returncode is not None else "never started"
        child.last_exit = cause
        child.last_verdict = "dead"
        self._restart(name, child, cause, detected_at=now)

    # -- restart path ------------------------------------------------------

    def _restart(self, name: str, child: _ChildState, cause: str, detected_at: float) -> None:
        policy = self.policy_for(name)
        child.recent = [t for t in child.recent if detected_at - t <= policy.window]
        if len(child.recent) >= policy.max_restarts:
            self._escalate(name, child, cause)
            return
        child.status = "restarting"
        child.streak += 1
        delay = policy.backoff.backoff(child.streak) if child.streak > 1 else 0.0
        child.next_backoff = policy.backoff.backoff(child.streak + 1)
        self._log(f"child {name} died ({cause}); restart #{child.streak} in {delay:.2f}s")
        if delay > 0.0 and self._stop.wait(delay):
            return
        recover = policy.recover and self.procs.checkpoint_dir is not None
        with self.driver.tracer.span(
            "supervisor:restart", category="supervision",
            child=name, cause=cause, attempt=child.streak, recover=recover,
        ):
            try:
                self._respawn(name, recover=recover)
            except (CoreError, TransportError, OSError) as exc:
                self._log(f"respawn of {name} failed: {exc}")
                # The next monitor pass sees the corpse and retries
                # (counting against the same window/backoff streak).
                return
            self._readmit(name)
        mttr = time.monotonic() - detected_at
        child.restarts += 1
        child.recent.append(detected_at)
        child.last_restart_at = time.monotonic()
        child.last_mttr = mttr
        child.status = "running"
        child.last_ok = time.monotonic()
        child.last_verdict = "alive"
        self.driver.metrics.counter("supervisor.restarts").inc()
        self.driver.metrics.histogram("supervisor.mttr").observe(mttr)
        self._log(f"child {name} restored in {mttr:.2f}s (restart #{child.restarts})")

    def _respawn(self, name: str, *, recover: bool) -> None:
        """Spawn the successor on the preallocated port, or a fresh one."""
        self.procs.spawn_child(name, recover=recover)
        try:
            self.procs.await_child(name)
            return
        except CoreError:
            process = self.procs.processes.get(name)
            if process is not None and process.poll() is None:
                process.kill()
                process.wait(timeout=5.0)
        # The preallocated port would not come back (e.g. still held by
        # a lingering socket) — fall back to a fresh port and tell the
        # whole deployment about the new address.
        from repro.cluster.launch import free_port

        old = self.procs.addresses[name]
        fresh = (old[0], free_port(old[0]))
        self.procs.addresses[name] = fresh
        self._log(f"child {name} could not rebind {old[1]}; moving to port {fresh[1]}")
        self.procs.spawn_child(name, recover=recover)
        self.procs.await_child(name)

    def _readmit(self, name: str) -> None:
        """Reconnect and repair the deployment around the reborn Core."""
        address = self.procs.addresses[name]
        # Refresh the driver's address book: even on the same port, the
        # pooled connections point at the dead predecessor.
        self.procs.transport.add_peer(name, address)
        # The reborn Core restored its complets under fresh tracker
        # serials; survivors' trackers still carry the predecessor's.
        try:
            relocated = self.driver.admin(name, "hosted_trackers")
        except (CoreError, TransportError):
            relocated = {}
        for survivor in self._survivors(name):
            try:
                self.driver.admin(survivor, "add_peer", peer=name, address=address)
                self.driver.admin(survivor, "locator_forget", core=name)
                self.driver.admin(
                    survivor, "repair_trackers", failed=name, relocated=relocated
                )
            except (CoreError, TransportError) as exc:
                self._log(f"re-admission repair at {survivor} failed: {exc}")
        # The driver itself is a survivor too.
        self.driver.locator.forget_core(name)
        self.driver.references.repair_dead_core(name, relocated)

    def _survivors(self, failed: str) -> list[str]:
        alive = []
        for name in self.procs.names:
            if name == failed:
                continue
            process = self.procs.processes.get(name)
            if process is not None and process.poll() is None:
                alive.append(name)
        return alive

    # -- escalation --------------------------------------------------------

    def _escalate(self, name: str, child: _ChildState, cause: str) -> None:
        """Budget exhausted: permanent failure + fresh-identity failover.

        The child's newest durable checkpoints are restored on a
        surviving Core under *fresh* identities — the degraded path of
        simulated recovery: old references dangle with typed errors
        instead of resurrecting an identity the deployment has given up
        supervising.
        """
        child.status = "failed"
        policy = self.policy_for(name)
        self._log(
            f"child {name} exceeded restart budget "
            f"({policy.max_restarts}/{policy.window:.0f}s, last cause {cause}); "
            f"escalating to permanent failure"
        )
        self.driver.metrics.counter("supervisor.escalations").inc()
        records = self._durable_records(name)
        survivors = self._survivors(name)
        destination = survivors[0] if survivors else self.driver.name
        with self.driver.tracer.span(
            "supervisor:escalate", category="supervision",
            child=name, cause=cause, records=len(records), destination=destination,
        ):
            for record in records:
                try:
                    new_id = self.driver.admin(
                        destination, "restore_complet",
                        data=record.data, keep_identity=False,
                    )
                    child.escalated_to.append(str(new_id))
                except (CoreError, TransportError, FarGoError) as exc:
                    self._log(
                        f"fresh-identity restore of {record.complet_id} failed: {exc}"
                    )
            for survivor in survivors:
                try:
                    self.driver.admin(survivor, "locator_forget", core=name)
                    self.driver.admin(
                        survivor, "repair_trackers", failed=name, relocated={}
                    )
                except (CoreError, TransportError):
                    pass
            self.driver.locator.forget_core(name)
            self.driver.references.repair_dead_core(name, {})
        if child.escalated_to:
            self._log(
                f"escalation restored {len(child.escalated_to)} complets "
                f"on {destination} under fresh identities"
            )

    def _durable_records(self, name: str) -> list:
        if self.procs.checkpoint_dir is None:
            return []
        from repro.recovery.store import FileCheckpointStore

        return FileCheckpointStore(self.procs.checkpoint_dir).hosted_at(name)

    # -- bookkeeping -------------------------------------------------------

    def _log(self, message: str) -> None:
        with self._lock:
            self.log.append((time.monotonic(), message))
        logger.info("%s", message)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}:{child.status}" for name, child in sorted(self.children.items())
        )
        return f"<Supervisor {parts}>"
