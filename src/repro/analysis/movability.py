"""Movability checker: can this complet survive a move? (FG301–FG303)

A complet moves by pickling its closure with ``persistent_id`` hooks
that divert stubs into reference tokens.  Three classes of fields defeat
that mechanism:

- **FG301** — fields holding OS resources (sockets, locks, threads,
  open files, database connections): pickle refuses them outright.
- **FG302** — direct references to another complet's *anchor* instead of
  a stub: the closure scanner would tear two complets apart or raise
  :class:`~repro.errors.CompletBoundaryError` mid-move.
- **FG303** — lambdas and function-local callables captured into fields:
  they have no importable qualified name, so ``persistent_id``
  marshaling cannot reconstruct them at the destination.

Two modes share the rule codes: *source mode* walks a Python file with
:mod:`ast` (used by the CLI and CI, no imports executed), and *live
mode* inspects installed anchor instances (used by
:meth:`Cluster.analyze`).
"""

from __future__ import annotations

import ast
import inspect
import io
import socket
import threading

from repro.complet.anchor import Anchor
from repro.analysis.diagnostics import Diagnostic, diag

#: Qualified callables whose result can never cross a Core boundary.
UNPICKLABLE_FACTORIES = frozenset(
    {
        "open",
        "builtins.open",
        "io.open",
        "io.BytesIO",
        "io.StringIO",
        "socket.socket",
        "socket.create_connection",
        "socket.create_server",
        "socket.socketpair",
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Event",
        "threading.Barrier",
        "threading.Thread",
        "threading.Timer",
        "_thread.allocate_lock",
        "queue.Queue",
        "queue.LifoQueue",
        "queue.PriorityQueue",
        "queue.SimpleQueue",
        "multiprocessing.Lock",
        "multiprocessing.Queue",
        "multiprocessing.Pool",
        "subprocess.Popen",
        "sqlite3.connect",
        "tempfile.TemporaryFile",
        "tempfile.NamedTemporaryFile",
        "asyncio.Lock",
        "asyncio.Event",
        "asyncio.Queue",
    }
)

# -- source mode -------------------------------------------------------------------


def check_complet_source(source: str, *, file: str | None = None) -> list[Diagnostic]:
    """Movability diagnostics for every anchor class defined in ``source``."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            diag(
                "FG100",
                f"python source failed to parse: {exc.msg}",
                file=file,
                line=exc.lineno or 0,
                column=(exc.offset or 1) - 1,
            )
        ]
    imports = _import_table(tree)
    anchors = _anchor_classes(tree, imports)
    diagnostics: list[Diagnostic] = []
    for cls in anchors.values():
        diagnostics.extend(_check_anchor_classdef(cls, imports, anchors, file))
    return diagnostics


def _import_table(tree: ast.Module) -> dict[str, str]:
    """Local name -> fully qualified name, from the module's imports."""
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def _qualified(node: ast.expr, imports: dict[str, str]) -> str | None:
    """Dotted name of a call target, import aliases resolved."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = imports.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


def _anchor_classes(
    tree: ast.Module, imports: dict[str, str]
) -> dict[str, ast.ClassDef]:
    """Class definitions that (transitively) subclass ``Anchor``."""
    classes = {n.name: n for n in tree.body if isinstance(n, ast.ClassDef)}
    anchors: dict[str, ast.ClassDef] = {}

    def is_anchor(cls: ast.ClassDef, trail: frozenset[str]) -> bool:
        for base in cls.bases:
            name = _qualified(base, imports)
            if name is None:
                continue
            if name == "Anchor" or name.endswith(".Anchor"):
                return True
            local = name.split(".")[-1]
            if local in classes and local not in trail \
                    and is_anchor(classes[local], trail | {local}):
                return True
        return False

    for name, cls in classes.items():
        if is_anchor(cls, frozenset({name})):
            anchors[name] = cls
    return anchors


def _check_anchor_classdef(
    cls: ast.ClassDef,
    imports: dict[str, str],
    anchors: dict[str, ast.ClassDef],
    file: str | None,
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        local_defs = {
            n.name for n in method.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for node in ast.walk(method):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not any(_is_self_attribute(t) for t in targets):
                continue
            field = next(t.attr for t in targets if _is_self_attribute(t))
            diagnostics.extend(
                _check_field_value(
                    cls.name, method.name, field, value,
                    imports, anchors, local_defs, file,
                )
            )
    return diagnostics


def _is_self_attribute(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _check_field_value(
    cls_name: str,
    method: str,
    field: str,
    value: ast.expr,
    imports: dict[str, str],
    anchors: dict[str, ast.ClassDef],
    local_defs: set[str],
    file: str | None,
) -> list[Diagnostic]:
    where = f"{cls_name}.{method}" if method != "__init__" else cls_name
    out: list[Diagnostic] = []
    if isinstance(value, ast.Call):
        qual = _qualified(value.func, imports)
        if qual is not None:
            if qual in UNPICKLABLE_FACTORIES:
                out.append(
                    diag(
                        "FG301",
                        f"{where} stores self.{field} = {qual}(...); such "
                        f"objects cannot be pickled, so the complet can "
                        f"never move",
                        file=file, line=value.lineno, column=value.col_offset,
                    )
                )
            else:
                local = qual.split(".")[-1]
                if local in anchors or (
                    local.endswith("_") and local[:-1] and local[0].isupper()
                    and qual in imports.values()
                ):
                    out.append(
                        diag(
                            "FG302",
                            f"{where} stores self.{field} = {local}(...): a raw "
                            f"anchor, not a stub; instantiate through the "
                            f"compiled stub class ({local.rstrip('_')}) so the "
                            f"reference survives relocation",
                            file=file, line=value.lineno, column=value.col_offset,
                        )
                    )
    elif isinstance(value, ast.Lambda):
        out.append(
            diag(
                "FG303",
                f"{where} captures a lambda into self.{field}; lambdas have no "
                f"importable name and cannot survive persistent_id marshaling",
                file=file, line=value.lineno, column=value.col_offset,
            )
        )
    elif isinstance(value, ast.Name) and value.id in local_defs:
        out.append(
            diag(
                "FG303",
                f"{where} captures the local function {value.id!r} into "
                f"self.{field}; function-local callables cannot survive "
                f"persistent_id marshaling",
                file=file, line=value.lineno, column=value.col_offset,
            )
        )
    return out


# -- live mode ---------------------------------------------------------------------

_UNPICKLABLE_TYPES: tuple[type, ...] = (
    socket.socket,
    threading.Thread,
    io.IOBase,
    type(threading.Lock()),
    type(threading.RLock()),
)


def check_anchor_live(anchor: Anchor, *, hosted_at: str | None = None) -> list[Diagnostic]:
    """Movability diagnostics for one *installed* anchor instance.

    Shallow by design: the deep (transitive) equivalent is the closure
    scan the relocation checker already runs; this pass names the exact
    field so the report is actionable.
    """
    at = f" (at {hosted_at})" if hosted_at else ""
    who = f"complet {anchor._complet_id}{at}" if anchor._complet_id else repr(anchor)
    diagnostics: list[Diagnostic] = []
    for field, value in sorted(vars(anchor).items(), key=lambda kv: kv[0]):
        if field.startswith("_"):
            continue
        if isinstance(value, _UNPICKLABLE_TYPES):
            diagnostics.append(
                diag(
                    "FG301",
                    f"{who}: field {field!r} holds a {type(value).__name__}, "
                    f"which cannot be pickled for movement",
                )
            )
        elif isinstance(value, Anchor):
            diagnostics.append(
                diag(
                    "FG302",
                    f"{who}: field {field!r} holds the raw anchor of another "
                    f"complet ({type(value).__name__}); moves would violate "
                    f"the complet boundary",
                )
            )
        elif inspect.isfunction(value) and (
            value.__name__ == "<lambda>" or "<locals>" in value.__qualname__
        ):
            diagnostics.append(
                diag(
                    "FG303",
                    f"{who}: field {field!r} holds the unmarshalable callable "
                    f"{value.__qualname__!r}",
                )
            )
    return diagnostics
