"""LayoutSanitizer: dynamic race detection for layout operations.

The static interaction checker (FG401–FG404) over-approximates; this is
its runtime cross-check, in the spirit of ThreadSanitizer.  Every move,
restore, and retype the cluster performs is stamped with a vector clock;
two operations on the same subject that are **concurrent** (neither
happens-before the other) and **conflicting** (they would leave the
layout in an order-dependent state) are recorded as an
:class:`ObservedRace`, counted on the ``sanitizer.races`` metric of the
Core that completed the race, and — when tracing is on — emitted as a
``sanitizer:race`` span.

Clock structure:

- every Core has a **persistent context** (its name keys the clock);
- every layout-rule firing gets an **ephemeral context** forked from the
  join of the event-origin Core's clock and the enclosing context, so
  operations issued by one firing are ordered among themselves but
  concurrent with other firings;
- a move's stamp travels with it: the sender stashes it per
  ``(subject, destination)`` before phase two, the receiving Core joins
  it into its persistent clock *before* ``completArrived`` is published
  (anything the arrival triggers is ordered after the move), and the
  sender joins it at commit (anything ``moveCompleted`` triggers
  likewise).  An aborted move pops the stash.

The sanitizer is one shared in-process object — it supports the
simulated and in-process TCP backends; the multi-process launcher runs
without it.  Enable with ``Cluster(sanitize=True)``.
"""

from __future__ import annotations

import itertools
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.diagnostics import Diagnostic, diag

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.core import Core

__all__ = ["LayoutSanitizer", "ObservedRace"]

#: Retained operations per subject; races against older operations than
#: this are missed, which bounds memory on long chaos runs.
_HISTORY = 16


def _happens_before(a: dict[str, int], b: dict[str, int]) -> bool:
    return all(b.get(key, 0) >= ticks for key, ticks in a.items())


def _concurrent(a: dict[str, int], b: dict[str, int]) -> bool:
    return not _happens_before(a, b) and not _happens_before(b, a)


def _conflicting(a: "_Op", b: "_Op") -> bool:
    kinds = (a.kind, b.kind)
    if "move" in kinds and "restore" in kinds:
        # A restore re-materialises the complet wherever the checkpoint
        # policy says; any concurrent move fights it regardless of
        # destinations.
        return True
    if a.kind != b.kind:
        return False
    # Same kind: order only matters when the destinations/types differ.
    return a.detail != b.detail


@dataclass(frozen=True, slots=True)
class _Op:
    kind: str                 # "move" | "restore" | "retype"
    subject: str
    detail: str               # destination Core or new reference type
    stamp: dict[str, int]
    core: str                 # Core that issued the operation
    label: str                # issuing context (rule label or Core name)
    time: float


@dataclass(frozen=True, slots=True)
class ObservedRace:
    """Two concurrent conflicting layout operations on one subject."""

    subject: str
    first_kind: str
    first_detail: str
    first_label: str
    second_kind: str
    second_detail: str
    second_label: str
    #: Core whose operation completed the race.
    core: str
    time: float

    def describe(self) -> str:
        return (
            f"layout race on {self.subject!r}: {self.first_kind} to "
            f"{self.first_detail!r} (by {self.first_label}) is concurrent "
            f"with {self.second_kind} to {self.second_detail!r} "
            f"(by {self.second_label})"
        )

    def to_diagnostic(self) -> Diagnostic:
        return diag("FG410", self.describe(), file=f"<core:{self.core}>")


class _Context:
    __slots__ = ("id", "label", "clock")

    def __init__(self, context_id: str, label: str, clock: dict[str, int]):
        self.id = context_id
        self.label = label
        self.clock = clock


class LayoutSanitizer:
    """Shared per-cluster happens-before tracker for layout operations."""

    def __init__(self, *, history: int = _HISTORY) -> None:
        #: Persistent per-Core clocks, keyed by Core name.
        self._clocks: dict[str, dict[str, int]] = {}
        #: Active ephemeral contexts (the simulation is single-threaded,
        #: and nested firings nest their contexts).
        self._stack: list[_Context] = []
        self._ops: dict[str, deque[_Op]] = {}
        #: In-flight move stamps, keyed by (subject, destination).
        self._pending: dict[tuple[str, str], list[dict[str, int]]] = {}
        self._history = history
        self._ids = itertools.count(1)
        self.races: list[ObservedRace] = []

    # -- contexts --------------------------------------------------------------------

    def _persistent(self, core_name: str) -> dict[str, int]:
        return self._clocks.setdefault(core_name, {})

    @contextmanager
    def rule_context(self, label: str, origin: str):
        """Scope for one rule firing, ordered after ``origin``'s clock.

        Operations recorded inside are mutually ordered but concurrent
        with other firings — which is exactly what makes two rules
        moving the same complet from one event frontier a race.
        """
        base = dict(self._persistent(origin))
        enclosing = self._stack[-1] if self._stack else None
        if enclosing is not None:
            for key, ticks in enclosing.clock.items():
                if base.get(key, 0) < ticks:
                    base[key] = ticks
        context = _Context(f"rule#{next(self._ids)}", label, base)
        self._stack.append(context)
        try:
            yield context
        finally:
            self._stack.pop()

    def _current(self, core: "Core") -> tuple[str, dict[str, int], str]:
        if self._stack:
            context = self._stack[-1]
            return context.id, context.clock, context.label
        return core.name, self._persistent(core.name), core.name

    # -- recording -------------------------------------------------------------------

    def record(
        self,
        kind: str,
        subject: str,
        *,
        core: "Core",
        detail: str,
        actor: str | None = None,
    ) -> dict[str, int]:
        """Stamp one layout operation; detect races against history.

        Returns the operation's stamp (the caller threads it through the
        move protocol via :meth:`pending_move`/:meth:`commit_move`).

        ``actor`` names a serialized logical actor (e.g. the cluster's
        recovery manager): the operation is ordered after every earlier
        operation of that actor and joined into both the actor's and the
        issuing Core's clocks — two *recoveries* never race each other,
        while a rule's move still races a concurrent recovery.
        """
        key, clock, label = self._current(core)
        if actor is not None:
            self._join(clock, self._persistent(actor))
        clock[key] = clock.get(key, 0) + 1
        stamp = dict(clock)
        if actor is not None:
            self._join(self._persistent(actor), stamp)
            self._join(self._persistent(core.name), stamp)
        op = _Op(
            kind=kind,
            subject=subject,
            detail=detail,
            stamp=stamp,
            core=core.name,
            label=label,
            time=core.scheduler.clock.now(),
        )
        history = self._ops.get(subject)
        if history:
            for prior in history:
                if _conflicting(prior, op) and _concurrent(prior.stamp, stamp):
                    self._report(prior, op, core)
        if history is None:
            history = self._ops[subject] = deque(maxlen=self._history)
        history.append(op)
        return stamp

    def _report(self, first: _Op, second: _Op, core: "Core") -> None:
        race = ObservedRace(
            subject=second.subject,
            first_kind=first.kind,
            first_detail=first.detail,
            first_label=first.label,
            second_kind=second.kind,
            second_detail=second.detail,
            second_label=second.label,
            core=core.name,
            time=second.time,
        )
        self.races.append(race)
        core.metrics.counter("sanitizer.races").inc()
        tracer = core.tracer
        if tracer.enabled:
            with tracer.span(
                "sanitizer:race",
                category="sanitizer",
                subject=race.subject,
                kinds=f"{first.kind}/{second.kind}",
                first=first.label,
                second=second.label,
            ):
                pass

    # -- move-protocol joins -----------------------------------------------------------

    def pending_move(
        self, subject: str, destination: str, stamp: dict[str, int]
    ) -> None:
        """Stash a move's stamp until it arrives (or aborts)."""
        self._pending.setdefault((subject, destination), []).append(stamp)

    def abort_move(self, subject: str, destination: str) -> None:
        stamps = self._pending.get((subject, destination))
        if stamps:
            stamps.pop()

    def arrive(self, subject: str, core: "Core") -> None:
        """Join an arriving move's stamp into the destination's clock.

        Called *before* ``completArrived`` is published, so every rule
        the arrival fires is ordered after the move that caused it.
        """
        stamps = self._pending.get((subject, core.name))
        if not stamps:
            return
        self._join(self._persistent(core.name), stamps.pop(0))

    def commit_move(
        self, subject: str, core: "Core", stamp: dict[str, int]
    ) -> None:
        """Join a committed move's stamp into the *sender's* clock."""
        self._join(self._persistent(core.name), stamp)

    @staticmethod
    def _join(clock: dict[str, int], stamp: dict[str, int]) -> None:
        for key, ticks in stamp.items():
            if clock.get(key, 0) < ticks:
                clock[key] = ticks

    # -- reporting -------------------------------------------------------------------

    def diagnostics(self) -> list[Diagnostic]:
        """Every observed race as an FG410 diagnostic."""
        return [race.to_diagnostic() for race in self.races]
