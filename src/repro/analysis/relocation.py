"""Relocation-semantics checker over a live topology (FG201–FG205).

Builds the cluster-wide reference graph — every hosted complet, its
closure weight (via the same pickle-based sizing the simulated network
charges, :mod:`repro.util.bytesize` semantics), and every outgoing
reference with its relocator — then checks the *consequences* of the
declared semantics before any move enacts them:

- **FG201** pull closures that amplify a move far beyond the complet the
  administrator asked to move;
- **FG202** ``duplicate``-typed references to complets with mutating
  methods (replicas silently diverge);
- **FG203** ``stamp`` references whose target type is hosted nowhere the
  source could move to (with ``fallback="error"`` any such move aborts);
- **FG204** one source holding pull *and* duplicate/stamp references to
  the same target — the move group cannot satisfy both.
- **FG205** a large *mutable* complet referenced with ``duplicate``
  semantics on a Core without effective store offloading: every move of
  the source re-marshals and re-ships the whole closure (mutation
  defeats both the clone cache and content-keyed dedup), which is
  exactly the traffic :mod:`repro.store` exists to avoid.

Closure scanning doubles as a deep movability pass: boundary violations
and unpicklable state surface here as FG302/FG301.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.complet.anchor import resolve_class_ref
from repro.complet.closure import compute_closure
from repro.complet.stub import Stub, stub_meta, stub_target_id, stub_tracker
from repro.errors import CompletBoundaryError, FarGoError, SerializationError
from repro.util.bytesize import human_bytes

from repro.analysis.diagnostics import Diagnostic, Severity, diag

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster

#: A pull reference moves the target along; these two ask the opposite.
_CONFLICTS_WITH_PULL = {"duplicate", "stamp"}


@dataclass(slots=True)
class _Edge:
    source: str
    target: str
    type_name: str
    stub: Stub


@dataclass(slots=True)
class _RefGraph:
    """The reference graph of a cluster at one instant."""

    #: complet id -> closure size in bytes.
    sizes: dict[str, int] = field(default_factory=dict)
    #: complet id -> hosting core name.
    hosts: dict[str, str] = field(default_factory=dict)
    #: complet id -> anchor class.
    classes: dict[str, type] = field(default_factory=dict)
    edges: list[_Edge] = field(default_factory=list)
    diagnostics: list[Diagnostic] = field(default_factory=list)


def _build_graph(cluster: "Cluster") -> _RefGraph:
    graph = _RefGraph()
    for core in cluster.running_cores():
        for anchor in core.repository.anchors():
            cid = str(anchor.complet_id)
            graph.hosts[cid] = core.name
            graph.classes[cid] = type(anchor)
            try:
                info = compute_closure(anchor)
            except CompletBoundaryError as exc:
                graph.diagnostics.append(
                    diag("FG302", f"complet {cid} (at {core.name}): {exc}")
                )
                continue
            except SerializationError as exc:
                graph.diagnostics.append(
                    diag("FG301", f"complet {cid} (at {core.name}): {exc}")
                )
                continue
            graph.sizes[cid] = info.size_bytes
            for stub in info.outgoing:
                graph.edges.append(
                    _Edge(
                        source=cid,
                        target=str(stub_target_id(stub)),
                        type_name=stub_meta(stub).type_name,
                        stub=stub,
                    )
                )
    return graph


def check_relocation(
    cluster: "Cluster", *, amplification_threshold: float = 3.0
) -> list[Diagnostic]:
    """All relocation-semantics diagnostics for the cluster's current state."""
    graph = _build_graph(cluster)
    diagnostics = list(graph.diagnostics)
    diagnostics.extend(_check_amplification(graph, amplification_threshold))
    diagnostics.extend(_check_duplicate_mutability(graph))
    diagnostics.extend(_check_stamp_resolution(cluster, graph))
    diagnostics.extend(_check_mixed_semantics(graph))
    diagnostics.extend(_check_store_offload(cluster, graph))
    return diagnostics


# -- FG201: pull-closure weight -----------------------------------------------------


def _check_amplification(graph: _RefGraph, threshold: float) -> list[Diagnostic]:
    pulls: dict[str, set[str]] = {}
    for edge in graph.edges:
        if edge.type_name == "pull":
            pulls.setdefault(edge.source, set()).add(edge.target)

    diagnostics = []
    for root in sorted(pulls):
        group = _pull_group(root, pulls)
        root_size = graph.sizes.get(root, 0)
        total = sum(graph.sizes.get(cid, 0) for cid in group)
        if root_size <= 0 or len(group) < 2:
            continue
        amplification = total / root_size
        if amplification > threshold:
            others = len(group) - 1
            diagnostics.append(
                diag(
                    "FG201",
                    f"moving complet {root} ({human_bytes(root_size)}) drags "
                    f"{others} pulled complet(s) along — "
                    f"{human_bytes(total)} total, ×{amplification:.1f} "
                    f"amplification (threshold ×{threshold:g})",
                )
            )
    return diagnostics


def _pull_group(root: str, pulls: dict[str, set[str]]) -> set[str]:
    """Transitive pull closure: everything a move of ``root`` drags along."""
    group = {root}
    frontier = [root]
    while frontier:
        node = frontier.pop()
        for target in pulls.get(node, ()):
            if target not in group:
                group.add(target)
                frontier.append(target)
    return group


# -- FG202: duplicate targets with mutating methods ---------------------------------


def _check_duplicate_mutability(graph: _RefGraph) -> list[Diagnostic]:
    diagnostics = []
    seen: set[tuple[str, str]] = set()
    for edge in graph.edges:
        if edge.type_name != "duplicate" or (edge.source, edge.target) in seen:
            continue
        seen.add((edge.source, edge.target))
        cls = graph.classes.get(edge.target)
        if cls is None:
            continue
        mutators = mutating_methods(cls)
        if mutators:
            listed = ", ".join(f"{m}()" for m in mutators[:4])
            diagnostics.append(
                diag(
                    "FG202",
                    f"complet {edge.source} holds a duplicate-typed reference "
                    f"to {edge.target}, whose interface mutates state "
                    f"({listed}); a private copy made on move will silently "
                    f"diverge from the original",
                )
            )
    return diagnostics


_MOVEMENT_CALLBACKS = {
    "pre_departure",
    "abort_departure",
    "pre_arrival",
    "post_arrival",
    "post_departure",
}


def mutating_methods(anchor_cls: type) -> list[str]:
    """Public interface methods that assign into ``self`` state.

    Inspected from source with :mod:`ast`; a method counts as mutating
    when any statement stores into an attribute (or subscript of an
    attribute) of ``self``.  ``__init__`` and the movement callbacks are
    construction/protocol, not interface, and are skipped.
    """
    try:
        source = textwrap.dedent(inspect.getsource(anchor_cls))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):  # no source (REPL, C ext)
        return []
    cls_node = next(
        (n for n in tree.body if isinstance(n, ast.ClassDef)), None
    )
    if cls_node is None:
        return []
    mutators = []
    for method in cls_node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if method.name.startswith("_") or method.name in _MOVEMENT_CALLBACKS:
            continue
        if any(_stores_into_self(node) for node in ast.walk(method)):
            mutators.append(method.name)
    return mutators


def _stores_into_self(node: ast.AST) -> bool:
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    for target in targets:
        base = target
        while isinstance(base, (ast.Subscript, ast.Attribute)):
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                return True
            base = base.value
    return False


# -- FG205: large mutable duplicates without store offloading -----------------------


def _check_store_offload(cluster: "Cluster", graph: _RefGraph) -> list[Diagnostic]:
    from repro.store.proxy import DEFAULT_OFFLOAD_THRESHOLD

    diagnostics = []
    seen: set[str] = set()
    for edge in graph.edges:
        if edge.type_name != "duplicate" or edge.target in seen:
            continue
        size = graph.sizes.get(edge.target, 0)
        if size < DEFAULT_OFFLOAD_THRESHOLD:
            continue
        cls = graph.classes.get(edge.target)
        host = graph.hosts.get(edge.target)
        if cls is None or host is None or not mutating_methods(cls):
            continue
        client = cluster.core(host).store_client
        if client is not None and size >= client.threshold:
            continue  # offloading will kick in; nothing to warn about
        seen.add(edge.target)
        remedy = (
            "enable it with Cluster(store=...)"
            if client is None
            else f"its threshold ({human_bytes(client.threshold)}) exceeds "
            f"the closure — lower store_threshold"
        )
        diagnostics.append(
            diag(
                "FG205",
                f"complet {edge.target} ({human_bytes(size)}, mutable) is "
                f"referenced with duplicate semantics but its host {host} "
                f"does not offload it to the object store; every move of a "
                f"holder re-ships the whole closure inline — {remedy}",
            )
        )
    return diagnostics


# -- FG203: stamp resolution --------------------------------------------------------


def _check_stamp_resolution(cluster: "Cluster", graph: _RefGraph) -> list[Diagnostic]:
    diagnostics = []
    for edge in graph.edges:
        if edge.type_name != "stamp":
            continue
        anchor_ref = stub_tracker(edge.stub).anchor_ref
        try:
            target_cls = resolve_class_ref(anchor_ref)
        except (FarGoError, ImportError, AttributeError):
            continue
        host = graph.hosts.get(edge.source)
        missing = [
            core.name
            for core in cluster.running_cores()
            if core.name != host and not core.repository.find_by_type(target_cls)
        ]
        if not missing:
            continue
        relocator = stub_meta(edge.stub).get_relocator()
        fallback = getattr(relocator, "fallback", "error")
        nowhere = len(missing) == len(cluster.running_cores()) - 1
        if nowhere and fallback == "error":
            severity, outcome = Severity.ERROR, "every move of it would abort"
        else:
            severity, outcome = Severity.WARNING, (
                "moves to those Cores would abort"
                if fallback == "error"
                else "moves there would degrade the reference to a link"
            )
        diagnostics.append(
            diag(
                "FG203",
                f"complet {edge.source} stamps {edge.target} by type "
                f"{target_cls.__name__}, but {', '.join(missing)} host(s) no "
                f"complet of that type — {outcome}",
                severity=severity,
            )
        )
    return diagnostics


# -- FG204: mixed semantics on one edge ---------------------------------------------


def _check_mixed_semantics(graph: _RefGraph) -> list[Diagnostic]:
    by_pair: dict[tuple[str, str], set[str]] = {}
    for edge in graph.edges:
        by_pair.setdefault((edge.source, edge.target), set()).add(edge.type_name)
    diagnostics = []
    for (source, target), types in sorted(by_pair.items()):
        if "pull" in types:
            conflicting = sorted(types & _CONFLICTS_WITH_PULL)
            if conflicting:
                diagnostics.append(
                    diag(
                        "FG204",
                        f"complet {source} references {target} as both 'pull' "
                        f"and {', '.join(repr(t) for t in conflicting)}; one "
                        f"move cannot both relocate the original and "
                        f"{'copy' if 'duplicate' in conflicting else 'rebind'} "
                        f"it",
                    )
                )
    return diagnostics
