"""Static analysis for FarGo deployments (the ``FGxxx`` rule family).

Four checker families share one diagnostic framework:

- :func:`check_script` — layout-script verification (FG1xx) over the
  :mod:`repro.script` AST, optionally resolved against a topology;
- :func:`check_relocation` — relocation-semantics verification (FG2xx)
  over a live cluster's reference graph;
- :func:`check_complet_source` / :func:`check_anchor_live` — complet
  movability verification (FG3xx) in source and live modes;
- :func:`check_interaction` / :func:`check_plan` — plan & interaction
  analysis (FG4xx) over the *whole installed script set* and over
  batched :class:`MovePlan` objects, with
  :class:`~repro.analysis.sanitizer.LayoutSanitizer` as the dynamic
  cross-check (``Cluster(sanitize=True)``, FG410).

Entry points: ``python -m repro.analysis`` (CLI), the ``lint`` command
in :mod:`repro.shell`, and :meth:`Cluster.analyze`.
"""

from repro.analysis.diagnostics import (
    RULES,
    Diagnostic,
    RuleInfo,
    Severity,
    apply_suppressions,
    diag,
    has_errors,
    render_json,
    render_sarif,
    render_text,
    sort_diagnostics,
    suppressed_lines,
    unused_suppressions,
    worst_severity,
)
from repro.analysis.interaction import check_interaction, script_set_effects
from repro.analysis.movability import (
    UNPICKLABLE_FACTORIES,
    check_anchor_live,
    check_complet_source,
)
from repro.analysis.plan import MovePlan, PlannedMove, check_plan
from repro.analysis.relocation import check_relocation, mutating_methods
from repro.analysis.sanitizer import LayoutSanitizer, ObservedRace
from repro.analysis.script_check import TopologyInfo, check_script

__all__ = [
    "RULES",
    "Diagnostic",
    "LayoutSanitizer",
    "MovePlan",
    "ObservedRace",
    "PlannedMove",
    "RuleInfo",
    "Severity",
    "TopologyInfo",
    "UNPICKLABLE_FACTORIES",
    "apply_suppressions",
    "check_anchor_live",
    "check_complet_source",
    "check_interaction",
    "check_plan",
    "check_relocation",
    "check_script",
    "diag",
    "has_errors",
    "mutating_methods",
    "render_json",
    "render_sarif",
    "render_text",
    "script_set_effects",
    "sort_diagnostics",
    "suppressed_lines",
    "unused_suppressions",
    "worst_severity",
]
