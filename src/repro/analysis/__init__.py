"""Static analysis for FarGo deployments (the ``FGxxx`` rule family).

Three checkers share one diagnostic framework:

- :func:`check_script` — layout-script verification (FG1xx) over the
  :mod:`repro.script` AST, optionally resolved against a topology;
- :func:`check_relocation` — relocation-semantics verification (FG2xx)
  over a live cluster's reference graph;
- :func:`check_complet_source` / :func:`check_anchor_live` — complet
  movability verification (FG3xx) in source and live modes.

Entry points: ``python -m repro.analysis`` (CLI), the ``lint`` command
in :mod:`repro.shell`, and :meth:`Cluster.analyze`.
"""

from repro.analysis.diagnostics import (
    RULES,
    Diagnostic,
    RuleInfo,
    Severity,
    apply_suppressions,
    diag,
    has_errors,
    render_json,
    render_text,
    sort_diagnostics,
    suppressed_lines,
    worst_severity,
)
from repro.analysis.movability import (
    UNPICKLABLE_FACTORIES,
    check_anchor_live,
    check_complet_source,
)
from repro.analysis.relocation import check_relocation, mutating_methods
from repro.analysis.script_check import TopologyInfo, check_script

__all__ = [
    "RULES",
    "Diagnostic",
    "RuleInfo",
    "Severity",
    "TopologyInfo",
    "UNPICKLABLE_FACTORIES",
    "apply_suppressions",
    "check_anchor_live",
    "check_complet_source",
    "check_relocation",
    "check_script",
    "diag",
    "has_errors",
    "mutating_methods",
    "render_json",
    "render_text",
    "sort_diagnostics",
    "suppressed_lines",
    "worst_severity",
]
