"""First-class move plans and their static checker (FG405–FG409).

A :class:`MovePlan` is an ordered batch of complet relocations — the
shape a layout synthesizer (ROADMAP item 3) or an operator emits before
committing any of it to the cluster.  :func:`check_plan` vets the batch
*as a unit* against the topology and the installed script set, which is
exactly what per-move runtime validation cannot do:

- **FG405** — a step that cannot be satisfied: unknown destination Core,
  unknown complet, or a declared source that contradicts where the plan
  (or the supplied locations) actually has the complet;
- **FG406** — two steps send one complet to different destinations;
- **FG407** — the plan preempts itself: a later step returns a complet
  to a location an earlier step deliberately vacated;
- **FG408** — a step that moves a complet to where it already is;
- **FG409** — a step fights an installed layout rule that would yank the
  complet somewhere else the moment it arrives.

Plan diagnostics anchor ``line`` at the **1-based step index** (a plan
has steps, not source lines) and ``file`` at the plan's name.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.script.effects import RuleEffects

from repro.analysis.diagnostics import Diagnostic, Severity, diag, sort_diagnostics
from repro.analysis.script_check import TopologyInfo

__all__ = ["MovePlan", "PlannedMove", "check_plan"]

#: Arrival events whose rules re-place complets right after a move lands.
_ARRIVAL_EVENTS = {"completArrived", "moveCompleted"}


@dataclass(frozen=True, slots=True)
class PlannedMove:
    """One step: move ``complet`` to ``destination`` (from ``source``)."""

    complet: str
    destination: str
    #: Where the planner believes the complet currently lives; optional,
    #: but when given it is cross-checked against the simulated layout.
    source: str | None = None

    def to_dict(self) -> dict:
        record: dict = {"complet": self.complet, "destination": self.destination}
        if self.source is not None:
            record["source"] = self.source
        return record


@dataclass(frozen=True)
class MovePlan:
    """An ordered batch of relocations, checkable before execution."""

    moves: tuple[PlannedMove, ...] = ()
    name: str = "<plan>"
    #: Known starting layout (complet -> Core); seeds the simulation.
    locations: dict[str, str] = field(default_factory=dict, compare=False)

    @classmethod
    def from_json(cls, text: str, *, name: str | None = None) -> "MovePlan":
        """Parse the JSON plan shape.

        Accepts either a bare list of steps or a mapping with ``moves``
        plus optional ``name`` and ``locations``.  Each step is
        ``{"complet": ..., "destination": ..., "source": ...}`` —
        ``to``/``from`` are accepted as aliases.
        """
        data = json.loads(text)
        if isinstance(data, list):
            data = {"moves": data}
        if not isinstance(data, dict):
            raise ValueError("plan must be a JSON object or list of steps")
        steps = []
        for raw in data.get("moves", ()):
            dest = raw.get("destination", raw.get("to"))
            if "complet" not in raw or dest is None:
                raise ValueError(
                    "each plan step needs 'complet' and 'destination'/'to'"
                )
            src = raw.get("source", raw.get("from"))
            steps.append(
                PlannedMove(
                    complet=str(raw["complet"]),
                    destination=str(dest),
                    source=str(src) if src is not None else None,
                )
            )
        return cls(
            moves=tuple(steps),
            name=name or str(data.get("name", "<plan>")),
            locations={
                str(k): str(v) for k, v in data.get("locations", {}).items()
            },
        )

    def to_json(self) -> str:
        document: dict = {
            "name": self.name,
            "moves": [m.to_dict() for m in self.moves],
        }
        if self.locations:
            document["locations"] = dict(self.locations)
        return json.dumps(document, indent=2)


def _fighting_rules(
    step: PlannedMove, effects: list[RuleEffects]
) -> list[tuple[RuleEffects, str]]:
    """Installed arrival rules that re-move ``step.complet`` on landing."""
    fights = []
    for e in effects:
        if e.event not in _ARRIVAL_EVENTS:
            continue
        if e.listen_cores is not None and step.destination not in e.listen_cores:
            continue
        for move in e.moves:
            if not move.target_literal or not move.destination_literal:
                continue
            if move.target == step.complet and move.destination != step.destination:
                fights.append((e, move.destination))
    return fights


def check_plan(
    plan: MovePlan,
    topology: TopologyInfo | None = None,
    *,
    effects: list[RuleEffects] | None = None,
    file: str | None = None,
) -> list[Diagnostic]:
    """All plan diagnostics, sorted by step.

    ``effects`` is the installed script set reduced by
    :func:`repro.script.effects.extract_effects` (see
    :func:`repro.analysis.interaction.script_set_effects`); without it
    FG409 is skipped.  ``line`` of every diagnostic is the 1-based step
    index.
    """
    topo = topology or TopologyInfo()
    label = file if file is not None else plan.name
    diagnostics: list[Diagnostic] = []

    # Simulated layout: where each complet is now, and every location it
    # has held so far (seeded from the declared starting layout).
    current: dict[str, str] = dict(plan.locations)
    held: dict[str, set[str]] = {k: {v} for k, v in plan.locations.items()}
    moved_at: dict[str, int] = {}

    for index, step in enumerate(plan.moves, start=1):
        def emit(code: str, message: str, *, severity: Severity | None = None):
            diagnostics.append(
                diag(code, message, file=label, line=index, severity=severity)
            )

        if topo.cores and step.destination not in topo.cores:
            emit(
                "FG405",
                f"step moves {step.complet!r} to unknown Core "
                f"{step.destination!r}",
            )
        if topo.complets and step.complet not in topo.complets:
            emit(
                "FG405",
                f"step moves unknown complet {step.complet!r}",
                severity=Severity.WARNING,
            )
        if step.source is not None and topo.cores and step.source not in topo.cores:
            emit(
                "FG405",
                f"step declares unknown source Core {step.source!r}",
            )

        where = current.get(step.complet)
        if step.source is not None and where is not None and step.source != where:
            emit(
                "FG405",
                f"step declares source {step.source!r} but {step.complet!r} "
                f"is at {where!r} at this point in the plan",
            )
        if step.source is not None and where is None:
            where = step.source
            held.setdefault(step.complet, set()).add(step.source)

        if where == step.destination:
            emit(
                "FG408",
                f"no-op step: {step.complet!r} is already at "
                f"{step.destination!r}",
            )
        elif step.complet in moved_at:
            prior = moved_at[step.complet]
            if step.destination in held.get(step.complet, set()):
                emit(
                    "FG407",
                    f"self-preempting plan: step returns {step.complet!r} to "
                    f"{step.destination!r}, which step {prior} deliberately "
                    f"vacated",
                )
            else:
                emit(
                    "FG406",
                    f"conflicting destinations: step {prior} already moves "
                    f"{step.complet!r} to {current.get(step.complet)!r}",
                )

        if effects:
            for rule, rule_dest in _fighting_rules(step, effects):
                emit(
                    "FG409",
                    f"step moves {step.complet!r} to {step.destination!r} but "
                    f"the rule in {rule.location} (on {rule.event}) moves it "
                    f"to {rule_dest!r} on arrival; the rule would immediately "
                    f"override the plan",
                )

        # Commit the step to the simulated layout.
        if where is not None:
            held.setdefault(step.complet, set()).add(where)
        held.setdefault(step.complet, set()).add(step.destination)
        current[step.complet] = step.destination
        moved_at[step.complet] = index

    return sort_diagnostics(diagnostics)
