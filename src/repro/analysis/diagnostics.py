"""The diagnostic framework shared by every analyzer family.

A :class:`Diagnostic` is one finding: a stable rule code (``FG101``), a
severity, a human message, and an optional source span.  The rule
catalog (:data:`RULES`) fixes the default severity and one-line title of
every code, so reporters, docs, and tests all speak the same vocabulary.

Per-line suppression uses the comment syntax::

    move $c to gpu-42   # fargo: ignore[FG104]
    ...                 # fargo: ignore          (suppress everything)

which works both in layout scripts and in Python complet sources (both
languages comment with ``#``).  Suppressions are matched against the
*file* line of the diagnostic, so embedded scripts inherit the syntax
unchanged.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from enum import Enum


class Severity(str, Enum):
    """How bad a finding is; orders ``error > warning > info``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]


@dataclass(frozen=True, slots=True)
class RuleInfo:
    """Catalog entry of one rule code."""

    code: str
    title: str
    severity: Severity
    family: str


def _rules(*entries: tuple[str, str, Severity, str]) -> dict[str, RuleInfo]:
    return {code: RuleInfo(code, title, sev, fam) for code, title, sev, fam in entries}


#: Stable catalog of every rule the analyzers can emit.
RULES: dict[str, RuleInfo] = _rules(
    # framework
    ("FG001", "unused suppression comment", Severity.INFO, "framework"),
    ("FG100", "source failed to parse", Severity.ERROR, "framework"),
    # script checker
    ("FG101", "undefined script variable", Severity.ERROR, "script"),
    ("FG102", "bad script argument reference", Severity.ERROR, "script"),
    ("FG103", "unknown event name", Severity.ERROR, "script"),
    ("FG104", "unknown Core name", Severity.ERROR, "script"),
    ("FG105", "unknown complet identifier", Severity.WARNING, "script"),
    ("FG106", "type-mismatched threshold or operand", Severity.ERROR, "script"),
    ("FG107", "duplicate or conflicting rules", Severity.WARNING, "script"),
    ("FG108", "statically detectable move cycle", Severity.WARNING, "script"),
    ("FG109", "missing required clause or argument", Severity.ERROR, "script"),
    ("FG110", "unknown reference type", Severity.ERROR, "script"),
    ("FG111", "unknown or misplaced call action", Severity.WARNING, "script"),
    # relocation-semantics checker
    ("FG201", "move amplification through pull closure", Severity.WARNING, "relocation"),
    ("FG202", "duplicate-typed reference to a mutable target", Severity.WARNING, "relocation"),
    ("FG203", "stamp target type missing at destination", Severity.WARNING, "relocation"),
    ("FG204", "conflicting relocation semantics on one edge", Severity.WARNING, "relocation"),
    ("FG205", "large mutable duplicate without store offloading", Severity.WARNING, "relocation"),
    # movability checker
    ("FG301", "unpicklable complet field", Severity.ERROR, "movability"),
    ("FG302", "direct cross-complet reference", Severity.ERROR, "movability"),
    ("FG303", "captured callable cannot be marshaled", Severity.ERROR, "movability"),
    # plan & interaction analysis
    ("FG401", "concurrent move/move race on one complet", Severity.WARNING, "interaction"),
    ("FG402", "cross-script move oscillation", Severity.WARNING, "interaction"),
    ("FG403", "move races a failover/restore action", Severity.WARNING, "interaction"),
    ("FG404", "retype race on one reference edge", Severity.WARNING, "interaction"),
    ("FG405", "unsatisfiable plan step", Severity.ERROR, "plan"),
    ("FG406", "conflicting destinations within one plan", Severity.ERROR, "plan"),
    ("FG407", "self-preempting plan", Severity.ERROR, "plan"),
    ("FG408", "no-op plan step", Severity.INFO, "plan"),
    ("FG409", "plan step fights an installed layout rule", Severity.WARNING, "plan"),
    ("FG410", "sanitizer-observed layout race", Severity.WARNING, "interaction"),
)


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One analyzer finding, renderable as text or JSON."""

    code: str
    message: str
    severity: Severity
    file: str | None = None
    line: int = 0
    column: int = 0

    @property
    def location(self) -> str:
        name = self.file if self.file is not None else "<input>"
        if self.line:
            return f"{name}:{self.line}:{self.column}"
        return name

    def render(self) -> str:
        return f"{self.location}: {self.severity.value} {self.code}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "column": self.column,
        }

    def at(self, *, file: str | None = None, line: int | None = None) -> "Diagnostic":
        """Copy of this diagnostic re-anchored (embedded-script mapping)."""
        return Diagnostic(
            code=self.code,
            message=self.message,
            severity=self.severity,
            file=file if file is not None else self.file,
            line=line if line is not None else self.line,
            column=self.column,
        )


def diag(
    code: str,
    message: str,
    *,
    file: str | None = None,
    line: int = 0,
    column: int = 0,
    severity: Severity | None = None,
) -> Diagnostic:
    """Build a diagnostic for ``code``, defaulting severity from the catalog."""
    rule = RULES[code]
    return Diagnostic(
        code=code,
        message=message,
        severity=severity if severity is not None else rule.severity,
        file=file,
        line=line,
        column=column,
    )


def sort_diagnostics(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    return sorted(
        diagnostics,
        key=lambda d: (d.file or "", d.line, d.column, d.code, d.message),
    )


def worst_severity(diagnostics: list[Diagnostic]) -> Severity | None:
    if not diagnostics:
        return None
    return max((d.severity for d in diagnostics), key=lambda s: s.rank)


def has_errors(diagnostics: list[Diagnostic]) -> bool:
    return any(d.severity is Severity.ERROR for d in diagnostics)


# -- suppression -----------------------------------------------------------------

_IGNORE_RE = re.compile(r"#\s*fargo:\s*ignore(?:\[([A-Za-z0-9_,\s]*)\])?")


def suppressed_lines(source: str) -> dict[int, frozenset[str] | None]:
    """Map of 1-based line number to the codes suppressed there.

    ``None`` means every code is suppressed on that line (a bare
    ``# fargo: ignore``).
    """
    table: dict[int, frozenset[str] | None] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _IGNORE_RE.search(text)
        if match is None:
            continue
        codes = match.group(1)
        if codes is None or not codes.strip():
            table[lineno] = None
        else:
            table[lineno] = frozenset(c.strip().upper() for c in codes.split(",") if c.strip())
    return table


def apply_suppressions(
    diagnostics: list[Diagnostic], source: str
) -> list[Diagnostic]:
    """Drop diagnostics whose line carries a matching suppression comment."""
    table = suppressed_lines(source)
    if not table:
        return list(diagnostics)
    kept = []
    for d in diagnostics:
        codes = table.get(d.line, ...)
        if codes is None or (codes is not ... and d.code in codes):
            continue
        kept.append(d)
    return kept


def unused_suppressions(
    diagnostics: list[Diagnostic], source: str, *, file: str | None = None
) -> list[Diagnostic]:
    """FG001 findings for suppression comments that suppress nothing.

    ``diagnostics`` must be the *pre-suppression* report for ``source``:
    a ``# fargo: ignore`` that matches no finding on its line — or whose
    bracketed code list names codes no finding on that line carries — is
    dead weight that hides future regressions (ruff's unused-``noqa``).
    """
    by_line: dict[int, set[str]] = {}
    for d in diagnostics:
        by_line.setdefault(d.line, set()).add(d.code)
    findings: list[Diagnostic] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _IGNORE_RE.search(text)
        if match is None:
            continue
        present = by_line.get(lineno, set())
        codes = match.group(1)
        if codes is None or not codes.strip():
            if present:
                continue
            message = "unused blanket suppression: no diagnostic on this line"
        else:
            wanted = [c.strip().upper() for c in codes.split(",") if c.strip()]
            dead = [c for c in wanted if c not in present]
            if not dead:
                continue
            message = (
                f"unused suppression of {', '.join(dead)}: "
                f"no such diagnostic on this line"
            )
        findings.append(
            diag("FG001", message, file=file, line=lineno, column=match.start() + 1)
        )
    return findings


# -- reporters --------------------------------------------------------------------


def render_text(diagnostics: list[Diagnostic]) -> str:
    """The canonical text report (one line per finding plus a summary)."""
    ordered = sort_diagnostics(diagnostics)
    lines = [d.render() for d in ordered]
    errors = sum(1 for d in ordered if d.severity is Severity.ERROR)
    warnings = sum(1 for d in ordered if d.severity is Severity.WARNING)
    if not ordered:
        lines.append("no diagnostics")
    else:
        lines.append(f"{errors} error(s), {warnings} warning(s)")
    return "\n".join(lines)


def render_json(diagnostics: list[Diagnostic]) -> str:
    return json.dumps(
        [d.to_dict() for d in sort_diagnostics(diagnostics)], indent=2
    )


#: SARIF severity levels for the three severities.
_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def render_sarif(diagnostics: list[Diagnostic]) -> str:
    """The report as SARIF 2.1.0 (the format CI annotation actions eat).

    Results carry the same fields as :meth:`Diagnostic.to_dict` — the
    JSON reporter and this one are two projections of one record shape.
    """
    ordered = sort_diagnostics(diagnostics)
    used = sorted({d.code for d in ordered})
    rules = [
        {
            "id": code,
            "name": RULES[code].title if code in RULES else code,
            "defaultConfiguration": {
                "level": _SARIF_LEVELS[RULES[code].severity.value]
                if code in RULES
                else "warning",
            },
        }
        for code in used
    ]
    rule_index = {code: i for i, code in enumerate(used)}
    results = []
    for d in ordered:
        record = d.to_dict()
        result = {
            "ruleId": record["code"],
            "ruleIndex": rule_index[record["code"]],
            "level": _SARIF_LEVELS[record["severity"]],
            "message": {"text": record["message"]},
        }
        if record["file"] is not None:
            region: dict = {}
            if record["line"]:
                region = {
                    "startLine": record["line"],
                    "startColumn": max(1, record["column"]),
                }
            location = {
                "physicalLocation": {
                    "artifactLocation": {"uri": record["file"]},
                }
            }
            if region:
                location["physicalLocation"]["region"] = region
            result["locations"] = [location]
        results.append(result)
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)
