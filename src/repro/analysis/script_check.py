"""Static checker for layout scripts (rules FG101–FG111).

Walks the :mod:`repro.script` AST without activating anything: variable
definedness, ``%n`` argument sanity, event-name resolution, clause
requirements per profiling service, threshold typing, reference types,
duplicate/conflicting rules, and statically detectable move cycles over
the rule graph.  With a :class:`TopologyInfo` (from a live cluster or a
spec file) it also resolves Core and complet identifiers.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.complet.relocators import BUILTIN_RELOCATORS
from repro.errors import ScriptSyntaxError
from repro.monitor.events import OPERATORS
from repro.script.ast import (
    Action,
    ArgRef,
    AssignAction,
    Assignment,
    CallAction,
    CompletsIn,
    CoreOf,
    Expr,
    Index,
    ListExpr,
    Literal,
    LogAction,
    MoveAction,
    RetypeAction,
    Rule,
    Script,
    Span,
    VarRef,
)
from repro.script.interpreter import CORE_EVENTS, SERVICE_ALIASES
from repro.script.parser import parse
from repro.script.stdlib import STDLIB_ACTIONS

from repro.analysis.diagnostics import Diagnostic, Severity, diag, sort_diagnostics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster

#: Profiling services that measure an edge between two complets.
_PAIR_SERVICES = {"invocationRate", "byteRate", "invocationCount"}
#: Services that measure a link to a peer Core (need a ``to`` clause).
_PEER_SERVICES = {"bandwidth", "latency", "linkBytes"}
#: Services that measure one complet (need a ``from`` clause).
_COMPLET_SERVICES = {"completSize", "servedRate"}

#: Events announcing that a complet landed somewhere; rules on these can
#: re-trigger each other, which is what the cycle detector walks.
_ARRIVAL_EVENTS = {"completArrived", "moveCompleted"}


@dataclass(frozen=True)
class TopologyInfo:
    """What identifier resolution knows about the deployment.

    Empty sets disable the corresponding check (a script is usually
    written before the exact topology exists).
    """

    cores: frozenset[str] = frozenset()
    complets: frozenset[str] = frozenset()

    @classmethod
    def from_cluster(cls, cluster: "Cluster") -> "TopologyInfo":
        complets: set[str] = set()
        for core in cluster.running_cores():
            for cid in core.repository.complet_ids():
                complets.add(str(cid))
                complets.add(cid.short())
        return cls(cores=frozenset(cluster.core_names()), complets=frozenset(complets))

    @classmethod
    def from_spec(cls, spec: dict) -> "TopologyInfo":
        """From a JSON-style mapping: ``{"cores": [...], "complets": [...]}``."""
        return cls(
            cores=frozenset(str(c) for c in spec.get("cores", ())),
            complets=frozenset(str(c) for c in spec.get("complets", ())),
        )


def _suggest(name: str, candidates) -> str:
    close = difflib.get_close_matches(name, list(candidates), n=1)
    return f" (did you mean {close[0]!r}?)" if close else ""


def check_script(
    source: str,
    *,
    topology: TopologyInfo | None = None,
    expected_args: int | None = None,
    file: str | None = None,
) -> list[Diagnostic]:
    """All script diagnostics for ``source``, sorted by location.

    A syntax error yields a single ``FG100`` diagnostic instead of
    raising, so callers can always treat the result as a report.
    """
    try:
        script = parse(source)
    except ScriptSyntaxError as exc:
        return [
            diag("FG100", str(exc), file=file, line=exc.line, column=exc.column)
        ]
    checker = _ScriptChecker(script, topology or TopologyInfo(), expected_args, file)
    return sort_diagnostics(checker.run())


class _ScriptChecker:
    def __init__(
        self,
        script: Script,
        topology: TopologyInfo,
        expected_args: int | None,
        file: str | None,
    ) -> None:
        self.script = script
        self.topology = topology
        self.expected_args = expected_args
        self.file = file
        self.diagnostics: list[Diagnostic] = []
        #: Representative span per referenced %n index.
        self.arg_refs: dict[int, Span | None] = {}

    # -- plumbing ----------------------------------------------------------------

    def _emit(
        self,
        code: str,
        message: str,
        span: Span | None,
        *,
        severity: Severity | None = None,
    ) -> None:
        line, column = (span.line, span.column) if span is not None else (0, 0)
        self.diagnostics.append(
            diag(code, message, file=self.file, line=line, column=column,
                 severity=severity)
        )

    # -- entry -------------------------------------------------------------------

    def run(self) -> list[Diagnostic]:
        defined: set[str] = set()
        for statement in self.script.statements:
            if isinstance(statement, Assignment):
                self._check_expr(statement.value, defined)
                defined.add(statement.name)
            else:
                self._check_rule(statement, defined)
        self._check_arg_gaps()
        self._check_duplicates()
        self._check_move_cycles()
        return self.diagnostics

    # -- expressions --------------------------------------------------------------

    def _check_expr(self, expr: Expr, env: set[str], role: str | None = None) -> None:
        """Walk ``expr``; ``role`` is 'core' or 'complet' for identifier use."""
        if isinstance(expr, Literal):
            self._check_literal(expr, role)
        elif isinstance(expr, VarRef):
            if expr.name not in env:
                self._emit(
                    "FG101",
                    f"undefined variable ${expr.name}"
                    + _suggest(expr.name, env),
                    expr.span,
                )
        elif isinstance(expr, ArgRef):
            if expr.index < 1:
                self._emit(
                    "FG102",
                    f"script arguments are 1-based; %{expr.index} can never bind",
                    expr.span,
                )
            elif self.expected_args is not None and expr.index > self.expected_args:
                self._emit(
                    "FG102",
                    f"%{expr.index} exceeds the {self.expected_args} declared "
                    f"script argument(s)",
                    expr.span,
                )
            else:
                self.arg_refs.setdefault(expr.index, expr.span)
        elif isinstance(expr, Index):
            self._check_expr(expr.base, env)
        elif isinstance(expr, ListExpr):
            for item in expr.items:
                self._check_expr(item, env, role)
        elif isinstance(expr, CompletsIn):
            self._check_expr(expr.core, env, "core")
        elif isinstance(expr, CoreOf):
            self._check_expr(expr.complet, env, "complet")

    def _check_literal(self, literal: Literal, role: str | None) -> None:
        value = literal.value
        if role == "core":
            if not isinstance(value, str):
                self._emit(
                    "FG106",
                    f"expected a Core name here, got the number {value!r}",
                    literal.span,
                )
            elif self.topology.cores and value not in self.topology.cores:
                self._emit(
                    "FG104",
                    f"unknown Core {value!r}"
                    + _suggest(value, self.topology.cores),
                    literal.span,
                )
        elif role == "complet":
            if isinstance(value, str) and self.topology.complets \
                    and value not in self.topology.complets:
                self._emit(
                    "FG105",
                    f"no complet {value!r} in the deployment"
                    + _suggest(value, self.topology.complets),
                    literal.span,
                )

    # -- rules ---------------------------------------------------------------------

    def _check_rule(self, rule: Rule, defined: set[str]) -> None:
        env = set(defined)
        env.add("event")
        if rule.fired_by is not None:
            env.add(rule.fired_by)

        self._check_event(rule, env)

        if rule.listen_at is not None:
            self._check_expr(rule.listen_at, env, "core")
        if rule.every is not None:
            self._check_expr(rule.every, env)
            self._check_number_literal(rule.every, "'every' interval", positive=True)

        for action in rule.actions:
            self._check_action(action, env, rule)

    def _check_event(self, rule: Rule, env: set[str]) -> None:
        for arg in rule.event_args:
            self._check_expr(arg, env)
        if rule.event == "timer":
            if not rule.event_args:
                self._emit(
                    "FG109", "timer rules need an interval argument", rule.span
                )
            else:
                self._check_number_literal(
                    rule.event_args[0], "timer interval", positive=True
                )
            return
        if rule.event in CORE_EVENTS:
            return
        service = SERVICE_ALIASES.get(rule.event)
        if service is None:
            known = {"timer", *CORE_EVENTS, *SERVICE_ALIASES}
            self._emit(
                "FG103",
                f"unknown event {rule.event!r}: not a Core event and not a "
                f"profiling service" + _suggest(rule.event, known),
                rule.span,
            )
            return
        # Profiled event: threshold, comparison, and required clauses.
        if not rule.event_args:
            self._emit(
                "FG109",
                f"profiled event {rule.event!r} needs a threshold argument",
                rule.span,
            )
        else:
            self._check_number_literal(rule.event_args[0], "threshold")
            if len(rule.event_args) > 1:
                op = rule.event_args[1]
                if isinstance(op, Literal) and op.value not in OPERATORS:
                    self._emit(
                        "FG106",
                        f"unknown comparison {op.value!r}; expected one of "
                        f"{sorted(OPERATORS)}",
                        op.span,
                    )
        if service in _PAIR_SERVICES and (rule.source is None or rule.target is None):
            self._emit(
                "FG109",
                f"{rule.event!r} rules need 'from <complet> to <complet>' clauses",
                rule.span,
            )
        elif service in _PEER_SERVICES and rule.target is None:
            self._emit(
                "FG109", f"{rule.event!r} rules need a 'to <core>' clause", rule.span
            )
        elif service in _COMPLET_SERVICES and rule.source is None:
            self._emit(
                "FG109", f"{rule.event!r} rules need a 'from <complet>' clause",
                rule.span,
            )
        if rule.source is not None:
            self._check_expr(rule.source, env, "complet")
        if rule.target is not None:
            role = "core" if service in _PEER_SERVICES else "complet"
            self._check_expr(rule.target, env, role)

    def _check_number_literal(
        self, expr: Expr, what: str, *, positive: bool = False
    ) -> None:
        """Flag literals that can never satisfy a numeric slot."""
        if not isinstance(expr, Literal):
            return  # dynamic value: the interpreter checks at runtime
        if not isinstance(expr.value, (int, float)):
            self._emit(
                "FG106",
                f"{what} must be a number, got {expr.value!r}",
                expr.span,
            )
        elif positive and expr.value <= 0:
            self._emit(
                "FG106",
                f"{what} must be positive, got {expr.value!r}",
                expr.span,
            )

    # -- actions ---------------------------------------------------------------------

    def _check_action(self, action: Action, env: set[str], rule: Rule) -> None:
        if isinstance(action, AssignAction):
            self._check_expr(action.value, env)
            env.add(action.name)
        elif isinstance(action, LogAction):
            self._check_expr(action.message, env)
        elif isinstance(action, MoveAction):
            self._check_expr(action.target, env, "complet")
            self._check_expr(action.destination, env, "core")
        elif isinstance(action, RetypeAction):
            self._check_expr(action.reference, env)
            if action.type_name.lower() not in BUILTIN_RELOCATORS:
                self._emit(
                    "FG110",
                    f"unknown reference type {action.type_name!r}; expected one "
                    f"of {sorted(BUILTIN_RELOCATORS)}"
                    + _suggest(action.type_name.lower(), BUILTIN_RELOCATORS),
                    action.span,
                )
        elif isinstance(action, CallAction):
            for arg in action.args:
                self._check_expr(arg, env)
            if action.name == "retryMove" and rule.event != "moveFailed":
                self._emit(
                    "FG111",
                    "'call retryMove(...)' only works inside an "
                    "'on moveFailed' rule",
                    action.span,
                )
            elif (
                action.name == "failover"
                and not action.args
                and rule.event != "coreFailed"
            ):
                self._emit(
                    "FG111",
                    "'call failover()' without a Core argument only works "
                    "inside an 'on coreFailed' rule; name the Core to fail "
                    "over from anywhere else",
                    action.span,
                )
            elif ":" not in action.name and action.name not in STDLIB_ACTIONS:
                self._emit(
                    "FG111",
                    f"unknown action {action.name!r}: not a built-in and not a "
                    f"'module:function' name; register it before running"
                    + _suggest(action.name, STDLIB_ACTIONS),
                    action.span,
                )

    # -- whole-script checks -----------------------------------------------------------

    def _check_arg_gaps(self) -> None:
        """Referencing %1 and %3 but never %2 is almost always an off-by-one."""
        if not self.arg_refs:
            return
        highest = max(self.arg_refs)
        missing = sorted(set(range(1, highest)) - set(self.arg_refs))
        if missing:
            gaps = ", ".join(f"%{i}" for i in missing)
            self._emit(
                "FG102",
                f"script references %{highest} but never {gaps}; "
                f"argument positions may be off by one",
                self.arg_refs[highest],
                severity=Severity.WARNING,
            )

    def _check_duplicates(self) -> None:
        rules = self.script.rules
        seen: dict[Rule, Rule] = {}
        for rule in rules:
            first = seen.setdefault(rule, rule)
            if first is not rule:
                at = f" (line {first.span.line})" if first.span else ""
                self._emit(
                    "FG107",
                    f"rule duplicates an earlier 'on {rule.event}' rule{at}",
                    rule.span,
                )
        self._check_conflicts(rules)

    def _check_conflicts(self, rules: list[Rule]) -> None:
        """Two rules on the same trigger moving one target to different cores."""
        by_trigger: dict[tuple, list[Rule]] = {}
        for rule in rules:
            key = (rule.event, rule.event_args, rule.fired_by, rule.source,
                   rule.target, rule.listen_at, rule.every)
            by_trigger.setdefault(key, []).append(rule)
        for group in by_trigger.values():
            if len(group) < 2:
                continue
            moves: dict[Expr, tuple[object, Rule]] = {}
            for rule in group:
                for action in rule.actions:
                    if not isinstance(action, MoveAction):
                        continue
                    if not isinstance(action.destination, Literal):
                        continue
                    prior = moves.get(action.target)
                    if prior is None:
                        moves[action.target] = (action.destination.value, rule)
                    elif prior[0] != action.destination.value:
                        at = f" (line {prior[1].span.line})" if prior[1].span else ""
                        self._emit(
                            "FG107",
                            f"conflicts with an earlier rule{at}: same trigger "
                            f"moves the same target to {prior[0]!r} and to "
                            f"{action.destination.value!r}",
                            action.span,
                            severity=Severity.ERROR,
                        )

    def _check_move_cycles(self) -> None:
        """Arrival-triggered moves that can re-trigger each other forever.

        Nodes are Core names; a rule listening for arrivals at Core A
        that moves complets to literal Core B contributes the edge A→B.
        Any cycle through ≥ 2 distinct Cores means a move storm the
        runtime would only stop by accident.
        """
        universe: set[str] = set(self.topology.cores)
        arrival_rules: list[tuple[Rule, list[str] | None, list[tuple[str, Span | None]]]] = []
        for rule in self.script.rules:
            if rule.event not in _ARRIVAL_EVENTS:
                continue
            listen = self._literal_cores(rule.listen_at)
            dests = [
                (a.destination.value, a.span)
                for a in rule.actions
                if isinstance(a, MoveAction)
                and isinstance(a.destination, Literal)
                and isinstance(a.destination.value, str)
            ]
            if listen is not None:
                universe.update(listen)
            universe.update(d for d, _ in dests)
            arrival_rules.append((rule, listen, dests))

        edges: dict[str, set[str]] = {}
        spans: dict[tuple[str, str], Span | None] = {}
        for rule, listen, dests in arrival_rules:
            sources = listen if listen is not None else sorted(universe)
            for src in sources:
                for dest, span in dests:
                    if src == dest:
                        continue  # moving in place re-fires nothing
                    edges.setdefault(src, set()).add(dest)
                    spans.setdefault((src, dest), span if span is not None else rule.span)

        for cycle in find_cycles(edges):
            path = " -> ".join([*cycle, cycle[0]])
            self._emit(
                "FG108",
                f"arrival-triggered moves form a cycle ({path}); complets "
                f"would ping-pong between these Cores",
                spans.get((cycle[0], cycle[1])),
            )

    def _literal_cores(self, expr: Expr | None) -> list[str] | None:
        return literal_listen_cores(expr)


def literal_listen_cores(expr: Expr | None) -> list[str] | None:
    """Literal core names of a listenAt clause, or None if dynamic/absent."""
    if expr is None:
        return None
    if isinstance(expr, Literal) and isinstance(expr.value, str):
        return [expr.value]
    if isinstance(expr, ListExpr):
        names = [
            item.value
            for item in expr.items
            if isinstance(item, Literal) and isinstance(item.value, str)
        ]
        return names if len(names) == len(expr.items) else None
    return None


def find_cycles(edges: dict[str, set[str]]) -> list[list[str]]:
    """Simple cycles (each reported once, rotated to its smallest node)."""
    cycles: list[list[str]] = []
    reported: set[tuple[str, ...]] = set()
    state: dict[str, int] = {}  # 0 unseen implicit, 1 on stack, 2 done
    stack: list[str] = []

    def visit(node: str) -> None:
        state[node] = 1
        stack.append(node)
        for succ in sorted(edges.get(node, ())):
            mark = state.get(succ, 0)
            if mark == 0:
                visit(succ)
            elif mark == 1:
                cycle = stack[stack.index(succ):]
                pivot = cycle.index(min(cycle))
                canon = tuple(cycle[pivot:] + cycle[:pivot])
                if canon not in reported:
                    reported.add(canon)
                    cycles.append(list(canon))
        stack.pop()
        state[node] = 2

    for node in sorted(edges):
        if state.get(node, 0) == 0:
            visit(node)
    return cycles
