"""Command line for the static analyzer: ``python -m repro.analysis``.

Usage::

    python -m repro.analysis PATH [PATH ...]
        [--json | --sarif] [--strict] [--args N]
        [--cluster-spec SPEC.json] [--plan PLAN.json]

A ``.fgs`` path is checked as a layout script; a ``.py`` path is checked
in complet mode (movability of every anchor class) *and* every embedded
script found in it — a module-level string constant whose name contains
``SCRIPT`` — is checked as a script, with diagnostics mapped back to the
Python file's lines.  Directories are walked recursively.  When the run
collects more than one script, the interaction checker (FG401–FG404,
cross-script FG108) runs over the whole set; embedded scripts join the
set under a ``file:NAME`` label with script-relative lines.

``--cluster-spec`` points at a JSON file ``{"cores": [...],
"complets": [...]}`` enabling Core/complet identifier resolution, the
same checks :meth:`Cluster.analyze` runs against a live topology.
``--plan`` points at a JSON move plan (see
:meth:`repro.analysis.MovePlan.from_json`) checked as a batch against
the topology and the collected scripts (FG405–FG409).

Suppression comments that suppress nothing are reported as FG001
(informational; ``--strict`` escalates them to warnings).  ``--sarif``
emits SARIF 2.1.0 with the same records as ``--json``.

Exit status: 1 when any error-severity diagnostic survives suppression
(warnings too under ``--strict``), else 0.
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import json
import re
import sys
from pathlib import Path

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    apply_suppressions,
    render_json,
    render_sarif,
    render_text,
    sort_diagnostics,
    unused_suppressions,
)
from repro.analysis.interaction import (
    check_interaction,
    coerce_scripts,
    script_set_effects,
)
from repro.analysis.movability import check_complet_source
from repro.analysis.plan import MovePlan, check_plan
from repro.analysis.script_check import TopologyInfo, check_script

#: File suffix of stand-alone layout scripts.
SCRIPT_SUFFIX = ".fgs"


def iter_target_files(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                p for p in sorted(path.rglob("*"))
                if p.suffix in (".py", SCRIPT_SUFFIX) and p.is_file()
            )
        else:
            files.append(path)
    return files


_SCRIPT_SHAPE_RE = re.compile(r"(^|\n)\s*(on\s|\$\w+\s*=)")


def extract_embedded_scripts(source: str) -> list[tuple[str, int, str, bool]]:
    """``(name, first_line, script_source, exact_lines)`` tuples.

    An embedded script is a string constant assigned — at module or
    class level — to a name containing ``SCRIPT`` (the repo-wide
    convention: ``PAPER_SCRIPT``, ``RETRY_SCRIPT``, ...) whose text
    looks like rules (so ``SCRIPT_SUFFIX = ".fgs"`` is not one).

    ``exact_lines`` is True for physical multi-line strings, where
    script line *i* sits at file line ``first_line + i - 1``; strings
    built with escaped ``\\n`` collapse to the assignment's line.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []
    found: list[tuple[str, int, str, bool]] = []
    scopes: list[list[ast.stmt]] = [tree.body]
    scopes.extend(n.body for n in tree.body if isinstance(n, ast.ClassDef))
    for body in scopes:
        for node in body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            value = node.value
            if (
                isinstance(target, ast.Name)
                and "SCRIPT" in target.id.upper()
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
                and _SCRIPT_SHAPE_RE.search(value.value)
            ):
                text = value.value
                # In a physical multi-line string every cooked newline is
                # a physical newline, so counting back from end_lineno
                # lands on the first script line.  Escaped-\n strings
                # span fewer physical lines than cooked ones and cannot
                # be mapped per-line.
                exact = value.end_lineno - value.lineno >= text.count("\n")
                first_line = value.end_lineno - text.count("\n") if exact else node.lineno
                found.append((target.id, first_line, text, exact))
    return found


def collect_scripts(path: Path, source: str) -> list[tuple[str, str]]:
    """``(script_source, label)`` pairs found in one file.

    A ``.fgs`` file is one script labelled by its path; a ``.py`` file
    contributes every embedded script under a ``path:NAME`` label.
    """
    name = str(path)
    if path.suffix == SCRIPT_SUFFIX:
        return [(source, name)]
    return [
        (text, f"{name}:{script_name}")
        for script_name, _first_line, text, _exact in extract_embedded_scripts(source)
    ]


def file_diagnostics(
    path: Path,
    source: str,
    *,
    topology: TopologyInfo | None = None,
    expected_args: int | None = None,
) -> list[Diagnostic]:
    """Per-file diagnostics *before* suppression comments are applied."""
    name = str(path)
    if path.suffix == SCRIPT_SUFFIX:
        return check_script(
            source, topology=topology, expected_args=expected_args, file=name
        )
    diagnostics = list(check_complet_source(source, file=name))
    for _script_name, first_line, text, exact in extract_embedded_scripts(source):
        for d in check_script(
            text, topology=topology, expected_args=expected_args, file=name
        ):
            line = first_line + d.line - 1 if exact and d.line else first_line
            diagnostics.append(d.at(line=line))
    return diagnostics


def analyze_file(
    path: Path,
    *,
    topology: TopologyInfo | None = None,
    expected_args: int | None = None,
) -> list[Diagnostic]:
    """Every diagnostic for one file, suppressions already applied.

    Suppression comments that matched nothing come back as FG001.
    """
    source = path.read_text(encoding="utf-8")
    diagnostics = file_diagnostics(
        path, source, topology=topology, expected_args=expected_args
    )
    kept = apply_suppressions(diagnostics, source)
    kept.extend(unused_suppressions(diagnostics, source, file=str(path)))
    return kept


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static verifier for layout scripts, relocation "
        "semantics, complet movability, and plan/interaction races.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to check")
    parser.add_argument("--json", action="store_true", help="emit JSON diagnostics")
    parser.add_argument(
        "--sarif", action="store_true", help="emit SARIF 2.1.0 diagnostics"
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="warnings also fail the run; FG001 escalates to a warning",
    )
    parser.add_argument(
        "--args", type=int, default=None, metavar="N",
        help="number of %%n script arguments the deployment will pass",
    )
    parser.add_argument(
        "--cluster-spec", default=None, metavar="SPEC",
        help='JSON file {"cores": [...], "complets": [...]} for identifier '
        "resolution",
    )
    parser.add_argument(
        "--plan", default=None, metavar="PLAN",
        help="JSON move plan to check as a batch (FG405-FG409) against the "
        "topology and the collected scripts",
    )
    options = parser.parse_args(argv)
    if not options.paths and options.plan is None:
        parser.error("nothing to check: give paths and/or --plan")

    topology: TopologyInfo | None = None
    if options.cluster_spec is not None:
        with open(options.cluster_spec, encoding="utf-8") as f:
            topology = TopologyInfo.from_spec(json.load(f))

    diagnostics: list[Diagnostic] = []
    scripts: list[tuple[str, str]] = []
    sources: dict[str, str] = {}
    per_file: dict[str, list[Diagnostic]] = {}
    for path in iter_target_files(options.paths):
        if not path.exists():
            print(f"error: no such file: {path}", file=sys.stderr)
            return 2
        source = path.read_text(encoding="utf-8")
        sources[str(path)] = source
        per_file[str(path)] = file_diagnostics(
            path, source, topology=topology, expected_args=options.args
        )
        scripts.extend(collect_scripts(path, source))

    if scripts:
        # Stand-alone scripts are anchored at their own file, so their
        # suppression comments apply to interaction findings too; the
        # findings join the per-file pools *before* suppression so a
        # comment that silences only an interaction finding is not
        # misreported as unused.
        for d in check_interaction(scripts, topology=topology):
            if d.file in per_file:
                per_file[d.file].append(d)
            else:
                diagnostics.append(d)

    for name, pre in per_file.items():
        source = sources[name]
        kept = apply_suppressions(pre, source)
        kept.extend(unused_suppressions(pre, source, file=name))
        diagnostics.extend(kept)

    if options.plan is not None:
        plan_path = Path(options.plan)
        if not plan_path.exists():
            print(f"error: no such file: {plan_path}", file=sys.stderr)
            return 2
        try:
            plan = MovePlan.from_json(
                plan_path.read_text(encoding="utf-8"), name=str(plan_path)
            )
        except (ValueError, KeyError) as exc:
            print(f"error: bad plan {plan_path}: {exc}", file=sys.stderr)
            return 2
        diagnostics.extend(
            check_plan(
                plan,
                topology,
                effects=script_set_effects(coerce_scripts(scripts)),
            )
        )

    if options.strict:
        diagnostics = [
            dataclasses.replace(d, severity=Severity.WARNING)
            if d.code == "FG001"
            else d
            for d in diagnostics
        ]
    diagnostics = sort_diagnostics(diagnostics)
    if options.sarif:
        print(render_sarif(diagnostics))
    elif options.json:
        print(render_json(diagnostics))
    else:
        print(render_text(diagnostics))
    failing = (
        any(d.severity is Severity.ERROR for d in diagnostics)
        or (options.strict and any(d.severity is Severity.WARNING for d in diagnostics))
    )
    return 1 if failing else 0
