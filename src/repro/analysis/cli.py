"""Command line for the static analyzer: ``python -m repro.analysis``.

Usage::

    python -m repro.analysis PATH [PATH ...]
        [--json] [--strict] [--args N] [--cluster-spec SPEC.json]

A ``.fgs`` path is checked as a layout script; a ``.py`` path is checked
in complet mode (movability of every anchor class) *and* every embedded
script found in it — a module-level string constant whose name contains
``SCRIPT`` — is checked as a script, with diagnostics mapped back to the
Python file's lines.  Directories are walked recursively.

``--cluster-spec`` points at a JSON file ``{"cores": [...],
"complets": [...]}`` enabling Core/complet identifier resolution, the
same checks :meth:`Cluster.analyze` runs against a live topology.

Exit status: 1 when any error-severity diagnostic survives suppression
(warnings too under ``--strict``), else 0.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from pathlib import Path

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    apply_suppressions,
    render_json,
    render_text,
    sort_diagnostics,
)
from repro.analysis.movability import check_complet_source
from repro.analysis.script_check import TopologyInfo, check_script

#: File suffix of stand-alone layout scripts.
SCRIPT_SUFFIX = ".fgs"


def iter_target_files(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                p for p in sorted(path.rglob("*"))
                if p.suffix in (".py", SCRIPT_SUFFIX) and p.is_file()
            )
        else:
            files.append(path)
    return files


_SCRIPT_SHAPE_RE = re.compile(r"(^|\n)\s*(on\s|\$\w+\s*=)")


def extract_embedded_scripts(source: str) -> list[tuple[str, int, str, bool]]:
    """``(name, first_line, script_source, exact_lines)`` tuples.

    An embedded script is a string constant assigned — at module or
    class level — to a name containing ``SCRIPT`` (the repo-wide
    convention: ``PAPER_SCRIPT``, ``RETRY_SCRIPT``, ...) whose text
    looks like rules (so ``SCRIPT_SUFFIX = ".fgs"`` is not one).

    ``exact_lines`` is True for physical multi-line strings, where
    script line *i* sits at file line ``first_line + i - 1``; strings
    built with escaped ``\\n`` collapse to the assignment's line.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []
    found: list[tuple[str, int, str, bool]] = []
    scopes: list[list[ast.stmt]] = [tree.body]
    scopes.extend(n.body for n in tree.body if isinstance(n, ast.ClassDef))
    for body in scopes:
        for node in body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            value = node.value
            if (
                isinstance(target, ast.Name)
                and "SCRIPT" in target.id.upper()
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
                and _SCRIPT_SHAPE_RE.search(value.value)
            ):
                text = value.value
                # In a physical multi-line string every cooked newline is
                # a physical newline, so counting back from end_lineno
                # lands on the first script line.  Escaped-\n strings
                # span fewer physical lines than cooked ones and cannot
                # be mapped per-line.
                exact = value.end_lineno - value.lineno >= text.count("\n")
                first_line = value.end_lineno - text.count("\n") if exact else node.lineno
                found.append((target.id, first_line, text, exact))
    return found


def analyze_file(
    path: Path,
    *,
    topology: TopologyInfo | None = None,
    expected_args: int | None = None,
) -> list[Diagnostic]:
    """Every diagnostic for one file, suppressions already applied."""
    source = path.read_text(encoding="utf-8")
    name = str(path)
    if path.suffix == SCRIPT_SUFFIX:
        diagnostics = check_script(
            source, topology=topology, expected_args=expected_args, file=name
        )
        return apply_suppressions(diagnostics, source)
    diagnostics = list(check_complet_source(source, file=name))
    for _script_name, first_line, text, exact in extract_embedded_scripts(source):
        for d in check_script(
            text, topology=topology, expected_args=expected_args, file=name
        ):
            line = first_line + d.line - 1 if exact and d.line else first_line
            diagnostics.append(d.at(line=line))
    return apply_suppressions(diagnostics, source)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static verifier for layout scripts, relocation "
        "semantics, and complet movability.",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to check")
    parser.add_argument("--json", action="store_true", help="emit JSON diagnostics")
    parser.add_argument(
        "--strict", action="store_true", help="warnings also fail the run"
    )
    parser.add_argument(
        "--args", type=int, default=None, metavar="N",
        help="number of %%n script arguments the deployment will pass",
    )
    parser.add_argument(
        "--cluster-spec", default=None, metavar="SPEC",
        help='JSON file {"cores": [...], "complets": [...]} for identifier '
        "resolution",
    )
    options = parser.parse_args(argv)

    topology: TopologyInfo | None = None
    if options.cluster_spec is not None:
        with open(options.cluster_spec, encoding="utf-8") as f:
            topology = TopologyInfo.from_spec(json.load(f))

    diagnostics: list[Diagnostic] = []
    for path in iter_target_files(options.paths):
        if not path.exists():
            print(f"error: no such file: {path}", file=sys.stderr)
            return 2
        diagnostics.extend(
            analyze_file(path, topology=topology, expected_args=options.args)
        )

    diagnostics = sort_diagnostics(diagnostics)
    print(render_json(diagnostics) if options.json else render_text(diagnostics))
    failing = (
        any(d.severity is Severity.ERROR for d in diagnostics)
        or (options.strict and any(d.severity is Severity.WARNING for d in diagnostics))
    )
    return 1 if failing else 0
