"""Cross-rule and cross-script interaction analysis (FG401–FG404, FG108).

:func:`check_script` verifies one script in isolation; nothing there can
see that *two* installed scripts — or a script and the recovery layer —
issue conflicting layout operations.  This module takes the whole
installed set as one unit:

- **FG401** — two rules that can fire from the same event frontier move
  the same complet to different destinations (a move/move race the
  two-phase protocol only *tolerates* at runtime);
- **FG402** — arrival-triggered moves of one complet across scripts form
  a cycle (the complet would ping-pong between Cores forever);
- **FG403** — a move races a ``failover``/``restore`` recovery action
  that may concurrently re-place the same complets;
- **FG404** — two rules retype the same reference edge to different
  relocation types;
- **FG108** — the single-script move-cycle check promoted to the whole
  set: cycles whose edges span several scripts escape every per-script
  run.

Rules are compared through their extracted effects
(:mod:`repro.script.effects`): identical spellings are assumed to name
the same complet/reference, an over-approximation with the right
polarity for warnings.

*Event frontiers.*  Two rules are **co-firable** when their triggers can
be outstanding at the same instant: they name events of the same
frontier group (all arrival-ish events, all failure-ish events, ...), or
either trigger is asynchronous (``timer`` and every profiled-threshold
event can fire concurrently with anything).  Listen scopes do *not*
separate rules — two ``completArrived`` rules listening at different
Cores still co-fire when two different complets arrive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ScriptSyntaxError
from repro.script.ast import Script
from repro.script.effects import (
    CallEffect,
    MoveEffect,
    RetypeEffect,
    RuleEffects,
    extract_effects,
)
from repro.script.interpreter import CORE_EVENTS
from repro.script.parser import parse

from repro.analysis.diagnostics import Diagnostic, diag, sort_diagnostics
from repro.analysis.script_check import TopologyInfo, find_cycles

__all__ = [
    "MoveRace",
    "RecoveryConflict",
    "RetypeRace",
    "check_interaction",
    "co_firable",
    "coerce_scripts",
    "find_move_races",
    "find_recovery_conflicts",
    "find_retype_races",
    "script_set_effects",
]

#: Events that are facets of one physical episode; rules on any two
#: members can be outstanding at the same instant.
_FRONTIERS: dict[str, str] = {
    "completArrived": "arrival",
    "moveCompleted": "arrival",
    "completDeparted": "arrival",
    "moveFailed": "arrival",
    "coreFailed": "failure",
    "coreSuspected": "failure",
    "coreRecovered": "failure",
    "completRecovered": "failure",
    "completRestored": "failure",
    "coreReconciled": "failure",
    "shutdown": "shutdown",
    "coreShutdown": "shutdown",
}

#: Arrival events whose rules can re-trigger each other (cycle frontier).
_ARRIVAL_EVENTS = {"completArrived", "moveCompleted"}


def _is_async_trigger(event: str) -> bool:
    """Timers and profiled thresholds fire concurrently with anything."""
    return event == "timer" or event not in CORE_EVENTS


def co_firable(a: RuleEffects, b: RuleEffects) -> bool:
    """Whether rules ``a`` and ``b`` can have firings in flight together."""
    if _is_async_trigger(a.event) or _is_async_trigger(b.event):
        return True
    fa = _FRONTIERS.get(a.event, a.event)
    fb = _FRONTIERS.get(b.event, b.event)
    return fa == fb


# -- structured findings (consumed by tests and the property harness) ---------------


@dataclass(frozen=True)
class MoveRace:
    """Two co-firable rules moving one complet to different places."""

    subject: str
    first: RuleEffects
    first_move: MoveEffect
    second: RuleEffects
    second_move: MoveEffect


@dataclass(frozen=True)
class RecoveryConflict:
    """A move that can race a ``failover``/``restore`` recovery action."""

    #: Literal complet the conflict is about, or None for a whole-Core
    #: ``failover`` (which re-places an unknown set of complets).
    subject: str | None
    mover: RuleEffects
    move: MoveEffect
    recoverer: RuleEffects
    call: CallEffect


@dataclass(frozen=True)
class RetypeRace:
    """Two co-firable rules retyping one reference edge differently."""

    subject: str
    first: RuleEffects
    first_retype: RetypeEffect
    second: RuleEffects
    second_retype: RetypeEffect


def script_set_effects(
    scripts: list[tuple[Script, str]],
) -> list[RuleEffects]:
    """Effects of every rule of every script, in set order."""
    effects: list[RuleEffects] = []
    for index, (script, name) in enumerate(scripts):
        effects.extend(
            extract_effects(script, script_name=name, script_index=index)
        )
    return effects


def _covered_by_fg107(a: RuleEffects, b: RuleEffects) -> bool:
    """Whether the single-script checker already reports this pair.

    FG107 flags conflicting moves on *literally identical* triggers
    within one script; re-reporting them as FG401 would double up.
    """
    return (
        a.script_index == b.script_index
        and a.trigger_key == b.trigger_key
    )


def find_move_races(effects: list[RuleEffects]) -> list[MoveRace]:
    races: list[MoveRace] = []
    for i, a in enumerate(effects):
        for b in effects[i + 1:]:
            if a.rule is b.rule or not co_firable(a, b):
                continue
            for ma in a.moves:
                for mb in b.moves:
                    if ma.target != mb.target:
                        continue
                    if ma.destination == mb.destination:
                        continue
                    if (
                        _covered_by_fg107(a, b)
                        and ma.destination_literal
                        and mb.destination_literal
                    ):
                        continue
                    races.append(MoveRace(ma.target, a, ma, b, mb))
    return races


def find_recovery_conflicts(effects: list[RuleEffects]) -> list[RecoveryConflict]:
    conflicts: list[RecoveryConflict] = []
    recoverers = [
        (e, call)
        for e in effects
        for call in e.calls
        if call.name in ("failover", "restore")
    ]
    if not recoverers:
        return conflicts
    for recoverer, call in recoverers:
        restored: str | None = None
        if call.name == "restore" and call.literal_args:
            restored = call.literal_args[0]
        for mover in effects:
            if mover.rule is recoverer.rule or not co_firable(mover, recoverer):
                continue
            for move in mover.moves:
                if call.name == "restore":
                    # A restore re-places one named complet; only moves
                    # of that complet conflict (dynamic args match all).
                    if restored is not None and move.target != restored:
                        continue
                    subject = restored if restored is not None else move.target
                else:
                    # failover re-places every complet of the failed
                    # Core; any co-firable move can collide with it.
                    subject = None
                conflicts.append(
                    RecoveryConflict(subject, mover, move, recoverer, call)
                )
    return conflicts


def find_retype_races(effects: list[RuleEffects]) -> list[RetypeRace]:
    races: list[RetypeRace] = []
    for i, a in enumerate(effects):
        for b in effects[i + 1:]:
            if a.rule is b.rule or not co_firable(a, b):
                continue
            for ra in a.retypes:
                for rb in b.retypes:
                    if ra.reference != rb.reference:
                        continue
                    if ra.type_name == rb.type_name:
                        continue
                    races.append(RetypeRace(ra.reference, a, ra, b, rb))
    return races


# -- cycles across the installed set -------------------------------------------------


def _cross_script_core_cycles(
    effects: list[RuleEffects], topology: TopologyInfo
) -> list[tuple[list[str], tuple[str, int, object]]]:
    """FG108 promoted to the set: cycles whose edges need ≥ 2 scripts.

    Returns ``(cycle, (script, script_index, span))`` anchors.  Cycles
    coverable by a single script are left to :func:`check_script` so the
    per-script diagnostics stay byte-identical.
    """
    universe: set[str] = set(topology.cores)
    arrival: list[RuleEffects] = []
    for e in effects:
        if e.event not in _ARRIVAL_EVENTS:
            continue
        if e.listen_cores is not None:
            universe.update(e.listen_cores)
        universe.update(
            m.destination for m in e.moves if m.destination_literal
        )
        arrival.append(e)

    edges: dict[str, set[str]] = {}
    # Which scripts (and where) contribute each edge.
    owners: dict[tuple[str, str], set[int]] = {}
    anchors: dict[tuple[str, str], tuple[str, int, object]] = {}
    for e in arrival:
        sources = (
            list(e.listen_cores) if e.listen_cores is not None else sorted(universe)
        )
        for move in e.moves:
            if not move.destination_literal:
                continue
            dest = move.destination
            for src in sources:
                if src == dest:
                    continue
                edges.setdefault(src, set()).add(dest)
                owners.setdefault((src, dest), set()).add(e.script_index)
                anchors.setdefault(
                    (src, dest),
                    (e.script, e.script_index,
                     move.span if move.span is not None else e.rule.span),
                )

    out = []
    for cycle in find_cycles(edges):
        pairs = list(zip(cycle, cycle[1:] + cycle[:1]))
        contributing = [owners[pair] for pair in pairs]
        common = set.intersection(*contributing) if contributing else set()
        if common:
            continue  # one script alone forms it: check_script's job
        out.append((cycle, anchors[pairs[0]]))
    return out


def _oscillation_cycles(
    effects: list[RuleEffects], topology: TopologyInfo
) -> list[tuple[str, list[str], tuple[str, int, object]]]:
    """FG402: per-complet move cycles across scripts.

    Like the core-level cycle check, but restricted to rules that move
    *one particular complet*: the cycle means that very complet
    oscillates, even when the Core-level graph is acyclic.
    """
    by_target: dict[str, list[RuleEffects]] = {}
    for e in effects:
        if e.event not in _ARRIVAL_EVENTS:
            continue
        for move in e.moves:
            if move.destination_literal:
                by_target.setdefault(move.target, []).append(e)

    findings = []
    for target, rules in sorted(by_target.items()):
        if len(rules) < 2:
            continue
        universe: set[str] = set(topology.cores)
        for e in rules:
            if e.listen_cores is not None:
                universe.update(e.listen_cores)
            universe.update(
                m.destination
                for m in e.moves
                if m.destination_literal and m.target == target
            )
        edges: dict[str, set[str]] = {}
        owners: dict[tuple[str, str], set[int]] = {}
        anchors: dict[tuple[str, str], tuple[str, int, object]] = {}
        for e in rules:
            sources = (
                list(e.listen_cores)
                if e.listen_cores is not None
                else sorted(universe)
            )
            for move in e.moves:
                if not move.destination_literal or move.target != target:
                    continue
                for src in sources:
                    if src == move.destination:
                        continue
                    edges.setdefault(src, set()).add(move.destination)
                    owners.setdefault((src, move.destination), set()).add(
                        e.script_index
                    )
                    anchors.setdefault(
                        (src, move.destination),
                        (e.script, e.script_index,
                         move.span if move.span is not None else e.rule.span),
                    )
        for cycle in find_cycles(edges):
            pairs = list(zip(cycle, cycle[1:] + cycle[:1]))
            contributing = [owners[pair] for pair in pairs]
            common = set.intersection(*contributing) if contributing else set()
            if common:
                continue  # single-script oscillation: FG108 territory
            findings.append((target, cycle, anchors[pairs[0]]))
    return findings


# -- entry point ---------------------------------------------------------------------


def coerce_scripts(
    scripts,
) -> list[tuple[Script, str]]:
    """Normalise the accepted input shapes to ``(Script, label)`` pairs.

    Accepts parsed :class:`Script` objects, source strings, or
    ``(source_or_script, label)`` tuples.  Unparsable sources are
    dropped — every entry point also runs :func:`check_script` per
    script, which reports the FG100.
    """
    out: list[tuple[Script, str]] = []
    for index, item in enumerate(scripts):
        label: str | None = None
        if isinstance(item, tuple):
            item, label = item
        if label is None:
            label = f"<script#{index + 1}>"
        if isinstance(item, Script):
            out.append((item, label))
            continue
        try:
            out.append((parse(item), label))
        except ScriptSyntaxError:
            continue
    return out


def _anchor(effects: RuleEffects, span) -> dict:
    line, column = (span.line, span.column) if span is not None else (0, 0)
    return {"file": effects.script, "line": line, "column": column}


def check_interaction(
    scripts,
    *,
    topology: TopologyInfo | None = None,
) -> list[Diagnostic]:
    """All interaction diagnostics for the installed script set.

    ``scripts`` is a sequence of parsed scripts, source strings, or
    ``(script, label)`` pairs; ``label`` anchors the diagnostics (use
    the file name when there is one).  Single-script findings are left
    to :func:`check_script` — everything reported here needs the set.
    """
    topo = topology or TopologyInfo()
    pairs = coerce_scripts(scripts)
    effects = script_set_effects(pairs)
    diagnostics: list[Diagnostic] = []

    for race in find_move_races(effects):
        d = _anchor(race.second, race.second_move.span)
        diagnostics.append(
            diag(
                "FG401",
                f"move of {race.subject!r} to {race.second_move.destination!r} "
                f"races the move to {race.first_move.destination!r} in "
                f"{race.first.location} (on {race.first.event}); both rules "
                f"can fire from the same event frontier",
                **d,
            )
        )

    for target, cycle, (script, _idx, span) in _oscillation_cycles(effects, topo):
        path = " -> ".join([*cycle, cycle[0]])
        line, column = (span.line, span.column) if span is not None else (0, 0)
        diagnostics.append(
            diag(
                "FG402",
                f"moves of {target!r} across the installed scripts form a "
                f"cycle ({path}); the complet would oscillate between these "
                f"Cores",
                file=script,
                line=line,
                column=column,
            )
        )

    for conflict in find_recovery_conflicts(effects):
        d = _anchor(conflict.mover, conflict.move.span)
        what = (
            f"the {conflict.call.name} of {conflict.subject!r}"
            if conflict.subject is not None
            else f"the whole-Core {conflict.call.name}"
        )
        diagnostics.append(
            diag(
                "FG403",
                f"move of {conflict.move.target!r} can race {what} in "
                f"{conflict.recoverer.location} (on {conflict.recoverer.event}); "
                f"a recovery may re-place the complet while the move is in "
                f"flight",
                **d,
            )
        )

    for race in find_retype_races(effects):
        d = _anchor(race.second, race.second_retype.span)
        diagnostics.append(
            diag(
                "FG404",
                f"retype of {race.subject!r} to "
                f"{race.second_retype.type_name!r} races the retype to "
                f"{race.first_retype.type_name!r} in {race.first.location} "
                f"(on {race.first.event}); the edge's final type depends on "
                f"firing order",
                **d,
            )
        )

    for cycle, (script, _idx, span) in _cross_script_core_cycles(effects, topo):
        path = " -> ".join([*cycle, cycle[0]])
        line, column = (span.line, span.column) if span is not None else (0, 0)
        diagnostics.append(
            diag(
                "FG108",
                f"arrival-triggered moves across the installed scripts form "
                f"a cycle ({path}); complets would ping-pong between these "
                f"Cores",
                file=script,
                line=line,
                column=column,
            )
        )

    return sort_diagnostics(diagnostics)
