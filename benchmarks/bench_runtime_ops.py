"""Supporting measurements — the remaining Core API operations.

Rounds out the harness with the runtime operations no experiment above
isolates: instantiation (local and remote), naming, events with remote
subscribers, reference materialization, and checkpoint/restore.
"""

import pytest

from repro.core.persistence import restore, snapshot
from repro.cluster.cluster import Cluster
from repro.cluster.workload import Counter, Counter_, DataSource, Echo, Echo_
from benchmarks.conftest import print_table


@pytest.fixture
def pair():
    return Cluster(["a", "b"])


class TestInstantiation:
    def test_local_instantiation(self, benchmark, pair):
        benchmark(pair["a"].instantiate, Echo_, "tag")

    def test_remote_instantiation(self, benchmark, pair):
        benchmark(pair["a"].instantiate, Echo_, "tag", at="b")


class TestNaming:
    def test_local_lookup(self, benchmark, pair):
        echo = Echo("x", _core=pair["a"])
        pair["a"].bind("svc", echo)
        benchmark(pair["a"].lookup, "svc")

    def test_remote_lookup(self, benchmark, pair):
        echo = Echo("x", _core=pair["a"])
        pair["a"].bind("svc", echo)
        benchmark(pair["b"].naming.lookup_at, "a", "svc")

    def test_cluster_wide_search(self, benchmark):
        cluster = Cluster([f"n{i}" for i in range(8)])
        echo = Echo("x", _core=cluster["n7"], _at="n7")
        cluster["n7"].bind("needle", echo)
        benchmark(cluster["n0"].naming.lookup_anywhere, "needle")


class TestEvents:
    def test_publish_no_listeners(self, benchmark, pair):
        benchmark(pair["a"].events.publish, "quiet-event")

    def test_publish_to_remote_subscriber(self, benchmark, pair):
        seen = []
        pair["b"].events.subscribe_remote("a", "busy-event", seen.append)
        benchmark(pair["a"].events.publish, "busy-event")

    def test_publish_fanout_series(self, benchmark, pair):
        import time

        rows = []
        for listeners in (1, 10, 100):
            cluster = Cluster(["a", "b"])
            for _ in range(listeners):
                cluster["a"].events.subscribe("fan", lambda e: None)
            start = time.perf_counter()
            for _ in range(200):
                cluster["a"].events.publish("fan")
            elapsed = (time.perf_counter() - start) / 200 * 1e6
            rows.append((listeners, round(elapsed, 2)))
        print_table(
            "event publish µs vs local listener fan-out",
            ["listeners", "µs/publish"],
            rows,
        )
        benchmark(pair["a"].events.publish, "x")


class TestReferences:
    def test_materialize_reference(self, benchmark, pair):
        echo = Echo("x", _core=pair["a"])
        tracker = echo._fargo_tracker
        from repro.complet.relocators import Link
        from repro.complet.tokens import RefToken

        token = RefToken(tracker.target_id, tracker.anchor_ref, tracker.address, Link())
        benchmark(pair["b"].references.materialize, token)

    def test_stub_compilation_cached(self, benchmark):
        from repro.complet.stub import compile_complet

        benchmark(compile_complet, Counter_)


class TestPersistence:
    def test_snapshot_cost(self, benchmark, pair):
        source = DataSource(10_000, _core=pair["a"])
        benchmark(snapshot, pair["a"], source)

    def test_restore_cost(self, benchmark, pair):
        source = DataSource(10_000, _core=pair["a"])
        snap = snapshot(pair["a"], source)
        benchmark(restore, pair["b"], snap)

    def test_checkpoint_series(self, benchmark, pair):
        rows = []
        for size in (1_000, 10_000, 100_000):
            source = DataSource(size, _core=pair["a"])
            snap = snapshot(pair["a"], source)
            rows.append((size, len(snap.stream)))
        print_table(
            "snapshot bytes vs complet blob size",
            ["blob B", "snapshot B"],
            rows,
        )
        assert rows[-1][1] > rows[0][1] * 50
        benchmark(lambda: None)
