"""Experiments C4, C5, C6 — the monitoring layer's overhead claims.

- C4 (§4.1): "the monitor caches recent results so successive instant
  requests can be served without re-evaluation" — cached instant reads
  vs forced re-evaluation of an expensive service.
- C5 (§4.1): "the Core monitors only resources that some application has
  interest in, minimizing system overhead" — sampling work scales with
  *started* profiles only, and stop() reclaims it.
- C6 (§4.2): the event mechanism supports "many listeners (threads)
  without overloading the measurement unit" — evaluations are
  independent of the listener count.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.workload import DataSource, Echo
from benchmarks.conftest import print_table


@pytest.fixture
def loaded_core():
    cluster = Cluster(["a", "b"])
    for _ in range(20):
        DataSource(4_096, _core=cluster["a"])
    return cluster, cluster["a"]


class TestC4Cache:
    def test_cached_instant_read(self, benchmark, loaded_core):
        _cluster, core = loaded_core
        core.profile_instant("coreMemory")  # warm the cache
        benchmark(core.profile_instant, "coreMemory")

    def test_uncached_instant_read(self, benchmark, loaded_core):
        _cluster, core = loaded_core
        benchmark(core.profile_instant, "coreMemory", use_cache=False)

    def test_cache_series(self, benchmark, loaded_core):
        # `evaluations` is a read-only snapshot of the metrics registry,
        # so the series is measured as deltas rather than by clearing.
        cluster, core = loaded_core
        base = core.profiler.evaluations["coreMemory"]
        for _ in range(100):
            core.profile_instant("coreMemory")
        cached_evals = core.profiler.evaluations["coreMemory"] - base
        base = core.profiler.evaluations["coreMemory"]
        for _ in range(100):
            core.profile_instant("coreMemory", use_cache=False)
        uncached_evals = core.profiler.evaluations["coreMemory"] - base
        print_table(
            "C4: evaluations for 100 instant reads of coreMemory",
            ["with cache", "without cache"],
            [(cached_evals, uncached_evals)],
        )
        assert cached_evals == 1
        assert uncached_evals == 100
        benchmark(core.profile_instant, "coreMemory")


class TestC5InterestDriven:
    def test_sampling_scales_with_started_profiles(self, benchmark):
        rows = []
        for started in (0, 1, 4, 16):
            cluster = Cluster(["a", "b"])
            core = cluster["a"]
            for index in range(started):
                core.profiler.register_service(
                    f"svc{index}", lambda c, p: 1.0
                )
                core.profile_start(f"svc{index}", interval=1.0)
            cluster.advance(10.0)
            total_evaluations = sum(core.profiler.evaluations.values())
            rows.append((started, total_evaluations))
            assert total_evaluations == started * 10
        print_table(
            "C5: sampler evaluations over 10 s vs started profiles",
            ["profiles", "evaluations"],
            rows,
        )
        benchmark(lambda: None)

    def test_stop_reclaims_sampling(self, benchmark):
        cluster = Cluster(["a", "b"])
        core = cluster["a"]
        core.profile_start("completLoad", interval=1.0)
        cluster.advance(5.0)
        core.profile_stop("completLoad")
        before = core.profiler.evaluations["completLoad"]
        cluster.advance(50.0)
        assert core.profiler.evaluations["completLoad"] == before
        assert cluster.scheduler.pending == 0
        benchmark(lambda: None)

    def test_advance_cost_with_many_profiles(self, benchmark):
        """Wall-clock cost of sweeping one virtual second of sampling."""
        cluster = Cluster(["a", "b"])
        core = cluster["a"]
        for index in range(32):
            core.profiler.register_service(f"svc{index}", lambda c, p: 1.0)
            core.profile_start(f"svc{index}", interval=1.0)
        benchmark(cluster.advance, 1.0)


class TestC6SharedMeasurement:
    def test_evaluations_independent_of_listeners(self, benchmark):
        rows = []
        for listeners in (1, 10, 100):
            cluster = Cluster(["a", "b"])
            core = cluster["a"]
            fired = []
            for index in range(listeners):
                threshold = float(index % 7)
                core.events.subscribe("load-evt", fired.append)
                core.monitor.watch(
                    "completLoad", ">", threshold,
                    interval=1.0, event_name="load-evt",
                )
            Echo("x", _core=core)
            cluster.advance(10.0)
            rows.append((listeners, core.profiler.evaluations["completLoad"]))
            assert core.profiler.evaluations["completLoad"] == 10
            assert core.profiler.active_profiles() == 1
        print_table(
            "C6: measurement evaluations over 10 s vs listener count",
            ["listeners", "evaluations"],
            rows,
        )
        benchmark(lambda: None)

    def test_threshold_dispatch_cost(self, benchmark):
        """Wall-clock cost of one sampling tick fanned to 100 watches."""
        cluster = Cluster(["a", "b"])
        core = cluster["a"]
        for index in range(100):
            core.monitor.watch(
                "completLoad", ">", float(index), interval=1.0, repeat=True
            )
        benchmark(cluster.advance, 1.0)

    def test_event_notification_latency(self, benchmark, loaded_core):
        """Time from publish to a local listener observing the event."""
        _cluster, core = loaded_core
        seen = []
        core.events.subscribe("ping-evt", seen.append)
        benchmark(core.events.publish, "ping-evt")
