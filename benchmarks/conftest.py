"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment from DESIGN.md's index (the
paper has no numeric tables — it is a design paper — so the experiments
verify the *performance claims* its prose makes and the behaviours its
figures draw).  Each module prints a small table of the series it
measured; run with ``pytest benchmarks/ --benchmark-only -s`` to see
them alongside the pytest-benchmark timings.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster


@pytest.fixture
def bench_cluster():
    """A fresh 4-Core cluster with uniform 1 MB/s / 10 ms links."""
    return Cluster(["n1", "n2", "n3", "n4"])


def print_table(title: str, headers: list[str], rows: list[tuple]) -> None:
    """Render one experiment's series, paper-style."""
    widths = [
        max(len(str(headers[i])), max((len(f"{row[i]:g}" if isinstance(row[i], float) else str(row[i])) for row in rows), default=0))
        for i in range(len(headers))
    ]

    def fmt(value, width):
        text = f"{value:g}" if isinstance(value, float) else str(value)
        return text.rjust(width)

    print(f"\n== {title}")
    print("  " + "  ".join(h.rjust(w) for h, w in zip(headers, widths, strict=True)))
    for row in rows:
        print("  " + "  ".join(fmt(v, w) for v, w in zip(row, widths, strict=True)))
