"""Experiment C1/F1 — invocation overhead of the stub/tracker split.

§3.1 claims the two-entity design costs only "a small price of an extra
local method invocation" while buying one-tracker-per-target scalability.
Measured here:

- a direct Python method call on the raw anchor (the floor);
- a colocated stub call (floor + stub->tracker indirection + the
  mandatory by-value parameter marshaling);
- a remote stub call (adds the simulated wire);
- that tracker population stays at one per target per Core no matter how
  many references exist (the scalability half of the claim).
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.workload import Counter, Counter_, Echo
from benchmarks.conftest import print_table


@pytest.fixture
def rig():
    cluster = Cluster(["n1", "n2"])
    local = Counter(0, _core=cluster["n1"])
    remote = Counter(0, _core=cluster["n1"])
    cluster.move(remote, "n2")
    raw_anchor = Counter_(0)
    return cluster, raw_anchor, local, remote


def test_direct_anchor_call(benchmark, rig):
    """Floor: a plain Python method call, no runtime involved."""
    _cluster, raw_anchor, _local, _remote = rig
    benchmark(raw_anchor.increment)


def test_colocated_stub_call(benchmark, rig):
    """The claimed 'small price': stub + tracker + by-value marshaling."""
    _cluster, _raw, local, _remote = rig
    benchmark(local.increment)


def test_remote_stub_call(benchmark, rig):
    """Crossing the simulated wire (one INVOKE round trip)."""
    _cluster, _raw, _local, remote = rig
    benchmark(remote.increment)


def test_overhead_summary(benchmark, rig):
    """Print the C1 series and assert its shape."""
    import time

    cluster, raw_anchor, local, remote = rig

    def clock(fn, n=300):
        start = time.perf_counter()
        for _ in range(n):
            fn()
        return (time.perf_counter() - start) / n * 1e6  # µs

    direct = clock(raw_anchor.increment)
    colocated = clock(local.increment)
    wire = clock(remote.increment)
    print_table(
        "C1: invocation cost (µs per call)",
        ["direct", "colocated stub", "remote stub"],
        [(round(direct, 2), round(colocated, 2), round(wire, 2))],
    )
    # Shape: the colocated stub costs more than a raw call (marshaling is
    # mandatory) but far less than going over the wire.
    assert direct < colocated < wire
    benchmark(local.increment)


def test_one_tracker_regardless_of_reference_count(benchmark, rig):
    """Scalability claim: N references, one tracker per Core."""
    cluster, _raw, _local, remote = rig
    rows = []
    for count in (1, 8, 64):
        fresh = Cluster(["a", "b"])
        target = Counter(0, _core=fresh["a"])
        fresh.move(target, "b")
        stubs = [fresh.stub_at("a", target) for _ in range(count)]
        for stub in stubs:
            stub.increment()
        trackers = fresh["a"].repository.tracker_count()
        rows.append((count, trackers))
        assert trackers == 1
    print_table("C1: references vs trackers at one Core", ["references", "trackers"], rows)
    _cluster, _raw, local, _remote = rig
    benchmark(local.read)


def test_invocation_simulated_cost_scales_with_payload(benchmark, rig):
    """The wire cost model: simulated time grows with argument size."""
    cluster = Cluster(["a", "b"])
    echo = Echo("e", _core=cluster["a"])
    cluster.move(echo, "b")
    rows = []
    for size in (100, 10_000, 1_000_000):
        before = cluster.now
        echo.echo(bytes(size))
        rows.append((size, round(cluster.now - before, 4)))
    print_table(
        "C1: simulated seconds per call vs payload (1 MB/s link)",
        ["payload B", "sim s"],
        rows,
    )
    assert rows[0][1] < rows[1][1] < rows[2][1]
    benchmark(echo.echo, b"x" * 100)
