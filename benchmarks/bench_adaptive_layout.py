"""Experiment C7 — dynamic layout beats every static layout.

The paper's introduction argues that in wide-area environments "static
component layout might lead to low resource utilization, high
network-latency and low reliability", and §4.1 gives the concrete
policy: colocate two complets when the link between them is slow *and*
they talk a lot; spread them otherwise.

The scenario swept here: a client whose server affinity flips halfway
through a run (phase 1: server1 on site1; phase 2: server2 on site2),
over a WAN link that degrades midway.  We compare total simulated
network seconds for:

- static layouts (client pinned at site1 / at site2);
- the adaptive policy (script-driven colocation).

The shape that must hold (and is asserted): the adaptive run beats both
static layouts, and the gap widens as the inter-site link gets slower.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.workload import Client, Server
from repro.script.interpreter import ScriptEngine
from benchmarks.conftest import print_table

PHASE_SECONDS = 10
CALLS_PER_SECOND = 6


def run_scenario(*, adaptive: bool, client_home: str, wan_bandwidth: float) -> float:
    """Two-phase affinity workload; returns total simulated network time."""
    cluster = Cluster(["site1", "site2"], bandwidth=wan_bandwidth, latency=0.02)
    server1 = Server(reply_size=4_096, _core=cluster["site1"], _at="site1")
    server2 = Server(reply_size=4_096, _core=cluster["site2"], _at="site2")
    client = Client(server1, request_size=2_048, _core=cluster[client_home], _at=client_home)

    if adaptive:
        engine = ScriptEngine(cluster, home="site1")
        engine._globals.update({"c": client, "s1": server1, "s2": server2})
        engine.run(
            "on methodInvokeRate(2) from $c to $s1 do move $c to coreOf $s1 end\n"
            "on methodInvokeRate(2) from $c to $s2 do move $c to coreOf $s2 end"
        )

    cluster.reset_stats()
    for _ in range(PHASE_SECONDS):
        cluster.stub_at(cluster.locate(client), client).run(CALLS_PER_SECOND)
        cluster.advance(1.0)
    # Affinity flips: the client now needs server2.
    host = cluster.core(cluster.locate(client))
    host.repository.get(client._fargo_target_id).server = cluster.stub_at(
        host.name, server2
    )
    for _ in range(PHASE_SECONDS):
        cluster.stub_at(cluster.locate(client), client).run(CALLS_PER_SECOND)
        cluster.advance(1.0)
    return cluster.stats.seconds


def test_adaptive_vs_static_series(benchmark):
    """The C7 headline table across link speeds."""
    rows = []
    for bandwidth in (1_000_000.0, 250_000.0, 50_000.0):
        static1 = run_scenario(adaptive=False, client_home="site1", wan_bandwidth=bandwidth)
        static2 = run_scenario(adaptive=False, client_home="site2", wan_bandwidth=bandwidth)
        dynamic = run_scenario(adaptive=True, client_home="site1", wan_bandwidth=bandwidth)
        best_static = min(static1, static2)
        rows.append(
            (
                int(bandwidth),
                round(static1, 2),
                round(static2, 2),
                round(dynamic, 2),
                round(best_static / dynamic, 2),
            )
        )
        assert dynamic < best_static
    print_table(
        "C7: total network seconds — static vs dynamic layout",
        ["link B/s", "static@s1", "static@s2", "dynamic", "speedup"],
        rows,
    )
    # The advantage grows as the network gets worse.
    speedups = [row[4] for row in rows]
    assert speedups[-1] >= speedups[0]
    benchmark(lambda: None)


@pytest.mark.parametrize("adaptive", [False, True], ids=["static", "adaptive"])
def test_scenario_wall_time(benchmark, adaptive):
    """Wall-clock cost of running the whole scenario (policy overhead)."""
    benchmark.pedantic(
        run_scenario,
        kwargs={
            "adaptive": adaptive,
            "client_home": "site1",
            "wan_bandwidth": 250_000.0,
        },
        rounds=3,
    )


def test_policy_reacts_within_seconds(benchmark):
    """Latency from threshold crossing to relocation, in virtual time."""
    cluster = Cluster(["site1", "site2"], bandwidth=250_000.0)
    server = Server(_core=cluster["site2"], _at="site2")
    client = Client(server, _core=cluster["site1"])
    engine = ScriptEngine(cluster, home="site1")
    engine._globals.update({"c": client, "s": server})
    engine.run("on methodInvokeRate(2) from $c to $s do move $c to coreOf $s end")
    reaction = None
    for second in range(1, 20):
        cluster.stub_at(cluster.locate(client), client).run(6)
        cluster.advance(1.0)
        if cluster.locate(client) == "site2":
            reaction = second
            break
    print_table("C7: policy reaction time", ["virtual s to colocate"], [(reaction,)])
    assert reaction is not None and reaction <= 5
    benchmark(lambda: None)
