"""Supporting measurements — marshaling throughput and closure scanning.

The movement protocol (C3) and the parameter-passing semantics (C9) both
ride the reference-aware marshaler; its costs bound everything else.
Measured here:

- by-value parameter marshaling throughput vs payload size;
- closure scanning (used by planning, completSize, coreMemory) vs
  closure size;
- movement marshal+unmarshal vs closure size.
"""

import pytest

from repro.complet.closure import compute_closure
from repro.cluster.cluster import Cluster
from repro.cluster.workload import DataSource, Echo
from benchmarks.conftest import print_table


@pytest.mark.parametrize("size", [100, 10_000, 1_000_000])
def test_parameter_marshal_roundtrip(benchmark, size):
    """Colocated echo: pure marshal cost, no simulated wire."""
    cluster = Cluster(["a"])
    echo = Echo("e", _core=cluster["a"])
    payload = bytes(size)
    benchmark(echo.echo, payload)


@pytest.mark.parametrize("size", [1_000, 100_000, 1_000_000])
def test_closure_scan(benchmark, size):
    cluster = Cluster(["a"])
    source = DataSource(size, _core=cluster["a"])
    anchor = cluster["a"].repository.get(source._fargo_target_id)
    info = benchmark(compute_closure, anchor)
    assert info.size_bytes > size


@pytest.mark.parametrize("size", [1_000, 100_000])
def test_move_roundtrip_vs_closure(benchmark, size):
    cluster = Cluster(["a", "b"])
    source = DataSource(size, _core=cluster["a"])
    state = {"at_b": False}

    def bounce():
        cluster.move(source, "a" if state["at_b"] else "b")
        state["at_b"] = not state["at_b"]

    benchmark(bounce)


def test_reference_heavy_graph_marshal(benchmark):
    """Arguments packed with complet references (tokens, not copies)."""
    cluster = Cluster(["a"])
    echo = Echo("e", _core=cluster["a"])
    refs = [Echo(f"r{i}", _core=cluster["a"]) for i in range(20)]
    graph = {"refs": refs, "notes": list(range(100))}
    benchmark(echo.echo, graph)


def test_marshal_size_series(benchmark):
    """Closure size vs wire bytes for a move (framing overhead is small)."""
    rows = []
    for size in (1_000, 10_000, 100_000):
        cluster = Cluster(["a", "b"])
        source = DataSource(size, _core=cluster["a"])
        scan = compute_closure(cluster["a"].repository.get(source._fargo_target_id))
        cluster.reset_stats()
        cluster.move(source, "b")
        rows.append((size, scan.size_bytes, cluster.stats.bytes))
    print_table(
        "closure size vs bytes on the wire for one move",
        ["blob B", "closure B", "wire B"],
        rows,
    )
    for _blob, closure, wire in rows:
        assert wire < closure * 1.2 + 2_000  # modest framing overhead
    benchmark(lambda: None)
