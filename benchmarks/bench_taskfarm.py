"""Application-level benchmark — the adaptive task farm.

End-to-end cost of the whole stack under an application a downstream
user would actually write (``repro.apps.taskfarm``): queue + workers +
monitoring-driven placement.  Sweeps link speed and reports makespan and
network time, static vs adaptive — the application-level incarnation of
experiment C7.
"""

import pytest

from repro.apps.taskfarm import Farm
from repro.cluster.cluster import Cluster
from benchmarks.conftest import print_table

TASKS = 40
PAYLOAD = 8_192


def _run(*, adaptive: bool, bandwidth: float) -> tuple[float, float]:
    cluster = Cluster(["hub", "edge1", "edge2"], bandwidth=bandwidth, latency=0.01)
    farm = Farm(cluster, "hub", ["edge1", "edge2"], batch=4)
    if adaptive:
        farm.enable_adaptive_placement(
            byte_rate_threshold=5_000.0, bandwidth_threshold=500_000.0
        )
    farm.submit(payload_size=PAYLOAD, count=TASKS)
    cluster.reset_stats()
    makespan = farm.run_until_drained()
    return makespan, cluster.stats.seconds


def test_farm_series(benchmark):
    rows = []
    for bandwidth in (1_000_000.0, 100_000.0, 30_000.0):
        static_span, static_net = _run(adaptive=False, bandwidth=bandwidth)
        adaptive_span, adaptive_net = _run(adaptive=True, bandwidth=bandwidth)
        rows.append(
            (
                int(bandwidth),
                round(static_net, 2),
                round(adaptive_net, 2),
                round(static_span, 1),
                round(adaptive_span, 1),
            )
        )
    print_table(
        "task farm: static vs adaptive placement",
        ["link B/s", "static net s", "adaptive net s", "static span", "adaptive span"],
        rows,
    )
    # On slow links the adaptive farm must do strictly better on network
    # time (workers sit next to the queue after relocating).
    slow = rows[-1]
    assert slow[2] < slow[1]
    benchmark(lambda: None)


@pytest.mark.parametrize("adaptive", [False, True], ids=["static", "adaptive"])
def test_farm_wall_time(benchmark, adaptive):
    """Wall-clock cost of a full farm run (the simulator's own overhead)."""
    benchmark.pedantic(
        _run, kwargs={"adaptive": adaptive, "bandwidth": 100_000.0}, rounds=3
    )


def test_farm_throughput_scales_with_workers(benchmark):
    rows = []
    for workers in (1, 2, 4):
        cluster = Cluster(["hub"] + [f"e{i}" for i in range(workers)])
        farm = Farm(cluster, "hub", [f"e{i}" for i in range(workers)], batch=4)
        farm.submit(payload_size=1_024, count=40)
        makespan = farm.run_until_drained()
        rows.append((workers, round(makespan, 1)))
    print_table(
        "task farm: makespan vs worker count (fast links)",
        ["workers", "makespan s"],
        rows,
    )
    assert rows[-1][1] < rows[0][1]
    benchmark(lambda: None)
