"""Experiment O1 — observability overhead of the tracing layer.

The tracing design promises a pay-for-what-you-use fast path: with
tracing disabled (the default) every instrumented call site reduces to
one attribute read and one branch, so a cluster built without
``tracing=True`` should invoke at the same speed as the seed runtime.
Measured here:

- a remote stub call with tracing disabled (the default, the claim);
- the same call with tracing enabled and spans recorded;
- the same call with tracing enabled through a two-hop tracker chain,
  which stresses span creation on every forwarding Core.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.workload import Counter
from benchmarks.conftest import print_table


def _rig(tracing: bool):
    cluster = Cluster(["n1", "n2"], tracing=tracing)
    counter = Counter(0, _core=cluster["n1"])
    cluster.move(counter, "n2")
    cluster.clear_spans()
    return cluster, counter


@pytest.fixture
def rig_off():
    return _rig(False)


@pytest.fixture
def rig_on():
    return _rig(True)


def test_remote_call_tracing_off(benchmark, rig_off):
    """The claimed near-zero cost: instrumented sites on the fast path."""
    _cluster, counter = rig_off
    benchmark(counter.increment)


def test_remote_call_tracing_on(benchmark, rig_on):
    """Full span recording on both Cores of the round trip."""
    _cluster, counter = rig_on
    benchmark(counter.increment)


def test_chained_call_tracing_on(benchmark):
    """Span recording across a forwarding hop (three Cores in one trace)."""
    cluster = Cluster(["n1", "n2", "n3"], tracing=True)
    counter = Counter(0, _core=cluster["n1"])
    handle = counter  # reference stays at n1 while the target walks away
    cluster.move(counter, "n2")
    cluster.move(counter, "n3")
    benchmark(handle.increment)


def test_overhead_summary(benchmark, rig_off):
    """One-row comparison table: disabled vs enabled, same workload."""
    import timeit

    cluster_off, counter_off = rig_off
    cluster_on, counter_on = _rig(True)
    n = 200
    t_off = timeit.timeit(counter_off.increment, number=n) / n
    t_on = timeit.timeit(counter_on.increment, number=n) / n
    print_table(
        "O1  tracing overhead per remote invocation",
        ["variant", "us/call", "spans"],
        [
            ("tracing off", t_off * 1e6, len(cluster_off.spans())),
            ("tracing on", t_on * 1e6, len(cluster_on.spans())),
        ],
    )
    benchmark(counter_off.increment)
    # The off-path must not record anything; the on-path must.
    assert len(cluster_off.spans()) == 0
    assert len(cluster_on.spans()) > 0
