"""Experiment T1 — transport backend overhead: simnet vs the TCP codec.

The pluggable transport claims the application-level encoding is
byte-identical on both backends and the TCP framing adds only a small
fixed header per message.  Measured here:

- a round trip over the simulated transport (the reference backend);
- encode+decode of the same envelope through the length-prefixed TCP
  framing (pure codec cost, no sockets);
- a real loopback TCP round trip between two in-process hubs;
- that the codec's byte overhead per message is a small constant.
"""

import pytest

from repro.net import Envelope, MessageKind, SimTransport, TcpTransport, framing
from repro.sim.clock import VirtualClock
from repro.sim.scheduler import Scheduler
from benchmarks.conftest import print_table

PAYLOAD = b"x" * 512


@pytest.fixture
def sim_pair():
    net = SimTransport(Scheduler(VirtualClock()))
    net.register("a", lambda env: b"\x00" + env.payload)
    net.register("b", lambda env: b"\x00")
    return net


@pytest.fixture
def tcp_pair():
    hub_a = TcpTransport()
    hub_b = TcpTransport()
    hub_a.register("a", lambda env: b"\x00" + env.payload)
    hub_b.register("b", lambda env: b"\x00")
    hub_a.add_peer("b", hub_b.local_address("b"))
    hub_b.add_peer("a", hub_a.local_address("a"))
    yield hub_a, hub_b
    hub_a.close()
    hub_b.close()


def _envelope() -> Envelope:
    return Envelope(src="b", dst="a", kind=MessageKind.INVOKE, payload=PAYLOAD)


def test_sim_round_trip(benchmark, sim_pair):
    """Reference: one request/reply over the simulated transport."""
    benchmark(lambda: sim_pair.send(_envelope()))


def test_codec_round_trip(benchmark):
    """Pure framing cost: encode a request, decode it back."""
    decoder = framing.FrameDecoder()

    def round_trip():
        data = framing.encode_request(_envelope(), 7)
        return decoder.feed(data)

    benchmark(round_trip)


def test_tcp_round_trip(benchmark, tcp_pair):
    """One request/reply over real loopback sockets."""
    _hub_a, hub_b = tcp_pair
    benchmark(lambda: hub_b.send(_envelope(), timeout=10.0))


def test_overhead_summary(tcp_pair):
    """The codec's per-message byte overhead is a small constant."""
    rows = []
    for size in (0, 64, 512, 8_192):
        envelope = Envelope(
            src="b", dst="a", kind=MessageKind.INVOKE, payload=b"x" * size
        )
        encoded = framing.encode_request(envelope, 1)
        rows.append((size, len(encoded), len(encoded) - size))
    print_table(
        "T1: framing overhead by payload size",
        ["payload B", "frame B", "overhead B"],
        rows,
    )
    overheads = {overhead for _size, _frame, overhead in rows}
    assert len(overheads) == 1, "framing overhead must not depend on payload size"
    assert overheads.pop() < 64, "framing overhead must stay a small constant"
