"""Experiment S1 — large-payload offloading and envelope batching.

The object store claims move traffic for heavy complets drops from
O(state) to O(reference), that content keying gives `duplicate`
references copy-on-first-read behaviour, and that batching coalesces
one-way envelope storms into a few wire transfers.  Measured here under
the virtual clock (real clocks are forbidden — determinism is the whole
point of the bench baselines):

- transport bytes for a 1 MiB complet move, eager vs store-backed;
- resolve-cache hits when several holders duplicate one unchanged
  original;
- wire messages for a 64-envelope one-way storm, raw vs batched.
"""

from repro.cluster.cluster import Cluster
from repro.cluster.workload import DataSource, Echo
from repro.net import BatchPolicy, BatchingTransport, Envelope, MessageKind, SimTransport
from repro.sim.clock import VirtualClock, forbid_real_clocks
from repro.sim.scheduler import Scheduler
from benchmarks.conftest import print_table

PAYLOAD = 1_048_576  # 1 MiB: ×16 the default offload threshold


def _move_bytes(store) -> int:
    with forbid_real_clocks():
        cluster = Cluster(["a", "b"], store=store)
        try:
            source = DataSource(PAYLOAD, _core=cluster["a"])
            base = cluster.stats.bytes
            cluster.move(source, "b")
            return cluster.stats.bytes - base
        finally:
            cluster.close()


def test_move_offload_byte_ratio(benchmark):
    """A store-backed 1 MiB move ships ≥80% fewer transport bytes."""
    eager = _move_bytes(store=None)
    offloaded = _move_bytes(store="memory")
    print_table(
        "S1: 1 MiB move, transport bytes",
        ["mode", "bytes", "% of eager"],
        [
            ("eager", eager, 100.0),
            ("store", offloaded, round(100.0 * offloaded / eager, 3)),
        ],
    )
    assert offloaded < eager / 5
    benchmark(lambda: None)


def test_invoke_offload(benchmark):
    """Bulk invocation bodies offload in both directions."""
    with forbid_real_clocks():
        cluster = Cluster(["a", "b"], store="memory")
        try:
            echo = Echo("e", _core=cluster["a"])
            cluster.move(echo, "b")
            payload = "z" * (256 * 1024)
            base = cluster.stats.bytes
            assert echo.echo(payload) == payload
            shipped = cluster.stats.bytes - base
        finally:
            cluster.close()
    assert shipped < 2 * len(payload) / 5
    benchmark(lambda: None)


def test_copy_on_first_read(benchmark):
    """Holders duplicating one unchanged original share a resolve-cache line."""
    from repro.complet.relocators import Duplicate
    from repro.core.core import Core

    with forbid_real_clocks():
        cluster = Cluster(["a", "b", "c"], store="memory")
        try:
            original = DataSource(256 * 1024, _core=cluster["a"], _at="c")
            holders = []
            for i in range(4):
                holder = Echo(f"h{i}", _core=cluster["a"])
                anchor = cluster["a"].repository.get(holder._fargo_target_id)
                anchor.payload_ref = cluster.stub_at("a", original)
                Core.get_meta_ref(anchor.payload_ref).set_relocator(Duplicate())
                holders.append(holder)
            for holder in holders:
                cluster.move(holder, "b")
            hits = sum(
                view["client"]["cache_hits"]
                for view in cluster.store_snapshot()["cores"].values()
            )
        finally:
            cluster.close()
    assert hits >= 3, "second and later duplicates must hit the resolve cache"
    benchmark(lambda: None)


def test_batching_message_count(benchmark):
    """64 one-way envelopes coalesce into a handful of wire transfers."""
    with forbid_real_clocks():
        scheduler = Scheduler(VirtualClock())
        raw = SimTransport(scheduler)
        raw.register("a", lambda env: b"")
        raw.register("b", lambda env: b"")
        for _ in range(64):
            raw.post(
                Envelope(src="b", dst="a", kind=MessageKind.EVENT_NOTIFY, payload=b"e" * 96)
            )
        unbatched = raw.stats.messages

        batch_scheduler = Scheduler(VirtualClock())
        inner = SimTransport(batch_scheduler)
        transport = BatchingTransport(inner, BatchPolicy(max_messages=16, max_delay=0.005))
        delivered = []

        def _deliver(env):
            delivered.append(env)
            return b""

        transport.register("a", _deliver)
        transport.register("b", lambda env: b"")
        for _ in range(64):
            transport.post(
                Envelope(src="b", dst="a", kind=MessageKind.EVENT_NOTIFY, payload=b"e" * 96)
            )
        batch_scheduler.advance(0.1)
        batched = inner.stats.messages

    print_table(
        "S1: one-way storm, wire messages",
        ["mode", "wire msgs", "logical msgs"],
        [("raw", unbatched, 64), ("batched", batched, len(delivered))],
    )
    assert len(delivered) == 64, "batching must not lose messages"
    assert batched <= unbatched / 8
    benchmark(lambda: None)
