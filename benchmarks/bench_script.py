"""Experiment C8 (performance side) — the scripting surface's cost.

§4.3 positions scripts as the administrator's interface; for that to be
credible the engine must parse quickly and dispatch rule firings without
measurable drag on the event path.  Measured here:

- lexing/parsing throughput on the paper's script;
- rule-firing dispatch cost (event -> matched rule -> action);
- the overhead a registered-but-unmatched rule adds to event delivery.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.workload import Counter
from repro.script.interpreter import ScriptEngine
from repro.script.lexer import tokenize
from repro.script.parser import parse
from benchmarks.conftest import print_table

PAPER_SCRIPT = """\
$coreList = %1
$targetCore = %2
$comps = %3
on shutdown firedby $core
 listenAt $coreList do
  move completsIn $core to $targetCore
end
on methodInvokeRate(3)
  from $comps[0] to $comps[1] do
 move $comps[0] to coreOf $comps[1]
end
"""


def test_tokenize_paper_script(benchmark):
    benchmark(tokenize, PAPER_SCRIPT)


def test_parse_paper_script(benchmark):
    benchmark(parse, PAPER_SCRIPT)


def test_parse_large_script(benchmark):
    """A 100-rule script (a large deployment's policy file)."""
    source = "\n".join(
        f'on completArrived listenAt [core{i}] do log "rule{i}" end'
        for i in range(100)
    )
    script = benchmark(parse, source)
    assert len(script.rules) == 100


def test_rule_firing_dispatch(benchmark):
    """Cost of one event firing one rule with one log action."""
    cluster = Cluster(["a", "b"])
    engine = ScriptEngine(cluster, home="a")
    engine.run('on completArrived listenAt [a] do log "seen" end')
    counter = Counter(0, _core=cluster["a"])
    cluster.move(counter, "b")

    rule = engine.active_rules[0]
    from repro.core.events import Event

    event = Event("completArrived", "a", 0.0, {"complet": "x"})
    benchmark(engine._fire, rule.rule, rule, event)


def test_event_path_overhead_per_rule(benchmark):
    """Publishing cost as inactive rules accumulate (should be ~flat:
    subscriptions are name-filtered before any script machinery runs)."""
    rows = []
    for rules in (0, 10, 50):
        cluster = Cluster(["a", "b"])
        engine = ScriptEngine(cluster, home="a")
        for index in range(rules):
            engine.run(
                f'on referenceRetyped listenAt [a] do log "r{index}" end'
            )
        import time

        start = time.perf_counter()
        for _ in range(200):
            cluster["a"].events.publish("unrelatedEvent")
        elapsed = (time.perf_counter() - start) / 200 * 1e6
        rows.append((rules, round(elapsed, 2)))
    print_table(
        "C8: µs to publish an unmatched event vs registered rules",
        ["rules", "µs/publish"],
        rows,
    )
    cluster = Cluster(["a", "b"])
    benchmark(cluster["a"].events.publish, "unrelatedEvent")


def test_end_to_end_script_reaction(benchmark):
    """Full path: profiled threshold -> event -> rule -> move (one round)."""

    def setup():
        cluster = Cluster(["a", "b"])
        from repro.cluster.workload import Client, Server

        server = Server(_core=cluster["b"], _at="b")
        client = Client(server, _core=cluster["a"])
        engine = ScriptEngine(cluster, home="a")
        engine._globals.update({"c": client, "s": server})
        engine.run("on methodInvokeRate(2) from $c to $s do move $c to coreOf $s end")
        return (cluster, client), {}

    def drive(cluster, client):
        for _ in range(3):
            cluster.stub_at(cluster.locate(client), client).run(8)
            cluster.advance(1.0)

    benchmark.pedantic(drive, setup=setup, rounds=5)
