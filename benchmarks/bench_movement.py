"""Experiment C3 — group movement is a single stream.

§3.3: "all complets that should move as a result of the same movement
request are part of the same stream, thus only a single inter-Core
message is involved."  Measured here, for pull-group sizes N = 1..16:

- MOVE_COMPLET round trips for a group move (constant: 1 request) vs a
  naive per-complet sequence (N requests);
- payload bytes (scale with the group's closures, not with N overheads);
- the marshal/unmarshal wall time of movement itself.
"""

import pytest

from repro.complet.relocators import Duplicate, Pull
from repro.core.core import Core
from repro.cluster.cluster import Cluster
from repro.cluster.workload import Counter, DataSource
from repro.net.messages import MessageKind
from tests.anchors import Holder
from benchmarks.conftest import print_table


def _pull_group(size: int, payload: int = 512):
    """A head complet pulling ``size`` members, all at core a."""
    cluster = Cluster(["a", "b"])
    head = Holder(None, _core=cluster["a"])
    anchor = cluster["a"].repository.get(head._fargo_target_id)
    anchor.members = [DataSource(payload, _core=cluster["a"]) for _ in range(size)]
    for stub in anchor.members:
        Core.get_meta_ref(stub).set_relocator(Pull())
    return cluster, head, anchor.members


@pytest.mark.parametrize("size", [1, 4, 16])
def test_group_move_wall_time(benchmark, size):
    """Wall-clock cost of marshaling + moving a pull group of N complets."""

    def setup():
        cluster, head, _members = _pull_group(size)
        return (cluster, head), {}

    def move(cluster, head):
        cluster.move(head, "b")

    benchmark.pedantic(move, setup=setup, rounds=10)


def test_group_vs_individual_messages(benchmark):
    """The headline C3 series: messages and bytes, group vs one-by-one."""
    rows = []
    for size in (1, 2, 4, 8, 16):
        # Group move: one MOVE_COMPLET request whatever the size.
        cluster, head, members = _pull_group(size)
        cluster.reset_stats()
        cluster.move(head, "b")
        group_requests = cluster.stats.by_kind[MessageKind.MOVE_COMPLET] // 2
        group_bytes = cluster.stats.bytes

        # Naive: move the same population complet by complet.
        naive = Cluster(["a", "b"])
        head2 = Holder(None, _core=naive["a"])
        singles = [DataSource(512, _core=naive["a"]) for _ in range(size)]
        naive.reset_stats()
        naive.move(head2, "b")
        for stub in singles:
            naive.move(stub, "b")
        naive_requests = naive.stats.by_kind[MessageKind.MOVE_COMPLET] // 2
        naive_bytes = naive.stats.bytes

        rows.append((size, group_requests, naive_requests, group_bytes, naive_bytes))
        assert group_requests == 1
        assert naive_requests == size + 1
    print_table(
        "C3: pull-group move vs per-complet moves",
        ["group N", "grp reqs", "naive reqs", "grp bytes", "naive bytes"],
        rows,
    )
    cluster, head, _ = _pull_group(4)
    benchmark(lambda: None)


def test_bytes_scale_with_closure_not_group_count(benchmark):
    """Group framing overhead is small: bytes track payload sizes."""
    rows = []
    for payload in (256, 4_096, 65_536):
        cluster, head, _members = _pull_group(4, payload=payload)
        cluster.reset_stats()
        cluster.move(head, "b")
        rows.append((payload, cluster.stats.bytes))
    print_table(
        "C3: group-move bytes vs member closure size (N=4)",
        ["member B", "total bytes"],
        rows,
    )
    assert rows[-1][1] > rows[0][1] * 10
    benchmark(lambda: None)


@pytest.mark.parametrize("relocator_name", ["pull", "duplicate"])
def test_group_semantics_move_cost(benchmark, relocator_name):
    """Pull carries the original; duplicate carries a copy (same stream)."""
    relocator_cls = {"pull": Pull, "duplicate": Duplicate}[relocator_name]

    def setup():
        cluster = Cluster(["a", "b"])
        source = DataSource(8_192, _core=cluster["a"])
        head = Holder(source, _core=cluster["a"])
        anchor = cluster["a"].repository.get(head._fargo_target_id)
        Core.get_meta_ref(anchor.ref).set_relocator(relocator_cls())
        return (cluster, head), {}

    def move(cluster, head):
        cluster.move(head, "b")

    benchmark.pedantic(move, setup=setup, rounds=10)


def test_single_complet_move_cost(benchmark):
    """Baseline: moving one small complet back and forth."""
    cluster = Cluster(["a", "b"])
    counter = Counter(0, _core=cluster["a"])
    state = {"at_b": False}

    def bounce():
        destination = "a" if state["at_b"] else "b"
        cluster.move(counter, destination)
        state["at_b"] = not state["at_b"]

    benchmark(bounce)
