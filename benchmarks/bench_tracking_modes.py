"""Ablation — tracker chains vs the location registry (§7 future work).

The paper keeps chains and names the location-independent naming scheme
as future work.  Both are implemented here, so the trade-off the authors
anticipated can be measured:

- resolution cost after k hops: chain walk (O(k) messages, then
  shortened) vs home query (O(1) messages, always);
- maintenance cost: the registry pays one extra LOCATION_UPDATE per
  move;
- resilience: with the registry, references survive the death of
  intermediate Cores on the migration path.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.workload import Counter
from repro.net.messages import MessageKind
from repro.sim.clock import forbid_real_clocks
from benchmarks.conftest import print_table

CORE_NAMES = [f"c{i}" for i in range(10)]


def _wandered(hops: int, *, registry: bool):
    cluster = Cluster(CORE_NAMES[: hops + 2], use_location_registry=registry)
    counter = Counter(0, _core=cluster["c0"])
    for i in range(1, hops + 1):
        cluster.move_via_host(counter, f"c{i}")
    # The observer holds a reference wired to the last Core (not the
    # home, not on the path), pointing at the *first* hop — stale.
    observer = cluster.core(CORE_NAMES[hops + 1])
    from repro.complet.relocators import Link
    from repro.complet.tokens import RefToken

    token = RefToken(
        counter._fargo_target_id,
        counter._fargo_tracker.anchor_ref,
        counter._fargo_tracker.address,  # points at c0's tracker: stale
        Link(),
    )
    stale_ref = observer.references.materialize(token)
    return cluster, counter, stale_ref


@pytest.mark.parametrize("registry", [False, True], ids=["chains", "registry"])
def test_stale_resolution_wall_time(benchmark, registry):
    """Wall-clock cost of the first invocation through a stale reference."""

    def setup():
        cluster, _counter, stale_ref = _wandered(6, registry=registry)
        return (stale_ref,), {}

    benchmark.pedantic(lambda ref: ref.increment(), setup=setup, rounds=10)


def test_resolution_message_series(benchmark):
    """Messages to resolve a stale reference after k hops, both modes."""
    rows = []
    with forbid_real_clocks():
        _measure_resolution_series(rows)
    print_table(
        "tracking ablation: messages to use a stale reference",
        ["hops", "chain msgs", "registry msgs"],
        rows,
    )
    benchmark(lambda: None)


def _measure_resolution_series(rows):
    for hops in (2, 4, 8):
        chain_cluster, _c, chain_ref = _wandered(hops, registry=False)
        chain_cluster.reset_stats()
        chain_ref.increment()
        # With forwarder-side collapse, the stale-chain walk happens via
        # cheap TRACKER_LOOKUP messages; the payload itself goes direct.
        chain_msgs = (
            chain_cluster.stats.by_kind[MessageKind.INVOKE]
            + chain_cluster.stats.by_kind[MessageKind.TRACKER_LOOKUP]
        )

        reg_cluster, _c, reg_ref = _wandered(hops, registry=True)
        reg_cluster.reset_stats()
        # Resolve via the registry first (locate), then invoke directly.
        reg_cluster.core(reg_ref._fargo_core.name)  # observer core
        reg_ref._fargo_core.references.locate(reg_ref._fargo_tracker)
        reg_ref.increment()
        reg_queries = reg_cluster.stats.by_kind[MessageKind.LOCATION_QUERY]
        reg_invokes = reg_cluster.stats.by_kind[MessageKind.INVOKE]
        rows.append((hops, chain_msgs, reg_queries + reg_invokes))
        assert reg_queries + reg_invokes <= 4  # query + direct invoke
        assert chain_msgs >= 2 * hops  # walks the whole stale chain


def test_maintenance_cost_per_move(benchmark):
    """The registry's price: one extra one-way message per arrival."""
    rows = []
    with forbid_real_clocks():
        _measure_maintenance(rows)
    print_table(
        "tracking ablation: messages per move",
        ["mode", "total msgs", "location updates"],
        rows,
    )
    benchmark(lambda: None)


def _measure_maintenance(rows):
    for registry in (False, True):
        cluster = Cluster(["a", "b", "c"], use_location_registry=registry)
        counter = Counter(0, _core=cluster["a"])
        cluster.move(counter, "b")
        cluster.reset_stats()
        cluster.move_via_host(counter, "c")
        updates = cluster.stats.by_kind[MessageKind.LOCATION_UPDATE]
        total = cluster.stats.messages
        rows.append(("registry" if registry else "chains", total, updates))
    assert rows[1][2] == rows[0][2] + 1


def test_resilience_to_path_death(benchmark):
    """References survive a dead intermediate Core only with the registry."""
    from repro.errors import CoreDownError

    outcomes = []
    with forbid_real_clocks():
        for registry in (False, True):
            cluster = Cluster(["a", "b", "c"], use_location_registry=registry)
            counter = Counter(0, _core=cluster["a"])
            cluster.move_via_host(counter, "b")
            cluster.move_via_host(counter, "c")
            cluster.network.set_node_down("b")
            try:
                counter.increment()
                outcomes.append(("registry" if registry else "chains", "survives"))
            except CoreDownError:
                outcomes.append(("registry" if registry else "chains", "breaks"))
    print_table(
        "tracking ablation: dead Core on the migration path",
        ["mode", "reference"],
        outcomes,
    )
    assert outcomes == [("chains", "breaks"), ("registry", "survives")]
    benchmark(lambda: None)


def test_pointer_update_ablation(benchmark):
    """Eager pointer bookkeeping: GC accuracy vs message overhead."""
    rows = []
    with forbid_real_clocks():
        for eager in (True, False):
            cluster = Cluster(["a", "b", "c", "d"], eager_pointer_updates=eager)
            counter = Counter(0, _core=cluster["a"])
            for destination in ("b", "c", "d"):
                cluster.move_via_host(counter, destination)
            cluster.reset_stats()
            counter.increment()
            housekeeping = cluster.stats.by_kind[MessageKind.TRACKER_UPDATE]
            collected = cluster.collect_all_trackers()
            rows.append(
                ("eager" if eager else "lazy", housekeeping, collected)
            )
    print_table(
        "pointer-update ablation: shorten housekeeping vs GC yield",
        ["mode", "update msgs", "trackers GC'd"],
        rows,
    )
    eager_row, lazy_row = rows
    assert eager_row[1] > lazy_row[1]      # eager pays messages ...
    assert eager_row[2] >= lazy_row[2]     # ... and collects at least as much
    benchmark(lambda: None)
