"""Experiment R1 — failure detection latency and recovery cost.

The recovery stack's two time budgets, measured on the virtual clock
and on the wall clock:

- *detection latency*: virtual seconds from a Core's crash to the first
  surviving detector publishing ``coreFailed`` — bounded by
  ``fail_after`` plus one heartbeat interval;
- *recovery time*: the wall cost of one :meth:`RecoveryManager.
  recover_core` pass as the checkpointed state grows (the pass is
  dominated by deserializing the stored snapshots);
- *checkpoint cost*: the wall cost of a full checkpoint pass vs the
  protected complets' payload size, with the bytes the store holds.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.failures import FailureInjector
from repro.cluster.workload import DataSource
from repro.core.events import CORE_FAILED
from repro.recovery import CheckpointPolicy, DetectorConfig
from repro.sim.clock import forbid_real_clocks
from benchmarks.conftest import print_table


def _recovery_cluster(config=None):
    cluster = Cluster(["a", "b", "c"])
    cluster.enable_recovery(detector=config, auto_recover=False)
    return cluster


def test_detection_latency(benchmark):
    """Virtual crash-to-verdict latency across detector configurations."""
    rows = []
    # The latencies reported here are virtual-clock quantities; the ban
    # guarantees no wall clock can leak into them.
    with forbid_real_clocks():
        for interval, fail_after in ((0.2, 0.6), (0.5, 1.5), (0.5, 3.0), (1.0, 5.0)):
            config = DetectorConfig(
                interval=interval, suspect_after=fail_after / 2, fail_after=fail_after
            )
            cluster = _recovery_cluster(config)
            verdicts = []
            cluster["b"].events.subscribe(
                CORE_FAILED, lambda event: verdicts.append(cluster.now)
            )
            crash_at = 2.0
            FailureInjector(cluster).crash_core_at(crash_at, "a")
            cluster.advance(crash_at + fail_after + 2 * interval + 0.1)
            assert verdicts, "no coreFailed verdict within the bound"
            latency = verdicts[0] - crash_at
            assert latency <= fail_after + interval + 1e-9
            rows.append((interval, fail_after, round(latency, 3)))
    print_table(
        "R1: detection latency vs detector config (virtual s)",
        ["interval", "fail_after", "latency"],
        rows,
    )
    benchmark(lambda: None)


@pytest.mark.parametrize("payload", [256, 4_096, 65_536])
def test_recovery_pass_cost(benchmark, payload):
    """Wall cost of recover_core as checkpointed state grows."""

    def setup():
        cluster = _recovery_cluster()
        for _ in range(4):
            source = DataSource(payload, _core=cluster["a"], _at="a")
            cluster.checkpoints.protect(source)
        cluster.network.set_node_down("a")
        return (cluster,), {}

    def recover(cluster):
        cluster.recovery.recover_core("a")

    benchmark.pedantic(recover, setup=setup, rounds=10)


def test_checkpoint_pass_cost(benchmark):
    """Wall cost and stored bytes of a full checkpoint pass."""
    rows = []
    with forbid_real_clocks():  # stored-bytes figures must be wall-free
        for payload in (256, 4_096, 65_536):
            cluster = _recovery_cluster()
            for _ in range(8):
                DataSource(payload, _core=cluster["a"], _at="a")
            for anchor_id in list(cluster["a"].repository.complet_ids()):
                cluster.checkpoints.protect(anchor_id, CheckpointPolicy())
            stored = sum(
                len(cluster.checkpoints.store.get(complet_id).data)
                for complet_id in cluster.checkpoints.store.ids()
            )
            rows.append((payload, len(cluster.checkpoints.store), stored))
    print_table(
        "R1: checkpoint store vs payload size (8 complets)",
        ["payload B", "records", "stored B"],
        rows,
    )

    cluster = _recovery_cluster()
    for _ in range(8):
        DataSource(4_096, _core=cluster["a"], _at="a")
    for anchor_id in list(cluster["a"].repository.complet_ids()):
        cluster.checkpoints.protect(anchor_id, CheckpointPolicy())
    benchmark(cluster.checkpoints.checkpoint_all)
