"""Experiment C2/F2 — tracker chains and their shortening.

Figure 2 draws a complet that hopped Core1 -> Core2 -> Core3 -> Core4,
leaving a chain of forwarding trackers; §3.1 states that "while
returning from each invocation, all the trackers in the chain are set
to point directly to the target's location, and all trackers that are
not pointed at all after shortening become available for garbage
collection."

Measured here, for chain lengths k = 1..8:

- simulated network time of the *first* invocation (walks k hops) vs the
  *second* (direct after shortening);
- INVOKE messages for each;
- trackers collected by GC after shortening.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.workload import Counter
from repro.net.messages import MessageKind
from benchmarks.conftest import print_table

CORE_NAMES = [f"c{i}" for i in range(10)]


def _chained(hops: int):
    """A counter that hopped ``hops`` times; the caller stub sits at c0."""
    cluster = Cluster(CORE_NAMES[: hops + 1])
    counter = Counter(0, _core=cluster["c0"])
    for i in range(1, hops + 1):
        cluster.move_via_host(counter, f"c{i}")
    return cluster, counter


@pytest.mark.parametrize("hops", [1, 4, 8])
def test_first_invocation_walks_chain(benchmark, hops):
    """Wall-clock cost of chain-walking invocations (fresh chain each round)."""

    def setup():
        cluster, counter = _chained(hops)
        return (counter,), {}

    def first_call(counter):
        counter.increment()

    benchmark.pedantic(first_call, setup=setup, rounds=20)


@pytest.mark.parametrize("hops", [1, 4, 8])
def test_shortened_invocation_is_flat(benchmark, hops):
    """After one call, cost no longer depends on the itinerary length."""
    cluster, counter = _chained(hops)
    counter.increment()  # shorten
    benchmark(counter.increment)


def test_chain_series_summary(benchmark):
    """The C2 series: hops vs simulated time and messages, before/after."""
    rows = []
    for hops in range(1, 9):
        cluster, counter = _chained(hops)
        invokes_0 = cluster.stats.by_kind[MessageKind.INVOKE]
        t0 = cluster.now
        counter.increment()  # walks the chain, shortens on return
        first_time = cluster.now - t0
        first_msgs = cluster.stats.by_kind[MessageKind.INVOKE] - invokes_0

        invokes_1 = cluster.stats.by_kind[MessageKind.INVOKE]
        t1 = cluster.now
        counter.increment()  # direct
        second_time = cluster.now - t1
        second_msgs = cluster.stats.by_kind[MessageKind.INVOKE] - invokes_1

        collected = cluster.collect_all_trackers()
        rows.append(
            (
                hops,
                round(first_time, 4),
                first_msgs,
                round(second_time, 4),
                second_msgs,
                collected,
            )
        )
    print_table(
        "C2: tracker chains — first call walks, second call is direct",
        ["hops", "1st sim s", "1st msgs", "2nd sim s", "2nd msgs", "GC'd trackers"],
        rows,
    )
    # Shape assertions: first-call cost grows with the chain; second-call
    # cost is flat (single hop); shortening frees ~(hops-1) trackers.
    first_times = [row[1] for row in rows]
    second_msgs = {row[4] for row in rows}
    assert first_times == sorted(first_times)
    assert first_times[-1] > 3 * first_times[0]
    assert second_msgs == {2}  # one request + one reply, any history
    assert all(row[5] >= row[0] - 1 for row in rows)
    cluster, counter = _chained(4)
    counter.increment()
    benchmark(counter.increment)


def test_shortening_affects_every_tracker_on_path(benchmark):
    """All chain members point directly at the target after one call."""
    cluster, counter = _chained(6)
    counter.increment()
    host = cluster.locate(counter)
    on_path = 0
    for core in cluster:
        tracker = core.repository.existing_tracker(counter._fargo_target_id)
        if tracker is not None and tracker.is_forwarding:
            assert tracker.next_hop.core == host
            on_path += 1
    assert on_path >= 1
    benchmark(counter.increment)


def test_locate_also_shortens(benchmark):
    """Reflection (getTargetLocation) rides the same shortening machinery."""
    cluster, counter = _chained(5)
    from repro.core.core import Core

    meta = Core.get_meta_ref(counter)
    assert meta.get_target_location() == "c5"
    benchmark(meta.get_target_location)
