"""Layout effects on a processing pipeline.

A three-stage pipeline (`repro.cluster.workload.Stage`) forwards each
item through two complet references.  Where the stages sit determines
how many times each item crosses the WAN — the textbook demonstration of
why layout matters, and of ``pull`` as the tool for keeping a pipeline
together when its head moves.

Series: end-to-end item latency for the three canonical placements
(all colocated / spread over three Cores / head remote from a colocated
tail) and the cost of re-colocating a spread pipeline with pulls.
"""

import pytest

from repro.complet.relocators import Pull
from repro.core.core import Core
from repro.cluster.cluster import Cluster
from repro.cluster.workload import Stage
from benchmarks.conftest import print_table


def _pipeline(cluster, homes):
    last = Stage(None, cost_bytes=256, _core=cluster[homes[2]], _at=homes[2])
    middle = Stage(last, cost_bytes=256, _core=cluster[homes[1]], _at=homes[1])
    first = Stage(middle, cost_bytes=256, _core=cluster[homes[0]], _at=homes[0])
    return first, middle, last


def _latency(cluster, first, item=b"x" * 512) -> float:
    t0 = cluster.now
    first.process(item)
    return cluster.now - t0


def test_placement_latency_series(benchmark):
    rows = []
    for label, homes in (
        ("colocated", ["a", "a", "a"]),
        ("spread", ["a", "b", "c"]),
        ("head-remote", ["a", "c", "c"]),
    ):
        cluster = Cluster(["a", "b", "c"], bandwidth=250_000.0, latency=0.02)
        first, _middle, _last = _pipeline(cluster, homes)
        driver = cluster.stub_at(homes[0], first)
        rows.append((label, round(_latency(cluster, driver), 4)))
    print_table(
        "pipeline: end-to-end item latency by placement (250 KB/s links)",
        ["placement", "latency s"],
        rows,
    )
    latencies = dict(rows)
    assert latencies["colocated"] < latencies["head-remote"] < latencies["spread"]
    benchmark(lambda: None)


def test_pull_recolocates_whole_pipeline(benchmark):
    """Retype the two internal references to pull, move the head once:
    the entire pipeline lands on one Core and latency collapses."""
    cluster = Cluster(["a", "b", "c"], bandwidth=250_000.0, latency=0.02)
    first, middle, last = _pipeline(cluster, ["a", "b", "c"])
    spread_latency = _latency(cluster, first)

    for holder, attr in ((first, "successor"), (middle, "successor")):
        host = cluster.core(cluster.locate(holder))
        anchor = host.repository.get(holder._fargo_target_id)
        Core.get_meta_ref(anchor.successor).set_relocator(Pull())
    cluster.move(first, "c")
    for stage in (first, middle, last):
        assert cluster.locate(stage) == "c"
    colocated = cluster.stub_at("c", first)
    colocated_latency = _latency(cluster, colocated)

    print_table(
        "pipeline: pull-driven re-colocation",
        ["spread latency s", "colocated latency s"],
        [(round(spread_latency, 4), round(colocated_latency, 4))],
    )
    assert colocated_latency < spread_latency / 5
    benchmark(colocated.process, b"y" * 512)


@pytest.mark.parametrize("stages", [2, 4, 8])
def test_latency_scales_with_remote_stages(benchmark, stages):
    """Wall time of one item through an N-stage spread pipeline."""
    names = [f"n{i}" for i in range(stages)]
    cluster = Cluster(names)
    tail = Stage(None, _core=cluster[names[-1]], _at=names[-1])
    head = tail
    for name in reversed(names[:-1]):
        head = Stage(head, _core=cluster[name], _at=name)
    driver = cluster.stub_at(names[0], head)
    benchmark(driver.process, b"x" * 128)
