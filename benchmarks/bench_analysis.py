"""Static-analyzer throughput.

The analyzer gates CI and backs the shell's ``lint``, so it has to be
fast enough to run on every script and complet source in the tree
without being the slow step.  Measured here:

- script checking on the largest example script (the §4.3 paper script);
- script checking on a synthetic 500-rule policy file;
- complet (movability) checking on a real app module;
- the live cluster pass behind ``Cluster.analyze()``.
"""

from pathlib import Path

from repro.analysis import TopologyInfo, check_complet_source, check_script
from repro.cluster.cluster import Cluster
from repro.cluster.workload import DataSource, Worker

REPO = Path(__file__).resolve().parent.parent

#: The §4.3 script — the largest script the examples deploy.
PAPER_SCRIPT = """\
$coreList = %1
$targetCore = %2
$comps = %3
on shutdown firedby $core
 listenAt $coreList do
  move completsIn $core to $targetCore
end
on methodInvokeRate(3)
  from $comps[0] to $comps[1] do
 move $comps[0] to coreOf $comps[1]
end
"""

#: A synthetic policy the size of a large deployment's rule file.  The
#: moves fan out to dedicated sink Cores nothing listens on, so the
#: rule graph is large but acyclic (a real policy, not a move storm).
LARGE_SCRIPT = "\n".join(
    f'on completArrived listenAt [core{i}] do move c{i} to "sink{i}" end'
    for i in range(500)
)

TOPOLOGY = TopologyInfo(
    cores=frozenset(f"core{i}" for i in range(500))
    | frozenset(f"sink{i}" for i in range(500)),
    complets=frozenset(f"c{i}" for i in range(500)),
)


def test_check_paper_script(benchmark):
    diagnostics = benchmark(check_script, PAPER_SCRIPT)
    assert diagnostics == []


def test_check_500_rule_script(benchmark):
    """Whole-script checks (duplicates, cycles) must stay near-linear."""
    diagnostics = benchmark(check_script, LARGE_SCRIPT)
    assert diagnostics == []


def test_check_500_rule_script_with_topology(benchmark):
    """Identifier resolution adds set lookups per literal, little more."""
    diagnostics = benchmark(check_script, LARGE_SCRIPT, topology=TOPOLOGY)
    assert diagnostics == []


def test_check_complet_source_app_module(benchmark):
    source = (REPO / "src" / "repro" / "cluster" / "workload.py").read_text()
    diagnostics = benchmark(check_complet_source, source)
    assert diagnostics == []


def test_cluster_analyze_live(benchmark):
    cluster = Cluster(["a", "b"])
    source = DataSource(_core=cluster["a"], _at="a")
    Worker(source, _core=cluster["a"], _at="a")
    diagnostics = benchmark(cluster.analyze)
    assert diagnostics == []
