"""Replication through ``duplicate`` references: an edge-cached catalog.

§2: a duplicate reference "is useful when replication can be used (e.g.,
for read-only data sources), without violating the logical semantics of
the application."  The catalog app (`repro.apps.catalog`) holds the
master behind a ``link`` and the read path behind an independent
``duplicate`` reference — so deploying a client to an edge Core
automatically ships a private snapshot along, and every subsequent read
is local.

Run:  python examples/replicated_catalog.py
"""

from repro import Cluster, configure_star
from repro.apps.catalog import CatalogClient, CatalogFleet


def main() -> None:
    cluster = Cluster(["hub", "edge-eu", "edge-us", "edge-ap"])
    configure_star(cluster, "hub", spoke_bandwidth=200_000.0, spoke_latency=0.08)

    fleet = CatalogFleet(cluster, "hub", ["edge-eu", "edge-us", "edge-ap"])
    for index in range(50):
        fleet.publish(f"product:{index}", {"name": f"item-{index}", "stock": index})
    delta = fleet.refresh_all()
    print(f"published 50 entries; replicated {delta} versions to 3 edges")

    # Hot reads are served locally at every edge:
    cluster.reset_stats()
    for edge, client in zip(("edge-eu", "edge-us", "edge-ap"), fleet.clients):
        handle = cluster.stub_at(cluster.locate(client), client)
        for index in range(100):
            handle.lookup(f"product:{index % 50}")
    print(
        f"300 edge reads: {cluster.stats.messages} network messages, "
        f"{cluster.stats.seconds:.3f} simulated seconds"
    )

    # Contrast: the same reads straight against the hub master.
    remote = CatalogClient(fleet.master, _core=cluster["edge-eu"], _at="edge-eu")
    cluster.reset_stats()
    for index in range(300):
        remote.lookup(f"product:{index % 50}")
    print(
        f"300 remote reads: {cluster.stats.messages} network messages, "
        f"{cluster.stats.seconds:.3f} simulated seconds"
    )

    # Staleness is observable and repairable over the master link:
    fleet.publish("product:new", {"name": "latest"})
    client = cluster.stub_at("edge-eu", fleet.clients[0])
    print(f"edge-eu staleness after a new publish: {client.staleness()} version(s)")
    client.refresh()
    print(f"after refresh: {client.lookup('product:new')}")


if __name__ == "__main__":
    main()
