"""Fault-tolerant movement: aborts, scripted retries, and RPC retry policies.

A move that hits a network failure never half-completes: the abortable
two-phase protocol runs ``abort_departure``, keeps the group hosted at
the sender, and publishes a ``moveFailed`` event.  This example shows the
two ways an administrator turns that guarantee into self-healing layout:

1. a *script rule* (``on moveFailed do call retryMove(...) end``) that
   re-issues the failed move after a delay — long enough for the injected
   outage to heal;
2. a cluster-wide :class:`~repro.net.retry.RetryPolicy` whose exponential
   backoff sweeps virtual time forward, so a *single* ``move`` call rides
   through a transient outage without ever surfacing the failure.

Run:  python examples/fault_tolerance.py
"""

from repro import Cluster
from repro.cluster.failures import FailureInjector
from repro.cluster.workload import Counter
from repro.core.events import CALL_RETRIED, MOVE_FAILED
from repro.errors import CoreUnreachableError
from repro.net.retry import RetryPolicy
from repro.script import ScriptEngine

RETRY_SCRIPT = """\
on moveFailed do
  call retryMove(6)
end
"""


def scripted_retry() -> None:
    print("=== scenario 1: moveFailed + scripted retry ===")
    cluster = Cluster(["a", "b"])
    engine = ScriptEngine(cluster, home="a")
    engine.run(RETRY_SCRIPT)
    cluster["a"].events.subscribe(MOVE_FAILED, lambda e: print(f"  event: {e}"))

    inject = FailureInjector(cluster)
    inject.outage_at(1.0, "a", "b", 5.0)  # link down from t=1 to t=6

    counter = Counter(10, _core=cluster["a"])
    cluster.advance(2.0)  # into the outage

    print(f"t={cluster.now:.1f}: moving counter a -> b into a cut link ...")
    try:
        cluster.move(counter, "b")
    except CoreUnreachableError as exc:
        print(f"  move aborted cleanly: {exc}")
    print(f"  counter still at {cluster.locate(counter)}, "
          f"value intact: {counter.read()}")

    cluster.advance(6.0)  # heal at t=6, scheduled retry at t=8
    print(f"t={cluster.now:.1f}: after heal, counter is at "
          f"{cluster.locate(counter)}")
    for line in engine.log:
        print(f"  script log: {line}")


def policy_retry() -> None:
    print("\n=== scenario 2: cluster-wide RetryPolicy ===")
    cluster = Cluster(
        ["a", "b"],
        retry_policy=RetryPolicy(max_attempts=4, base_delay=0.5, multiplier=2.0),
    )
    cluster["a"].events.subscribe(
        CALL_RETRIED,
        lambda e: print(f"  retrying {e.data['kind']} -> {e.data['destination']} "
                        f"(attempt {e.data['attempt']}, backoff {e.data['delay']}s)"),
    )
    inject = FailureInjector(cluster)
    counter = Counter(99, _core=cluster["a"])
    cluster.set_link("a", "b", up=False)
    inject.restore_link_at(1.2, "a", "b")  # heals during the third backoff

    print("moving counter a -> b through a transient outage ...")
    cluster.move(counter, "b")  # no exception: the backoff outlives the outage
    print(f"  moved on attempt {cluster['a'].movement.moves_sent}; counter at "
          f"{cluster.locate(counter)}, value {counter.read()}, "
          f"aborts: {cluster['a'].movement.moves_aborted}")


def main() -> None:
    scripted_retry()
    policy_retry()


if __name__ == "__main__":
    main()
