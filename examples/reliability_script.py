"""The §4.3 example script, deployed by an administrator.

Runs the paper's two-rule script verbatim against a live deployment:

- the *reliability* rule evacuates every complet from any Core (in the
  watched list) that announces shutdown, into a safe Core;
- the *performance* rule colocates a chatty client with its server once
  the invocation rate between them exceeds 3 calls/second.

Scripts are the third relocation-programming surface (besides the API
and the graphical monitor): they attach to a *running* application,
"possibly after the application has been deployed".

Run:  python examples/reliability_script.py
"""

from repro import Cluster
from repro.cluster.workload import Client, Echo, Server
from repro.script import ScriptEngine
from repro.viewer import LayoutMonitor

PAPER_SCRIPT = """\
$coreList = %1
$targetCore = %2
$comps = %3
on shutdown firedby $core
 listenAt $coreList do
  move completsIn $core to $targetCore
end
on methodInvokeRate(3)
  from $comps[0] to $comps[1] do
 move $comps[0] to coreOf $comps[1]
end
"""


def main() -> None:
    cluster = Cluster(["c1", "c2", "safe"])
    monitor = LayoutMonitor(cluster, home="safe")
    monitor.watch_all()

    # The deployed application: a chatty client/server pair plus bystanders.
    server = Server(_core=cluster["c2"], _at="c2")
    client = Client(server, _core=cluster["c1"])
    Echo("bystander-1", _core=cluster["c1"], _at="c1")
    Echo("bystander-2", _core=cluster["c1"], _at="c1")

    # The administrator attaches the paper's script after deployment.
    engine = ScriptEngine(cluster, home="safe")
    engine.run(PAPER_SCRIPT, args=(["c1", "c2"], "safe", [client, server]))
    print("script attached; initial layout:")
    print(monitor.render())

    # Drive a high invocation rate: the performance rule colocates.
    print("\ndriving 15 calls/second from client to server ...")
    for _ in range(4):
        fresh = cluster.stub_at(cluster.locate(client), client)
        fresh.run(15)
        cluster.advance(1.0)
    print(f"client is now at: {cluster.locate(client)} (performance rule)")

    # Take c2 down: the reliability rule evacuates everything to safe.
    print("\nshutting down c2 ...")
    cluster.shutdown_core("c2")
    print(monitor.render())
    print("\nevent feed:")
    print(monitor.render_feed(limit=8))

    rescued = cluster.stub_at("safe", client)
    print(f"\nrescued client still works: ran {rescued.run(1)} requests total")


if __name__ == "__main__":
    main()
