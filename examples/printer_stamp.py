"""The paper's stamp example: a mobile desktop reconnecting to local printers.

§2 motivates the ``stamp`` reference type with a hardware device: "if the
target complet encapsulates a hardware device such as a printer, a source
complet (e.g., a mobile desktop complet) could use a stamp reference in
order to reconnect to a local printer (complet) after it arrives at a new
location."  This example builds three sites, each with its own printer
complet, and moves a desktop between them; every report prints on the
printer of whatever site the desktop is currently at.

It also demonstrates the ``Stamp(fallback="link")`` extension: moving to
a site *without* a printer keeps a link back to the last one instead of
failing.

Run:  python examples/printer_stamp.py
"""

from repro import Cluster, Core, Stamp
from repro.errors import StampResolutionError
from repro.cluster.workload import Desktop, Printer


def main() -> None:
    cluster = Cluster(["office", "lab", "home", "cafe"])

    # Site-bound device complets: one printer per equipped site.
    office_printer = Printer("office-laser", _core=cluster["office"])
    Printer("lab-plotter", _core=cluster["lab"], _at="lab")
    Printer("home-inkjet", _core=cluster["home"], _at="home")
    # (the cafe has no printer)

    desktop = Desktop(office_printer, _core=cluster["office"])

    # Make the desktop's printer reference a stamp reference (§3.2 idiom).
    anchor = cluster["office"].repository.get(desktop._fargo_target_id)
    Core.get_meta_ref(anchor.printer).set_relocator(Stamp())

    for site in ("office", "lab", "home"):
        cluster.move(desktop, site)
        print(desktop.print_report(f"expense report, filed from {site}"))

    # Moving somewhere printerless with a strict stamp aborts the move:
    try:
        cluster.move(desktop, "cafe")
    except StampResolutionError as exc:
        print(f"strict stamp refused the cafe: {exc}")
    print(f"desktop stayed at: {cluster.locate(desktop)}")

    # The fallback="link" extension keeps the previous printer instead:
    anchor = cluster[cluster.locate(desktop)].repository.get(desktop._fargo_target_id)
    Core.get_meta_ref(anchor.printer).set_relocator(Stamp(fallback="link"))
    cluster.move(desktop, "cafe")
    print(f"with fallback, desktop moved to: {cluster.locate(desktop)}")
    print(desktop.print_report("printed remotely, back at home"))


if __name__ == "__main__":
    main()
