"""Quickstart: the paper's Figure 3, line for line.

Defines a ``Message`` complet, instantiates it with plain constructor
syntax on one Core, moves it to another, and invokes it — demonstrating
that the programming model stays "very similar to plain Java" (here:
plain Python) while the complet migrates underneath.

Run:  python examples/quickstart.py
"""

from repro import Anchor, Carrier, Cluster, Core, compile_complet


class Message_(Anchor):
    """The anchor class of Figure 3 (note the underscore convention)."""

    def __init__(self, msg: str) -> None:
        self.msg = msg

    def print_message(self) -> str:
        return self.msg


# The "FarGo Compiler": generates the stub class `Message` from `Message_`.
Message = compile_complet(Message_)


def main() -> None:
    # Two stationary Cores joined by a simulated 1 MB/s, 10 ms link.
    cluster = Cluster(["technion", "acadia"])

    # Message msg = new Message("Hello World");
    msg = Message("Hello World", _core=cluster["technion"])
    print(f"instantiated: {msg!r}")
    print(f"located at:   {cluster.locate(msg)}")

    # Carrier.move(msg, "acadia");
    Carrier.move(msg, "acadia")
    print(f"after move:   {cluster.locate(msg)}")

    # msg.print(); — same syntax before and after the move.
    print(f"invocation:   {msg.print_message()!r}")

    # Reflection on the reference (§3.2): the meta reference.
    meta = Core.get_meta_ref(msg)
    print(
        f"reference:    type={meta.type_name}, target={meta.get_target_id()}, "
        f"location={meta.get_target_location()}, "
        f"invocations={meta.invocation_count}"
    )

    stats = cluster.stats
    print(
        f"network:      {stats.messages} messages, {stats.bytes} bytes, "
        f"{stats.seconds:.4f} simulated seconds"
    )


if __name__ == "__main__":
    main()
