"""Scripted failover: a layout rule that recovers a crashed Core.

The recovery stack in three layers, driven entirely by a layout script:

- a :class:`~repro.recovery.FailureDetector` on every Core heartbeats
  its peers and publishes ``coreSuspected`` / ``coreFailed`` verdicts;
- a :class:`~repro.recovery.CheckpointManager` keeps the protected
  complets' latest state in the cluster checkpoint store;
- the script's ``on coreFailed`` rule calls the ``failover`` action,
  which restores the dead Core's checkpointed complets on a survivor
  (automatic recovery is switched *off* — the administrator's script is
  the policy here, exactly like the paper's §4.3 reliability rule).

The script is verified with the static analyzer before it is attached:
``failover()`` without arguments only type-checks inside an
``on coreFailed`` rule (FG111).

Run:  python examples/core_failover.py
"""

from repro import Cluster
from repro.analysis import check_script, render_text
from repro.cluster.failures import FailureInjector
from repro.cluster.workload import Counter
from repro.recovery import CheckpointPolicy, DetectorConfig
from repro.script import ScriptEngine

FAILOVER_SCRIPT = """\
on coreFailed firedby $c do
  call failover()
end
"""


def main() -> None:
    cluster = Cluster(["alpha", "beta", "gamma"])
    recovery = cluster.enable_recovery(
        detector=DetectorConfig(interval=0.5, fail_after=3.0),
        auto_recover=False,  # the script, not the manager, decides
    )
    assert cluster.checkpoints is not None

    # Lint the script before attaching it (FG1xx family).
    diagnostics = check_script(FAILOVER_SCRIPT)
    print(render_text(diagnostics) or "script lints clean")

    engine = ScriptEngine(cluster, home="alpha")
    engine.run(FAILOVER_SCRIPT)

    # The deployed application: one protected counter on the Core that
    # is about to die.  Periodic checkpoints keep its state restorable.
    counter = Counter(40, _core=cluster["gamma"], _at="gamma")
    cluster.checkpoints.protect(counter, CheckpointPolicy(interval=1.0))
    counter.increment(by=2)
    print(f"counter lives at {cluster.locate(counter)}, value {counter.read()}")

    # Crash gamma at t=2; the detectors need fail_after=3s of silence.
    inject = FailureInjector(cluster)
    inject.crash_core_at(2.0, "gamma")
    print("\ncrashing gamma at t=2.0 ...")
    cluster.advance(7.0)

    print(f"t={cluster.now:.1f}: script log:")
    for line in engine.log:
        print(f"  {line}")
    for at, line in recovery.log:
        print(f"  t={at:.1f} {line}")

    # A reference held by a survivor reaches the revival: the recovery
    # pass repaired beta's trackers and republished the location.
    fresh = cluster.stub_at("beta", counter)
    print(f"\ncounter now lives at {cluster.locate(fresh)}, "
          f"value survived: {fresh.read()}")


if __name__ == "__main__":
    main()
