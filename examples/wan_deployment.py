"""A wide-area deployment: the paper's opening scenario, end to end.

§1 motivates dynamic layout with wide-area environments: "many nodes
with different computing power and dynamically changing resources, and
many links with widely different and dynamically changing transfer
rates, reliability, and qualities of service."

This example deploys a small analytics application over two sites
(fast LANs inside, a slow WAN between), attaches a layout script, and
replays a day of trouble on the virtual timeline:

- the worker's read rate exceeds 3/s -> it colocates with its data
  source (the paper's rate-based performance rule), taking its traffic
  off the WAN before the t=20 degradation makes that expensive;
- t=40  a site-b Core announces maintenance shutdown -> any complets it
  still hosts evacuate to the site's other Core (reliability rule).

Run:  python examples/wan_deployment.py
"""

from repro import Cluster, FailureInjector, configure_wan
from repro.cluster.workload import DataSource, Worker
from repro.script import ScriptEngine
from repro.viewer import LayoutMonitor, MovementTimeline

SCRIPT = """\
# performance: follow the data when the worker gets chatty
on methodInvokeRate(3)
  from %1 to %2 do
    move %1 to coreOf %2
end
# reliability: evacuate any site-b Core that announces shutdown
on shutdown firedby $core listenAt [b1, b2] do
  $survivor = b2
  move completsIn $core to $survivor
end
"""


def main() -> None:
    cluster = Cluster(["a1", "a2", "b1", "b2"])
    configure_wan(
        cluster,
        {"site-a": ["a1", "a2"], "site-b": ["b1", "b2"]},
        wan_bandwidth=400_000.0,
        wan_latency=0.06,
    )
    monitor = LayoutMonitor(cluster, home="a1")
    monitor.watch_all()
    timeline = MovementTimeline(cluster, home="a1")
    timeline.watch_all()

    # The application: a data source at site-a, a worker at site-b.
    source = DataSource(40_000, _core=cluster["a1"])
    worker = Worker(source, chunk=2_048, _core=cluster["b1"], _at="b1")
    timeline.track(str(source._fargo_target_id), "DataSource", "a1")
    timeline.track(str(worker._fargo_target_id), "Worker", "b1")

    engine = ScriptEngine(cluster, home="a1")
    engine.run(SCRIPT, args=(worker, source))

    inject = FailureInjector(cluster)
    inject.degrade_link_at(20.0, "a1", "b1", bandwidth=40_000.0)
    inject.degrade_link_at(20.0, "a1", "b2", bandwidth=40_000.0)
    inject.shutdown_core_at(40.0, "b1")

    print("initial layout:")
    print(monitor.render())

    for second in range(50):
        handle = cluster.stub_at(cluster.locate(worker), worker)
        handle.work(5)
        cluster.advance(1.0)
        if second in (25, 45):
            print(f"\nlayout at t={cluster.now:.0f}:")
            print(monitor.render())

    print("\ninjected failures:")
    for when, what in inject.log:
        print(f"  t={when:5.1f}  {what}")
    print("\nevent feed (tail):")
    print(monitor.render_feed(limit=6))
    print()
    print(timeline.render(width=50))
    print(f"\ntotal network time: {cluster.stats.seconds:.2f} simulated seconds")


if __name__ == "__main__":
    main()
