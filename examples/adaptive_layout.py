"""Adaptive layout: the paper's motivating policy over a changing WAN.

§4.1's policy: "move two disparate complets to the same site only if the
bandwidth between the sites is below some threshold value and the
invocationRate is above some threshold value.  Otherwise it keeps them
apart to spread the load."

The scenario: a client complet on site1 talks to a server pinned on
site2.  At t=30 the inter-site link degrades from 1 MB/s to 50 KB/s.
A monitor-event-driven policy (no polling!) notices the combination of
high invocation rate and low bandwidth and colocates the client with the
server; the run then compares total network time against both static
layouts.

Run:  python examples/adaptive_layout.py
"""

from repro import Cluster, FailureInjector
from repro.cluster.workload import Client, Server

RATE_THRESHOLD = 3.0        # invocations/second
BANDWIDTH_THRESHOLD = 200_000.0  # bytes/second
PHASES = 60                 # seconds of workload
DEGRADE_AT = 30.0


def build(adaptive: bool) -> tuple[Cluster, float]:
    """Run the scenario; returns (cluster, total network seconds)."""
    cluster = Cluster(["site1", "site2"], bandwidth=1_000_000.0, latency=0.02)
    server = Server(reply_size=8_192, _core=cluster["site2"], _at="site2")
    client = Client(server, request_size=4_096, _core=cluster["site1"])
    cid, sid = str(client._fargo_target_id), str(server._fargo_target_id)

    inject = FailureInjector(cluster)
    inject.degrade_link_at(DEGRADE_AT, "site1", "site2", bandwidth=50_000.0)

    if adaptive:
        core = cluster["site1"]

        def maybe_colocate(event) -> None:
            server_site = cluster.locate(server)
            if cluster.locate(client) == server_site:
                return
            bandwidth = core.profile_instant("bandwidth", peer=server_site)
            if bandwidth < BANDWIDTH_THRESHOLD:
                print(
                    f"  [t={cluster.now:6.2f}] rate {event.data['value']:.1f}/s over "
                    f"{bandwidth / 1000:.0f} KB/s link -> colocating client"
                )
                cluster.move(client, server_site)

        core.events.subscribe(f"invocationRate>{RATE_THRESHOLD:g}", maybe_colocate)
        core.monitor.watch(
            "invocationRate", ">", RATE_THRESHOLD, interval=1.0,
            repeat=True, src=cid, dst=sid,
        )

    cluster.reset_stats()
    handle = client
    for second in range(PHASES):
        handle = cluster.stub_at(cluster.locate(client), client)
        handle.run(6)
        cluster.advance(1.0)
    return cluster, cluster.stats.seconds


def main() -> None:
    print("adaptive policy run:")
    _cluster, adaptive_cost = build(adaptive=True)
    print(f"  total network time: {adaptive_cost:8.2f} simulated seconds")

    print("static layout (client pinned at site1):")
    _cluster, static_cost = build(adaptive=False)
    print(f"  total network time: {static_cost:8.2f} simulated seconds")

    saving = (1 - adaptive_cost / static_cost) * 100.0
    print(f"dynamic layout saved {saving:.0f}% of network time")


if __name__ == "__main__":
    main()
