"""The layout monitor and admin shell: Figure 4's surface, in text.

The paper's graphical monitor "can connect to multiple cores, and show
in real-time which complets reside in which cores", tracks movements by
listening for events, shows reference properties with profiling
information, and lets the administrator move complets and change
reference types.  This example drives the textual equivalent — plus the
FarGo shell — through a small scenario.

Run:  python examples/live_monitor.py
"""

from repro import Cluster
from repro.cluster.workload import Client, DataSource, Server, Worker
from repro.shell import FarGoShell


def main() -> None:
    cluster = Cluster(["hq", "branch", "backup"])

    # Deploy a small application.
    server = Server(_core=cluster["hq"])
    client = Client(server, _core=cluster["branch"], _at="branch")
    source = DataSource(20_000, _core=cluster["hq"])
    worker = Worker(source, _core=cluster["branch"], _at="branch")
    cluster["hq"].bind("server", server)

    shell = FarGoShell(cluster, home="hq")
    monitor = shell.monitor

    print(shell.execute("cores"))
    print()
    print(shell.execute("layout"))

    # Generate some traffic so the reference table has numbers to show.
    client.run(5)
    worker.work(3)

    worker_id = str(worker._fargo_target_id)
    print()
    print(shell.execute(f"refs branch {worker_id}"))

    # Retype the worker's data reference to pull, then drag the worker
    # to the backup Core — the data source follows.
    source_id = str(source._fargo_target_id)
    print()
    print(shell.execute(f"retype branch {worker_id} {source_id} pull"))
    print(shell.execute(f"move {worker_id} backup"))
    print()
    print(shell.execute("layout"))

    # Profiling through the monitor (instant interface, remote Core).
    print()
    print(shell.execute("profile backup completLoad"))
    print(shell.execute("profile hq bandwidth peer=backup"))

    # The live feed the GUI would have drawn movement arrows from:
    print()
    print("event feed:")
    print(monitor.render_feed(limit=6))


if __name__ == "__main__":
    main()
