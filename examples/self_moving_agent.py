"""Weak mobility with continuations: a self-moving survey agent.

FarGo supports weak mobility — object state moves, the stack does not —
so a computation that spans Cores is written in continuation style
(§3.3): the agent moves itself with ``Carrier.move(self, dest, "step",
args)`` and the receiving Core invokes ``step`` after unmarshaling.

The agent here tours every Core in the cluster, sampling each Core's
complet load locally (no remote profiling traffic), and returns home
with the collected survey — a classic mobile-agent itinerary implemented
purely with the paper's continuation primitive plus the four movement
callbacks.

Run:  python examples/self_moving_agent.py
"""

from repro import Anchor, Carrier, Cluster, compile_complet
from repro.cluster.workload import Echo


class SurveyAgent_(Anchor):
    """Visits a list of Cores and samples each one's complet load."""

    def __init__(self, itinerary: list[str], home: str) -> None:
        self.itinerary = list(itinerary)
        self.home = home
        self.survey: dict[str, float] = {}
        self.hops = 0

    # -- movement callbacks (§3.3): observe the journey ---------------------

    def pre_departure(self, destination: str) -> None:
        self.hops += 1

    def post_arrival(self) -> None:
        # Sample locally, wherever we are: an instant profiling call on
        # the *current* Core costs no network traffic.
        core = self.core
        self.survey[core.name] = core.profile_instant("completLoad", use_cache=False)

    # -- the continuation-style tour -----------------------------------------

    def tour(self) -> None:
        """Start (or continue) the tour; runs once per Core visited."""
        if self.itinerary:
            next_stop = self.itinerary.pop(0)
            Carrier.move(self, next_stop, "tour")
        elif self.core.name != self.home:
            Carrier.move(self, self.home, "tour")

    def report(self) -> dict:
        return {"survey": self.survey, "hops": self.hops}


SurveyAgent = compile_complet(SurveyAgent_)


def main() -> None:
    cluster = Cluster(["hq", "edge1", "edge2", "edge3"])
    # Populate the edges with some application complets.
    for name, load in (("edge1", 3), ("edge2", 1), ("edge3", 5)):
        for i in range(load):
            Echo(f"{name}-app{i}", _core=cluster[name], _at=name)

    agent = SurveyAgent(["edge1", "edge2", "edge3"], home="hq", _core=cluster["hq"])
    print("dispatching survey agent from hq ...")
    agent.tour()
    # Each hop's continuation is deferred (the paper runs them in fresh
    # threads); drain the cascade so the whole itinerary completes.
    cluster.drain()

    print(f"agent is back at: {cluster.locate(agent)}")
    report = agent.report()
    print(f"hops taken: {report['hops']}")
    for core_name, load in sorted(report["survey"].items()):
        print(f"  {core_name:<8} hosts {load:.0f} complets")

    stats = cluster.stats
    print(
        f"network: {stats.messages} messages, {stats.bytes} bytes "
        f"({stats.seconds:.3f} simulated seconds)"
    )


if __name__ == "__main__":
    main()
