"""An adaptive task farm: a complete application on the public API.

A TaskQueue complet at the hub holds a bag of tasks; FarmWorker complets
at the edges pull batches through complet references.  When a worker's
link to the hub degrades, the farm's placement policy (built on nothing
but monitor watches and ``move``) relocates that worker next to the
queue — and the makespan shows why.

Run:  python examples/task_farm.py
"""

from repro import Cluster, FailureInjector
from repro.apps.taskfarm import Farm


def run(adaptive: bool) -> tuple[float, float, list[str]]:
    cluster = Cluster(["hub", "edge1", "edge2"], bandwidth=1_000_000.0, latency=0.01)
    farm = Farm(cluster, "hub", ["edge1", "edge2"], batch=4)
    if adaptive:
        farm.enable_adaptive_placement(
            byte_rate_threshold=5_000.0, bandwidth_threshold=500_000.0
        )
    # edge1's uplink collapses shortly after the run starts.
    inject = FailureInjector(cluster)
    inject.degrade_link_at(3.0, "hub", "edge1", bandwidth=20_000.0)

    farm.submit(payload_size=8_192, count=60)
    cluster.reset_stats()
    makespan = farm.run_until_drained()
    return makespan, cluster.stats.seconds, farm.progress()["relocations"]


def main() -> None:
    adaptive_makespan, adaptive_net, relocations = run(adaptive=True)
    static_makespan, static_net, _ = run(adaptive=False)
    print("task farm: 60 tasks x 8 KB, edge1's uplink degrades at t=3")
    print(
        f"  static placement:   makespan {static_makespan:6.1f} s, "
        f"network time {static_net:6.2f} s"
    )
    print(
        f"  adaptive placement: makespan {adaptive_makespan:6.1f} s, "
        f"network time {adaptive_net:6.2f} s   "
        f"(relocations: {', '.join(relocations) or 'none'})"
    )
    saving = (1 - adaptive_net / static_net) * 100
    print(f"  adaptive placement cut network time by {saving:.0f}%")


if __name__ == "__main__":
    main()
