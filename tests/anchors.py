"""Anchor classes used across the test suite.

Defined at module level (not inside test functions) so they are
importable — and therefore marshalable — at any Core.
"""

from __future__ import annotations

from repro.complet.anchor import Anchor
from repro.complet.relocators import Link, Relocator
from repro.complet.stub import compile_complet


class Probe_(Anchor):
    """Records its movement-callback history."""

    def __init__(self) -> None:
        self.history: list[str] = []
        self.payload = {"k": [1, 2, 3]}

    def pre_departure(self, destination: str) -> None:
        self.history.append(f"pre_departure:{destination}")

    def abort_departure(self, destination: str) -> None:
        self.history.append(f"abort_departure:{destination}")

    def pre_arrival(self) -> None:
        self.history.append("pre_arrival")

    def post_arrival(self) -> None:
        self.history.append(f"post_arrival:{self.core.name}")

    def post_departure(self) -> None:
        self.history.append("post_departure")

    def get_history(self) -> list[str]:
        return self.history

    def note(self, entry: str) -> None:
        self.history.append(entry)


class Holder_(Anchor):
    """Holds one complet reference, exposes it for retyping."""

    def __init__(self, ref=None) -> None:
        self.ref = ref

    def call_ref(self, *args):
        return self.ref.echo(*args) if args else self.ref.ping()

    def get_ref(self):
        """Return the held reference (passes a complet ref as a result)."""
        return self.ref

    def set_ref(self, ref) -> None:
        self.ref = ref

    def has_ref(self) -> bool:
        return self.ref is not None


class Pair_(Anchor):
    """Holds two references (group-movement topology tests)."""

    def __init__(self, left=None, right=None) -> None:
        self.left = left
        self.right = right

    def touch(self) -> str:
        return "pair"


class SelfRef_(Anchor):
    """Keeps a complet reference to *itself* inside its own closure."""

    def __init__(self) -> None:
        self.me = None

    def adopt_self(self, me) -> None:
        self.me = me

    def through_self(self, value):
        return self.me.identity(value)

    def identity(self, value):
        return value


class Propertied_(Anchor):
    """Anchor with a public property, mirrored by the stub compiler."""

    def __init__(self, value: int = 41) -> None:
        self._value = value

    @property
    def answer(self) -> int:
        """The current answer."""
        return self._value + 1

    def bump(self) -> None:
        self._value += 1


class Failing_(Anchor):
    """Raises application exceptions (by-value exception propagation)."""

    def boom(self) -> None:
        raise ValueError("boom from complet")

    def custom(self) -> None:
        raise KeyError("missing-key")


class Chatty_(Anchor):
    """Calls a collaborator repeatedly (application profiling tests)."""

    def __init__(self, other) -> None:
        self.other = other

    def chat(self, rounds: int) -> int:
        total = 0
        for i in range(rounds):
            total += len(self.other.echo(f"m{i}"))
        return total


class Listener_(Anchor):
    """Complet event listener: records events delivered through its ref."""

    def __init__(self) -> None:
        self.seen: list[str] = []

    def on_event(self, event) -> None:
        self.seen.append(event.name)

    def events_seen(self) -> list[str]:
        return self.seen


class Spawner_(Anchor):
    """Instantiates other complets from inside complet code."""

    def spawn_echo(self, tag: str):
        from repro.cluster.workload import Echo

        return Echo(tag)

    def spawn_remote_echo(self, tag: str, at: str):
        from repro.cluster.workload import Echo

        return Echo(tag, _at=at)


class Roamer_(Anchor):
    """Moves itself with a continuation (Figure 3's programming style)."""

    def __init__(self) -> None:
        self.visited: list[str] = []

    def start(self) -> None:
        self.visited.append(self.core.name)

    def roam(self, dest: str) -> None:
        from repro.core.carrier import Carrier

        Carrier.move(self, dest, "start", ())

    def path(self) -> list[str]:
        return self.visited


class SizeBound_(Relocator):
    """User-defined relocator: pull small targets, link big ones.

    Demonstrates §3.3's extension mechanism: a new reference type built
    by combining the built-in behaviours under a size policy.
    """

    type_name = "sizebound"

    def __init__(self, max_bytes: int = 4_096) -> None:
        self.max_bytes = max_bytes

    def plan(self, stub, planner) -> None:
        from repro.complet.closure import compute_closure

        tracker = stub._fargo_tracker
        if tracker.is_local and tracker.local_anchor is not None:
            if compute_closure(tracker.local_anchor).size_bytes <= self.max_bytes:
                planner.pull(stub)

    def degraded_for_parameter(self) -> Relocator:
        return Link()


Probe = compile_complet(Probe_)
Holder = compile_complet(Holder_)
Pair = compile_complet(Pair_)
SelfRef = compile_complet(SelfRef_)
Propertied = compile_complet(Propertied_)
Failing = compile_complet(Failing_)
Chatty = compile_complet(Chatty_)
Listener = compile_complet(Listener_)
Spawner = compile_complet(Spawner_)
Roamer = compile_complet(Roamer_)
