"""Tests for the reusable workload complets."""

import pytest

from repro.cluster.workload import (
    Client,
    Counter,
    DataSource,
    Desktop,
    Echo,
    Printer,
    Server,
    Stage,
    Worker,
)


class TestEchoAndCounter:
    def test_echo_roundtrip(self, cluster):
        echo = Echo("t", _core=cluster["alpha"])
        assert echo.echo([1, 2]) == [1, 2]
        assert echo.ping() == "t"

    def test_counter_state(self, cluster):
        counter = Counter(10, _core=cluster["alpha"])
        counter.increment()
        counter.increment(4)
        assert counter.read() == 15


class TestClientServer:
    def test_request_reply_sizes(self, cluster):
        server = Server(reply_size=512, _core=cluster["beta"], _at="beta")
        client = Client(server, request_size=128, _core=cluster["alpha"])
        assert client.run(3) == 3
        anchor = cluster["beta"].repository.get(server._fargo_target_id)
        assert anchor.requests_served == 3

    def test_traffic_scales_with_reply_size(self, cluster):
        big_server = Server(reply_size=50_000, _core=cluster["beta"], _at="beta")
        client = Client(big_server, _core=cluster["alpha"])
        before = cluster.stats.bytes
        client.run(1)
        assert cluster.stats.bytes - before > 50_000


class TestDataWorkers:
    def test_worker_reads(self, cluster):
        source = DataSource(8_192, _core=cluster["alpha"])
        worker = Worker(source, chunk=512, _core=cluster["alpha"])
        assert worker.work(4) == 2_048

    def test_checksum_stable(self, cluster):
        source = DataSource(1_000, seed=3, _core=cluster["alpha"])
        first = source.checksum()
        cluster.move(source, "beta")
        assert source.checksum() == first  # content survives migration


class TestPipeline:
    def test_three_stage_chain(self, cluster):
        last = Stage(None, cost_bytes=10, _core=cluster["alpha"])
        middle = Stage(last, cost_bytes=10, _core=cluster["alpha"])
        first = Stage(middle, cost_bytes=10, _core=cluster["alpha"])
        out = first.process(b"seed")
        assert len(out) == 4 + 30

    def test_stages_spread_across_cores(self, cluster3):
        last = Stage(None, _core=cluster3["gamma"], _at="gamma")
        middle = Stage(last, _core=cluster3["beta"], _at="beta")
        first = Stage(middle, _core=cluster3["alpha"])
        out = first.process(b"x")
        assert len(out) == 1 + 3 * 128


class TestPrinters:
    def test_print_at_site(self, cluster):
        printer = Printer("lab", _core=cluster["alpha"])
        desk = Desktop(printer, _core=cluster["alpha"])
        assert desk.print_report("doc") == "printed at lab: doc"
        assert printer.location() == "lab"
