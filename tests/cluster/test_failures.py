"""Tests for the failure injector."""

import pytest

from repro.errors import CoreDownError, CoreUnreachableError
from repro.cluster.cluster import Cluster
from repro.cluster.failures import FailureInjector
from repro.cluster.workload import Counter, Echo


@pytest.fixture
def rig():
    cluster = Cluster(["a", "b", "c"])
    return cluster, FailureInjector(cluster)


class TestLinkFailures:
    def test_scheduled_degradation(self, rig):
        cluster, inject = rig
        inject.degrade_link_at(5.0, "a", "b", bandwidth=100.0)
        assert cluster.network.link("a", "b").bandwidth == 1_000_000.0
        cluster.advance(5.0)
        assert cluster.network.link("a", "b").bandwidth == 100.0

    def test_cut_and_restore(self, rig):
        cluster, inject = rig
        echo = Echo("x", _core=cluster["a"])
        cluster.move(echo, "b")
        inject.cut_link_at(1.0, "a", "b")
        inject.restore_link_at(2.0, "a", "b")
        cluster.advance(1.0)
        with pytest.raises(CoreUnreachableError):
            echo.ping()
        cluster.advance(1.0)
        assert echo.ping() == "x"

    def test_log_records_history(self, rig):
        cluster, inject = rig
        inject.cut_link_at(1.0, "a", "b")
        inject.degrade_link_at(2.0, "b", "c", bandwidth=5.0)
        cluster.advance(3.0)
        assert len(inject.log) == 2
        assert inject.log[0][0] == 1.0
        assert "goes down" in inject.log[0][1]


class TestCoreFailures:
    def test_graceful_shutdown_fires_event(self, rig):
        cluster, inject = rig
        seen = []
        cluster["b"].events.subscribe("coreShutdown", seen.append)
        inject.shutdown_core_at(4.0, "b")
        cluster.advance(4.0)
        assert len(seen) == 1
        assert not cluster["b"].is_running

    def test_crash_fires_no_event(self, rig):
        cluster, inject = rig
        seen = []
        cluster["b"].events.subscribe("coreShutdown", seen.append)
        inject.crash_core_at(4.0, "b")
        cluster.advance(4.0)
        assert seen == []
        echo = Echo("x", _core=cluster["a"])
        with pytest.raises(CoreDownError):
            cluster.move(echo, "b")

    def test_revive(self, rig):
        cluster, inject = rig
        inject.crash_core_at(1.0, "b")
        inject.revive_core_at(2.0, "b")
        cluster.advance(3.0)
        echo = Echo("x", _core=cluster["a"])
        cluster.move(echo, "b")
        assert echo.ping() == "x"


class TestPartitions:
    def test_partition_and_heal(self, rig):
        cluster, inject = rig
        echo = Echo("x", _core=cluster["a"])
        cluster.move(echo, "b")
        inject.partition_at(1.0, {"a", "c"}, {"b"})
        inject.heal_at(2.0)
        cluster.advance(1.0)
        with pytest.raises(CoreUnreachableError):
            echo.ping()
        cluster.advance(1.0)
        assert echo.ping() == "x"


class TestObservability:
    def test_injections_are_counted_by_kind(self, rig):
        cluster, inject = rig
        inject.crash_core_at(1.0, "a")
        inject.cut_link_at(2.0, "b", "c")
        inject.cut_link_at(3.0, "a", "b")
        cluster.advance(4.0)
        assert inject.injected_count(kind="crash_core") == 1
        assert inject.injected_count(kind="cut_link") == 2
        assert inject.injected_count() == 3
        assert inject.metrics.counter_value("injector.events", kind="cut_link") == 2

    def test_unfired_injections_not_counted(self, rig):
        cluster, inject = rig
        inject.crash_core_at(10.0, "a")
        cluster.advance(5.0)  # stop before the timer fires
        assert inject.injected_count() == 0

    def test_injections_annotate_the_trace(self):
        cluster = Cluster(["a", "b"], tracing=True)
        inject = FailureInjector(cluster)
        inject.crash_core_at(1.0, "a")
        inject.heal_at(2.0)
        cluster.advance(3.0)
        spans = [
            span
            for core in cluster.cores.values()
            for span in core.tracer.spans()
            if span.category == "failure"
        ]
        names = sorted(span.name for span in spans)
        assert names == ["inject:crash_core", "inject:heal"]

    def test_no_spans_without_tracing(self, rig):
        cluster, inject = rig
        inject.crash_core_at(1.0, "a")
        cluster.advance(2.0)  # must not raise; tracing is off
        assert inject.injected_count(kind="crash_core") == 1


class TestCancellation:
    def test_cancel_all(self, rig):
        cluster, inject = rig
        inject.cut_link_at(1.0, "a", "b")
        inject.cancel_all()
        cluster.advance(5.0)
        assert cluster.network.link("a", "b").up
        assert inject.log == []
