"""Unit tests for supervision policy plumbing (no real processes).

The end-to-end kill/restart/escalate paths live in
``tests/integration/test_supervised.py`` (tcp marker) and the chaos
``--real`` mode; here we pin down the pure parts: restart policies,
exit-cause decoding, backoff schedules, state reporting, and the
``Cluster(checkpoint_store=...)`` wiring.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.cluster import Cluster, CoreProcesses, RestartPolicy, Supervisor
from repro.cluster.supervisor import DEFAULT_BACKOFF, _ChildState, describe_exit
from repro.errors import ConfigurationError
from repro.recovery import CheckpointStore, FileCheckpointStore


class TestRestartPolicy:
    def test_defaults(self):
        policy = RestartPolicy()
        assert policy.max_restarts == 3
        assert policy.window == 60.0
        assert policy.recover is True
        assert policy.backoff is DEFAULT_BACKOFF

    def test_zero_budget_is_legal(self):
        # max_restarts=0 means "never restart, escalate immediately".
        assert RestartPolicy(max_restarts=0).max_restarts == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            RestartPolicy(max_restarts=-1)

    def test_nonpositive_window_rejected(self):
        with pytest.raises(ConfigurationError):
            RestartPolicy(window=0.0)

    def test_backoff_schedule_is_exponential_and_capped(self):
        delays = [DEFAULT_BACKOFF.backoff(n) for n in range(1, 7)]
        assert delays[:4] == [0.1, 0.2, 0.4, 0.8]
        assert max(delays) <= 2.0


class TestDescribeExit:
    def test_signals_named(self):
        assert describe_exit(-9) == "signal SIGKILL"
        assert describe_exit(-15) == "signal SIGTERM"

    def test_unknown_signal_number_falls_back(self):
        assert describe_exit(-250) == "signal 250"

    def test_exit_codes(self):
        assert describe_exit(0) == "exit 0"
        assert describe_exit(3) == "exit 3"


class TestChildState:
    def test_to_dict_surface(self):
        state = _ChildState()
        as_dict = state.to_dict()
        assert as_dict["status"] == "running"
        assert as_dict["restarts"] == 0
        assert as_dict["last_exit"] is None
        assert as_dict["escalated_to"] == []
        for key in ("streak", "last_verdict", "last_mttr", "next_backoff"):
            assert key in as_dict


class TestSupervisorConstruction:
    def test_requires_started_processes(self):
        procs = CoreProcesses(["alpha"])  # not started
        with pytest.raises(ConfigurationError):
            Supervisor(procs)


class TestClusterCheckpointStoreWiring:
    def test_memory_backend(self):
        cluster = Cluster(["a"], checkpoint_store="memory")
        try:
            manager = cluster.enable_recovery()
            assert type(manager.store) is CheckpointStore
        finally:
            cluster.close()

    def test_file_backend_owns_a_tempdir(self):
        cluster = Cluster(["a"], checkpoint_store="file")
        try:
            manager = cluster.enable_recovery()
            assert isinstance(manager.store, FileCheckpointStore)
            owned = cluster._owned_checkpoint_dir
            assert owned is not None and os.path.isdir(owned)
        finally:
            cluster.close()
        assert not os.path.isdir(owned)

    def test_explicit_directory_left_in_place(self, tmp_path):
        target = tmp_path / "checkpoints"
        cluster = Cluster(["a"], checkpoint_store=str(target))
        try:
            manager = cluster.enable_recovery()
            assert isinstance(manager.store, FileCheckpointStore)
            assert manager.store.root == Path(target)
        finally:
            cluster.close()
        assert target.is_dir()  # close() must not delete a caller's directory

    def test_store_instance_passthrough(self):
        store = CheckpointStore()
        cluster = Cluster(["a"], checkpoint_store=store)
        try:
            assert cluster.enable_recovery().store is store
        finally:
            cluster.close()

    def test_invalid_value_rejected(self):
        with pytest.raises(ConfigurationError):
            Cluster(["a"], checkpoint_store=123)
