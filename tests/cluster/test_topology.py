"""Tests for topology profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.cluster.cluster import Cluster
from repro.cluster.topology import configure_star, configure_uniform, configure_wan


class TestUniform:
    def test_all_pairs_configured(self):
        cluster = Cluster(["a", "b", "c"])
        configure_uniform(cluster, bandwidth=123.0, latency=0.5)
        for src, dst in (("a", "b"), ("b", "c"), ("a", "c"), ("c", "a")):
            link = cluster.network.link(src, dst)
            assert link.bandwidth == 123.0
            assert link.latency == 0.5


class TestStar:
    def test_hub_links_fast(self):
        cluster = Cluster(["hub", "s1", "s2"])
        configure_star(cluster, "hub", hub_bandwidth=1e7, spoke_bandwidth=1e5)
        assert cluster.network.link("hub", "s1").bandwidth == 1e7
        assert cluster.network.link("s1", "s2").bandwidth == 1e5

    def test_unknown_hub_rejected(self):
        cluster = Cluster(["a", "b"])
        with pytest.raises(ConfigurationError):
            configure_star(cluster, "nohub")


class TestWan:
    def _cluster(self):
        cluster = Cluster(["a1", "a2", "b1", "b2"])
        profile = configure_wan(
            cluster,
            {"site-a": ["a1", "a2"], "site-b": ["b1", "b2"]},
            lan_bandwidth=1e8,
            wan_bandwidth=1e5,
            lan_latency=0.001,
            wan_latency=0.1,
        )
        return cluster, profile

    def test_intra_site_fast(self):
        cluster, _profile = self._cluster()
        assert cluster.network.link("a1", "a2").bandwidth == 1e8
        assert cluster.network.link("b1", "b2").latency == 0.001

    def test_cross_site_slow(self):
        cluster, _profile = self._cluster()
        assert cluster.network.link("a1", "b1").bandwidth == 1e5
        assert cluster.network.link("a2", "b2").latency == 0.1

    def test_site_of(self):
        _cluster, profile = self._cluster()
        assert profile.site_of("a1") == "site-a"
        assert profile.site_of("b2") == "site-b"
        with pytest.raises(ConfigurationError):
            profile.site_of("zz")

    def test_core_in_two_sites_rejected(self):
        cluster = Cluster(["a", "b"])
        with pytest.raises(ConfigurationError):
            configure_wan(cluster, {"s1": ["a", "b"], "s2": ["b"]})

    def test_unassigned_core_rejected(self):
        cluster = Cluster(["a", "b", "c"])
        with pytest.raises(ConfigurationError):
            configure_wan(cluster, {"s1": ["a", "b"]})

    def test_wan_transfer_cost_asymmetry(self):
        cluster, _profile = self._cluster()
        lan = cluster.network.transfer_time("a1", "a2", 100_000)
        wan = cluster.network.transfer_time("a1", "b1", 100_000)
        assert wan > 100 * lan
