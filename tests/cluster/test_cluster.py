"""Tests for the cluster harness."""

import pytest

from repro.errors import CoreNotFoundError, DuplicateCoreError
from repro.cluster.cluster import Cluster
from repro.cluster.workload import Counter, Echo


class TestConstruction:
    def test_named_cores_created(self):
        cluster = Cluster(["a", "b", "c"])
        assert cluster.core_names() == ["a", "b", "c"]

    def test_add_core_later(self):
        cluster = Cluster(["a"])
        cluster.add_core("b")
        assert "b" in cluster.core_names()

    def test_duplicate_core_rejected(self):
        cluster = Cluster(["a"])
        with pytest.raises(DuplicateCoreError):
            cluster.add_core("a")

    def test_unknown_core_lookup(self):
        with pytest.raises(CoreNotFoundError):
            Cluster(["a"]).core("z")

    def test_getitem_and_iter(self):
        cluster = Cluster(["a", "b"])
        assert cluster["a"].name == "a"
        assert sorted(c.name for c in cluster) == ["a", "b"]

    def test_custom_link_defaults(self):
        cluster = Cluster(["a", "b"], bandwidth=500.0, latency=0.2)
        assert cluster.network.link("a", "b").bandwidth == 500.0
        assert cluster.network.link("a", "b").latency == 0.2


class TestTimeDriving:
    def test_advance_moves_clock(self):
        cluster = Cluster(["a"])
        cluster.advance(3.5)
        assert cluster.now == 3.5

    def test_advance_fires_profilers(self):
        cluster = Cluster(["a"])
        cluster["a"].profile_start("completLoad", interval=1.0)
        cluster.advance(5.0)
        assert cluster["a"].profiler.evaluations["completLoad"] == 5


class TestApplicationHelpers:
    def test_instantiate(self, cluster):
        stub = cluster.instantiate(Echo.__mro__[0]._fargo_anchor_cls, "alpha", "tag")
        assert stub.ping() == "tag"

    def test_move_and_locate(self, cluster):
        counter = Counter(0, _core=cluster["alpha"])
        cluster.move(counter, "beta")
        assert cluster.locate(counter) == "beta"

    def test_complets_at(self, cluster):
        Echo("x", _core=cluster["alpha"])
        assert len(cluster.complets_at("alpha")) == 1
        assert cluster.complets_at("beta") == []

    def test_stub_at_local_host(self, cluster):
        counter = Counter(5, _core=cluster["alpha"])
        other = cluster.stub_at("alpha", counter)
        assert other.read() == 5

    def test_stub_at_remote_host(self, cluster3):
        counter = Counter(5, _core=cluster3["alpha"])
        cluster3.move(counter, "gamma")
        ref = cluster3.stub_at("beta", counter)
        assert ref.increment() == 6

    def test_stub_at_missing_complet(self, cluster):
        counter = Counter(0, _core=cluster["alpha"])
        cluster["alpha"].repository.destroy(counter._fargo_target_id)
        with pytest.raises(CoreNotFoundError):
            cluster.stub_at("beta", counter)


class TestAccounting:
    def test_stats_accumulate(self, cluster):
        counter = Counter(0, _core=cluster["alpha"])
        cluster.move(counter, "beta")
        assert cluster.stats.messages > 0

    def test_reset_stats(self, cluster):
        counter = Counter(0, _core=cluster["alpha"])
        cluster.move(counter, "beta")
        cluster.reset_stats()
        assert cluster.stats.messages == 0

    def test_shutdown_all(self, cluster3):
        cluster3.shutdown_all()
        assert cluster3.running_cores() == []

    def test_repr(self, cluster):
        assert "alpha" in repr(cluster)
