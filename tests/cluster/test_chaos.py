"""Tests for the seeded chaos harness (and its invariants)."""

import pytest

from repro.cluster.chaos import ChaosRun, main, run_seeds

#: The fixed seed battery CI soaks; every seed must pass.
SOAK_SEEDS = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]


@pytest.mark.parametrize("seed", SOAK_SEEDS)
def test_soak_seed_passes(seed):
    report = ChaosRun(seed).execute()
    assert report.passed, report.summary()
    assert report.requests_ok > 0
    assert report.injections > 0


def test_same_seed_is_deterministic():
    first = ChaosRun(3).execute()
    second = ChaosRun(3).execute()
    assert (first.requests_ok, first.typed_errors, first.recoveries) == (
        second.requests_ok,
        second.typed_errors,
        second.recoveries,
    )
    assert first.duration == second.duration


def test_run_seeds_reports_first_failure_or_none():
    reports, first_failure = run_seeds([1])
    assert len(reports) == 1
    assert reports[0].passed
    assert first_failure is None


def test_main_exit_codes(tmp_path, capsys):
    assert main(["--seeds", "1", "--events", "2"]) == 0
    out = capsys.readouterr().out
    assert "1/1 seeds passed" in out


def test_main_writes_trace_on_failure(tmp_path, monkeypatch, capsys):
    """A failing run dumps a Chrome trace of the first failure."""
    trace_file = tmp_path / "chaos.json"

    def always_fail(self):
        self.report.violations.append("synthetic violation")
        return self.report

    monkeypatch.setattr(ChaosRun, "execute", always_fail)
    code = main(["--seeds", "7", "--trace", str(trace_file)])
    assert code == 1
    assert trace_file.exists()
    assert "synthetic violation" in capsys.readouterr().out
