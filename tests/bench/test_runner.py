"""Unit tests for the bench runner: baselines, comparison, determinism."""

import json

import pytest

from repro.bench.runner import (
    REGRESSION_TOLERANCE,
    baseline_path,
    check_area,
    compare_metrics,
    load_baseline,
    main,
    metric_direction,
    record_entry,
    run_area,
)
from repro.bench.scenarios import SCENARIOS
from repro.errors import ConfigurationError
from repro.sim.clock import RealClock, forbid_real_clocks


class TestMetricDirection:
    def test_throughput_metrics_are_higher_better(self):
        assert metric_direction("ops_per_vsec") == "higher"

    def test_everything_else_is_lower_better(self):
        for name in ("net_bytes", "latency_p99_vs", "serializer_dumps"):
            assert metric_direction(name) == "lower"


class TestCompareMetrics:
    def test_identical_runs_produce_no_regression(self):
        metrics = {"net_bytes": 100, "ops_per_vsec": 5.0}
        deltas = compare_metrics("x", metrics, dict(metrics))
        assert deltas and not any(delta.regressed for delta in deltas)

    def test_lower_better_metric_regresses_past_tolerance(self):
        base = {"net_bytes": 100}
        worse = {"net_bytes": 100 * (1 + REGRESSION_TOLERANCE) + 1}
        (delta,) = compare_metrics("x", base, worse)
        assert delta.regressed

    def test_higher_better_metric_regresses_when_it_drops(self):
        base = {"ops_per_vsec": 10.0}
        (delta,) = compare_metrics("x", base, {"ops_per_vsec": 5.0})
        assert delta.regressed
        (delta,) = compare_metrics("x", base, {"ops_per_vsec": 20.0})
        assert not delta.regressed

    def test_improvement_never_regresses(self):
        (delta,) = compare_metrics("x", {"net_bytes": 100}, {"net_bytes": 10})
        assert not delta.regressed and delta.worsening < 0

    def test_wall_seconds_is_never_compared(self):
        deltas = compare_metrics("x", {"wall_seconds": 1.0}, {"wall_seconds": 99.0})
        assert deltas == []

    def test_metric_missing_on_either_side_is_skipped(self):
        deltas = compare_metrics("x", {"old_metric": 1}, {"new_metric": 2})
        assert deltas == []

    def test_growth_from_zero_regresses(self):
        (delta,) = compare_metrics("x", {"net_bytes": 0}, {"net_bytes": 5})
        assert delta.regressed


class TestBaselineFiles:
    def test_record_entry_creates_and_replaces_by_label(self, tmp_path):
        record_entry(tmp_path, "marshal", "pre-fix", {"net_bytes": 10})
        record_entry(tmp_path, "marshal", "post-fix", {"net_bytes": 5})
        record_entry(tmp_path, "marshal", "post-fix", {"net_bytes": 4})
        data = load_baseline(tmp_path, "marshal")
        assert [entry["label"] for entry in data["entries"]] == ["pre-fix", "post-fix"]
        assert data["entries"][-1]["metrics"]["net_bytes"] == 4
        assert data["targeted_metric"] == SCENARIOS["marshal"].targeted_metric

    def test_baseline_path_shape(self, tmp_path):
        assert baseline_path(tmp_path, "invocation").name == "BENCH_invocation.json"

    def test_check_area_fails_without_baseline(self, tmp_path):
        deltas, error = check_area(tmp_path, "marshal")
        assert deltas == [] and error is not None


class TestDeterminism:
    def test_run_area_is_deterministic_modulo_wall_clock(self):
        first = run_area("marshal")
        second = run_area("marshal")
        first.pop("wall_seconds")
        second.pop("wall_seconds")
        assert first == second

    def test_real_clocks_are_banned_during_runs(self):
        with forbid_real_clocks(), pytest.raises(ConfigurationError):
            RealClock()
        RealClock()  # fine again outside the guard


class TestCli:
    def test_list_exits_cleanly(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "marshal" in out and "tracker_chains" in out

    def test_unknown_area_is_rejected(self):
        with pytest.raises(SystemExit):
            main(["--areas", "nonsense"])

    def test_check_against_fresh_self_baseline_passes(self, tmp_path, capsys):
        metrics = run_area("marshal")
        record_entry(tmp_path, "marshal", "baseline", metrics)
        deltas_file = tmp_path / "deltas.json"
        code = main(
            [
                "--check",
                "--areas",
                "marshal",
                "--root",
                str(tmp_path),
                "--deltas-out",
                str(deltas_file),
            ]
        )
        assert code == 0
        deltas = json.loads(deltas_file.read_text())
        assert deltas and not any(delta["regressed"] for delta in deltas)
