"""Property-based tests for the averaging primitives."""

from hypothesis import given, strategies as st

from repro.util.ema import ExponentialAverage, RateMeter

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
alphas = st.floats(min_value=0.01, max_value=1.0)


class TestExponentialAverageProperties:
    @given(samples=st.lists(finite_floats, min_size=1, max_size=100), alpha=alphas)
    def test_bounded_by_sample_range(self, samples, alpha):
        """The average never escapes [min(samples), max(samples)]."""
        avg = ExponentialAverage(alpha)
        for sample in samples:
            avg.add(sample)
        assert min(samples) - 1e-6 <= avg.value <= max(samples) + 1e-6

    @given(value=finite_floats, count=st.integers(1, 50), alpha=alphas)
    def test_constant_input_is_fixed_point(self, value, count, alpha):
        avg = ExponentialAverage(alpha)
        for _ in range(count):
            avg.add(value)
        assert abs(avg.value - value) < 1e-6 * max(1.0, abs(value))

    @given(samples=st.lists(finite_floats, min_size=1, max_size=50), alpha=alphas)
    def test_sample_count_tracks(self, samples, alpha):
        avg = ExponentialAverage(alpha)
        for sample in samples:
            avg.add(sample)
        assert avg.samples == len(samples)

    @given(samples=st.lists(finite_floats, min_size=2, max_size=50))
    def test_alpha_one_is_last_sample(self, samples):
        avg = ExponentialAverage(1.0)
        for sample in samples:
            avg.add(sample)
        assert avg.value == samples[-1]

    @given(
        samples=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50),
        alpha=alphas,
    )
    def test_nonnegative_inputs_nonnegative_average(self, samples, alpha):
        avg = ExponentialAverage(alpha)
        for sample in samples:
            avg.add(sample)
        assert avg.value >= 0.0


class TestRateMeterProperties:
    @given(
        marks=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=0, max_size=60)
    )
    def test_total_is_conserved(self, marks):
        meter = RateMeter()
        for weight in marks:
            meter.mark(weight)
        assert abs(meter.total - sum(marks)) < 1e-3

    @given(
        windows=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100),   # marks in window
                st.floats(min_value=0.1, max_value=10.0),  # window length
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_rate_never_negative_and_bounded(self, windows):
        meter = RateMeter(alpha=1.0)
        now = 0.0
        meter.sample(now)
        max_window_rate = 0.0
        for count, length in windows:
            for _ in range(count):
                meter.mark()
            now += length
            rate = meter.sample(now)
            max_window_rate = max(max_window_rate, count / length)
            assert rate >= 0.0
            assert rate <= max_window_rate + 1e-6

    @given(length=st.floats(min_value=0.1, max_value=100.0), count=st.integers(0, 1000))
    def test_single_window_exact_rate(self, length, count):
        meter = RateMeter(alpha=1.0)
        meter.sample(0.0)
        for _ in range(count):
            meter.mark()
        assert abs(meter.sample(length) - count / length) < 1e-6 * max(1.0, count / length)
