"""Property-based tests for the timer scheduler."""

from hypothesis import given, settings, strategies as st

from repro.sim.clock import VirtualClock
from repro.sim.scheduler import Scheduler

deadlines = st.lists(
    st.floats(min_value=0.001, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=40,
)


class TestSchedulerProperties:
    @settings(max_examples=60, deadline=None)
    @given(times=deadlines)
    def test_all_timers_fire_exactly_once(self, times):
        sched = Scheduler(VirtualClock())
        fired = []
        for deadline in times:
            sched.call_at(deadline, fired.append, deadline)
        sched.advance(max(times) + 1.0)
        assert sorted(fired) == sorted(times)

    @settings(max_examples=60, deadline=None)
    @given(times=deadlines)
    def test_firing_order_is_deadline_order(self, times):
        sched = Scheduler(VirtualClock())
        fired = []
        for deadline in times:
            sched.call_at(deadline, fired.append, deadline)
        sched.advance(max(times) + 1.0)
        assert fired == sorted(fired)

    @settings(max_examples=60, deadline=None)
    @given(times=deadlines, cut=st.floats(min_value=0.0, max_value=100.0))
    def test_partial_advance_fires_only_due(self, times, cut):
        sched = Scheduler(VirtualClock())
        fired = []
        for deadline in times:
            sched.call_at(deadline, fired.append, deadline)
        sched.advance(cut)
        assert all(t <= cut for t in fired)
        assert sorted(fired) == sorted(t for t in times if t <= cut)

    @settings(max_examples=40, deadline=None)
    @given(
        period=st.floats(min_value=0.1, max_value=5.0),
        horizon=st.floats(min_value=0.0, max_value=50.0),
    )
    def test_periodic_fire_count(self, period, horizon):
        sched = Scheduler(VirtualClock())
        timer = sched.call_every(period, lambda: None)
        sched.advance(horizon)
        # Accumulated float deadlines may land either side of the horizon.
        assert abs(timer.fired_count - horizon / period) <= 1.0

    @settings(max_examples=40, deadline=None)
    @given(times=deadlines)
    def test_clock_never_moves_backward(self, times):
        sched = Scheduler(VirtualClock())
        observed = []
        for deadline in times:
            sched.call_at(deadline, lambda: observed.append(sched.clock.now()))
        sched.advance(max(times) + 1.0)
        assert observed == sorted(observed)
